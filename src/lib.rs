//! # Microscope — queue-based performance diagnosis for network functions
//!
//! A comprehensive Rust reproduction of *Gong, Li, Anwer, Shaikh, Yu:
//! "Microscope: Queue-based Performance Diagnosis for Network Functions",
//! SIGCOMM 2020*.
//!
//! This facade crate re-exports the whole system; see `README.md` for a
//! tour, `DESIGN.md` for the architecture and substitutions, and
//! `EXPERIMENTS.md` for paper-vs-measured results. The underlying crates:
//!
//! * [`types`] (`nf-types`) — packets, flows, NF ids, the topology DAG;
//! * [`traffic`] (`nf-traffic`) — CAIDA-like synthetic workloads, bursts;
//! * [`sim`] (`nf-sim`) — a deterministic discrete-event simulator of
//!   DPDK-style NF chains with fault injection;
//! * [`collector`] (`msc-collector`) — the ~2-byte/packet runtime
//!   collector (Table 1, §5);
//! * [`trace`] (`msc-trace`) — offline trace reconstruction with IPID
//!   disambiguation, timelines and queuing periods;
//! * [`stream`] (`msc-stream`) — the streaming engine: windowed
//!   reconstruction over collector chunk streams with O(window) memory,
//!   bit-identical to the offline pipeline;
//! * [`diagnosis`] (`microscope`) — the paper's contribution: local +
//!   propagation + recursive diagnosis (§4.1–4.3);
//! * [`patterns`] (`autofocus`) — causal-pattern aggregation (§4.4);
//! * [`baseline`] (`netmedic`) — the NetMedic time-window baseline;
//! * [`experiments`] (`msc-experiments`) — one binary per paper figure
//!   and table.
//!
//! ## Quickstart
//!
//! ```
//! use microscope_repro::prelude::*;
//!
//! // A NAT -> VPN chain.
//! let mut sb = ScenarioBuilder::new();
//! let nat = sb.nf(NfKind::Nat, "nat1");
//! let vpn = sb.nf(NfKind::Vpn, "vpn1");
//! sb.entry(nat);
//! sb.edge(nat, vpn);
//! let (topology, nf_configs) = sb.build();
//! let peak_rates: Vec<f64> =
//!     nf_configs.iter().map(|c| c.service.peak_rate_pps()).collect();
//!
//! // Traffic with an injected stall at the NAT.
//! let mut gen = CaidaLike::new(
//!     CaidaLikeConfig { rate_pps: 400_000.0, ..Default::default() },
//!     7,
//! );
//! let packets = gen.generate(0, 20 * MILLIS).finalize(0);
//! let mut sim = Simulation::new(topology.clone(), nf_configs, SimConfig::default());
//! sim.add_fault(Fault::Interrupt { nf: nat, at: 5 * MILLIS, duration: MILLIS });
//! let out = sim.run(&packets);
//!
//! // Offline: reconstruct traces from the collector bundle and diagnose.
//! let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
//! let timelines = Timelines::build(&recon);
//! let engine = Microscope::new(topology, peak_rates, DiagnosisConfig::default());
//! let diagnoses = engine.diagnose_all(&recon, &timelines);
//! assert!(!diagnoses.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use autofocus as patterns;
pub use microscope as diagnosis;
pub use msc_collector as collector;
pub use msc_experiments as experiments;
pub use msc_stream as stream;
pub use msc_trace as trace;
pub use netmedic as baseline;
pub use nf_sim as sim;
pub use nf_traffic as traffic;
pub use nf_types as types;

/// The most commonly used items in one import.
pub mod prelude {
    pub use autofocus::{aggregate_patterns, CausalRelation, Pattern, PatternConfig};
    pub use microscope::{
        diagnoses_to_relations, CacheStats, Diagnosis, DiagnosisCache, DiagnosisConfig,
        LatencyThreshold, Microscope, VictimConfig,
    };
    pub use msc_collector::{chunk_bundle, Collector, CollectorConfig, TraceBundle};
    pub use msc_stream::{StreamConfig, StreamEngine, StreamOutcome};
    pub use msc_trace::{reconstruct, Reconstruction, ReconstructionConfig, Timelines};
    pub use netmedic::{NetMedic, NetMedicConfig};
    pub use nf_sim::{
        paper_nf_configs, Fault, NfConfig, RoutePolicy, ScenarioBuilder, ServiceModel, SimConfig,
        Simulation,
    };
    pub use nf_traffic::{burst, cbr, CaidaLike, CaidaLikeConfig, Schedule};
    pub use nf_types::{
        paper_topology, FiveTuple, NfId, NfKind, NodeId, Packet, Proto, Topology, MICROS, MILLIS,
        SECONDS,
    };
}
