//! Offline stand-in for `criterion`.
//!
//! The build container has no registry access, so the workspace patches
//! `criterion` to this crate. It keeps the authoring surface the benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `throughput`, `sample_size`, `bench_function`, `Bencher::{iter,
//! iter_batched}`, `black_box` — over a plain wall-clock measurement loop.
//!
//! Behaviour mirrors real criterion's two modes: run under `cargo bench`
//! (argv contains `--bench`) it measures and prints mean ns/iter plus
//! throughput; run under `cargo test` (no `--bench`) each benchmark body
//! executes exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    test_mode: bool,
    /// Target measurement budget per benchmark.
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion runs in test mode unless cargo bench passed
        // `--bench`; detecting it the same way keeps `cargo test` fast.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Self {
            test_mode,
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let budget = self.measure_budget;
        run_one(self.test_mode, budget, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted for API parity; the stand-in sizes
    /// its loop by wall-clock budget instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measurement-time knob (accepted for API parity).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measure_budget = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(
            self.c.test_mode,
            self.c.measure_budget,
            &label,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (printing is incremental; nothing left to do).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; records the timed routine.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    /// (total elapsed, iterations) of the measured loop.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warm up and estimate cost with a single run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((total, iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    budget: Duration,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        test_mode,
        budget,
        result: None,
    };
    f(&mut b);
    let Some((elapsed, iters)) = b.result else {
        println!("{label:<40} (no measurement recorded)");
        return;
    };
    if test_mode {
        println!("{label:<40} ok (smoke, 1 iter)");
        return;
    }
    let per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{label:<40} {per_iter_ns:>14.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{label:<40} {per_iter_ns:>14.1} ns/iter  {rate:>14.0} B/s");
        }
        None => println!("{label:<40} {per_iter_ns:>14.1} ns/iter"),
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            measure_budget: Duration::from_millis(1),
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_function("once", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_loops() {
        let mut c = Criterion {
            test_mode: false,
            measure_budget: Duration::from_millis(5),
        };
        let mut runs = 0u64;
        c.bench_function("loop", |b| b.iter(|| runs += 1));
        assert!(runs > 1, "{runs}");
    }
}
