//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace patches
//! `serde` to this facade. It provides the `Serialize`/`Deserialize` names
//! in both the trait and derive-macro namespaces, exactly as real serde
//! does, but the derives expand to nothing and the traits carry no methods.
//! Nothing in this workspace serialises at runtime; the annotations exist
//! for downstream users who substitute the real crates.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de> {}
