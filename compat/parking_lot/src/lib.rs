//! Offline stand-in for `parking_lot`.
//!
//! The build container has no registry access, so the workspace patches
//! `parking_lot` to this crate: thin wrappers over `std::sync` that expose
//! parking_lot's panic-free `lock()` API (poisoning is ignored, matching
//! parking_lot's semantics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
