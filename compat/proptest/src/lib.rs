//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace patches
//! `proptest` to this crate. It keeps the authoring surface the workspace
//! uses — `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`,
//! `any`, ranges, tuples, `prop_map`, `Just`, `collection::vec`,
//! `option::of`, `ProptestConfig` — over a deterministic generator.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — failures report the full generated case instead;
//! * no persistence — `.proptest-regressions` files are ignored;
//! * generation is seeded from the test name, so runs are reproducible.

use rand::Rng;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner plumbing used by the [`proptest!`] macro expansion.

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG, seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        /// Seeds from a test identifier (the macro passes `stringify!(name)`).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            Self(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.0.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen()
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A vector length specification.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `Some` three times out of four (like proptest's
    /// default weighting), else `None`.
    pub struct OptionStrategy<S>(S);

    /// Creates an option strategy around `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property assertion: fails the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests. Mirrors proptest's item syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(any::<u16>(), 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}\nwith inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            described
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

pub mod prelude {
    //! The glob import test modules use.

    pub use crate::collection;
    pub use crate::option;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            x in 1u64..100,
            pair in (0u32..10, any::<bool>()),
            v in collection::vec(0u16..5, 0..8),
            o in option::of(Just(7i32)),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(pair.0 < 10);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(o.is_none() || o == Some(7));
        }

        #[test]
        fn prop_map_and_oneof(
            y in prop_oneof![Just(1u8), Just(2u8)],
            z in (0u8..4).prop_map(|v| v * 2),
        ) {
            prop_assert!(y == 1 || y == 2);
            prop_assert_eq!(z % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::for_test("fixed-name");
        let mut b = crate::test_runner::TestRng::for_test("fixed-name");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
