//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no registry access, so the workspace patches
//! `rand` to this crate. It implements the exact API surface the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges — on top of a deterministic
//! xoshiro256++ generator seeded through SplitMix64 (the same construction
//! rand's own small-rng family uses).
//!
//! Streams differ from upstream rand's `StdRng` (ChaCha12), so seeds
//! reproduce runs against *this* crate, not against real rand. Every use in
//! the workspace only relies on self-consistent determinism.

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait mirroring `rand::SeedableRng` (only the `u64` entry point).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly by [`Rng::gen`] (stand-in for
/// `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts (stand-in for `rand`'s `SampleRange`).
/// Generic over the output type, with a single blanket impl per range shape
/// (below), so integer literals in range expressions infer from the call
/// site exactly as with real rand.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform in `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Uniform u64 in `[0, n)` by Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry to keep the distribution exactly uniform.
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core::SeedableRng prescribes.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_range_is_roughly_flat() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}
