//! Offline stand-in for `serde_derive`.
//!
//! This workspace never serialises anything — the `#[derive(Serialize,
//! Deserialize)]` annotations on the public types exist so downstream users
//! *could* plug in real serde. The build container has no registry access,
//! so these derives expand to nothing; swap the `[patch.crates-io]` entries
//! in the workspace root for the real crates to get actual impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
