//! Cross-crate integration tests: the full pipeline from traffic synthesis
//! through simulation, collection, reconstruction, diagnosis and pattern
//! aggregation, checked against simulator ground truth.

use microscope_repro::prelude::*;
use microscope_repro::sim::PacketOutcome;
use microscope_repro::trace::TraceOutcome;

fn run_paper_chain(
    rate: f64,
    millis: u64,
    seed: u64,
    faults: Vec<Fault>,
) -> (
    Topology,
    Vec<f64>,
    microscope_repro::sim::SimOutput,
    Reconstruction,
    Timelines,
) {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: rate,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    for f in faults {
        sim.add_fault(f);
    }
    let out = sim.run(&packets);
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    (topology, rates, out, recon, timelines)
}

#[test]
fn reconstruction_agrees_with_ground_truth_under_load() {
    let (_t, _r, out, recon, _tl) = run_paper_chain(1_800_000.0, 25, 3, vec![]);
    assert_eq!(recon.traces.len(), out.fates.len());
    let mut wrong = 0;
    for (tr, fate) in recon.traces.iter().zip(&out.fates) {
        let ok = match (&tr.outcome, &fate.outcome) {
            (TraceOutcome::Delivered(a), PacketOutcome::Delivered(b)) => a == b,
            (TraceOutcome::InferredDrop { nf, .. }, PacketOutcome::Dropped { nf: n2, .. }) => {
                nf == n2
            }
            (TraceOutcome::Unresolved, PacketOutcome::InFlight) => true,
            _ => false,
        };
        if !ok || tr.flow != fate.packet.flow {
            wrong += 1;
        }
    }
    // §7: IPID reconstruction is allowed rare identity swaps; everything
    // else must agree.
    assert!(
        (wrong as f64) < 1e-3 * out.fates.len() as f64,
        "{wrong} / {} traces disagree with ground truth",
        out.fates.len()
    );
}

#[test]
fn injected_interrupt_is_top_culprit_for_its_victims() {
    let topology = paper_topology();
    let nat2 = topology.by_name("nat2").unwrap();
    let (t, rates, _out, recon, timelines) = run_paper_chain(
        1_200_000.0,
        40,
        9,
        vec![Fault::Interrupt {
            nf: nat2,
            at: 15 * MILLIS,
            duration: MILLIS,
        }],
    );
    let engine = Microscope::new(t, rates, DiagnosisConfig::default());
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    assert!(!diagnoses.is_empty());
    // The victims attributable to the interrupt are the ones *at nat2*
    // whose queuing started inside the stall window. (Victims elsewhere in
    // the same wall-clock window are mostly natural traffic clumps — the
    // concurrent culprits the paper also observes.)
    let mut hits = 0;
    let mut misses = 0;
    for d in &diagnoses {
        if d.victim.nf != nat2
            || d.victim.observed_ts < 15 * MILLIS
            || d.victim.observed_ts > 18 * MILLIS
        {
            continue;
        }
        match d.culprits.first().map(|c| c.node) {
            Some(NodeId::Nf(nf)) if nf == nat2 => hits += 1,
            _ => misses += 1,
        }
    }
    assert!(
        hits > 3 * misses.max(1),
        "interrupt victims: {hits} hit, {misses} miss"
    );
}

#[test]
fn burst_victims_blame_the_source_and_patterns_name_the_flow() {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 1_200_000.0,
            ..Default::default()
        },
        5,
    );
    let bg = gen.generate(0, 30 * MILLIS);
    let bf = FiveTuple::new(
        microscope_repro::types::parse_ip("99.0.0.1").unwrap(),
        microscope_repro::types::parse_ip("20.0.0.1").unwrap(),
        5555,
        80,
        Proto::TCP,
    );
    let b = burst(bf, 10 * MILLIS, 2000, 150, 64);
    let packets = Schedule::merge([bg, b]).finalize(0);
    let sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    let out = sim.run(&packets);
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let engine = Microscope::new(topology.clone(), rates, DiagnosisConfig::default());
    let diagnoses = engine.diagnose_all(&recon, &timelines);

    // Most victims' top culprit is the source, and the bursting flow must
    // appear in the culprit flow sets.
    let src_top = diagnoses
        .iter()
        .filter(|d| d.culprits.first().is_some_and(|c| c.node == NodeId::Source))
        .count();
    assert!(
        src_top * 2 > diagnoses.len(),
        "{src_top} of {}",
        diagnoses.len()
    );

    let relations = diagnoses_to_relations(&recon, &diagnoses);
    let pats = aggregate_patterns(&relations, &PatternConfig::default(), &|id| {
        topology.nf(id).kind
    });
    assert!(
        pats.iter().take(5).any(|p| p.culprit.flow.matches(&bf)),
        "burst flow must surface in the top patterns: {:?}",
        pats.iter().take(5).collect::<Vec<_>>()
    );
}

#[test]
fn microscope_beats_netmedic_with_ground_truth_attribution() {
    // The §6.2 comparison in miniature, using the experiment harness's
    // event attribution (victims are matched to injected events, then each
    // tool's rank of the true culprit is taken).
    use microscope_repro::baseline::{NetMedic, NetMedicConfig};
    use microscope_repro::experiments::scoring::correct_rate;
    use microscope_repro::experiments::{build_history, score_run};
    use microscope_repro::experiments::{InjectionPlan, PlanConfig, RunSpec};

    let mut spec = RunSpec::new(180 * MILLIS, 1_200_000.0, 13);
    spec.diagnosis.victims.max_victims = Some(400);
    let flows = microscope_repro::experiments::runner::candidate_flows(spec.rate_pps, spec.seed);
    spec.plan = InjectionPlan::random(
        &paper_topology(),
        spec.duration,
        &flows,
        &PlanConfig {
            n_bursts: 2,
            n_interrupts: 1,
            with_bug: false,
            ..Default::default()
        },
        spec.seed,
    );
    let run = microscope_repro::experiments::run_spec(&spec);
    let nm = NetMedic::new(run.topology.clone(), NetMedicConfig::default());
    let hist = build_history(
        &run.out,
        run.topology.len(),
        &run.peak_rates,
        nm.window_ns(),
    );
    let scored = score_run(&run, &nm, &hist);
    assert!(
        scored.len() > 20,
        "too few scored victims: {}",
        scored.len()
    );
    let ms: Vec<usize> = scored.iter().map(|s| s.microscope_rank).collect();
    let nmr: Vec<usize> = scored.iter().map(|s| s.netmedic_rank).collect();
    assert!(
        correct_rate(&ms) > 0.6,
        "microscope correct rate {}",
        correct_rate(&ms)
    );
    assert!(correct_rate(&ms) >= correct_rate(&nmr));
}

#[test]
fn recursion_depth_stays_within_paper_bound() {
    let topology = paper_topology();
    let fw1 = topology.by_name("fw1").unwrap();
    let (t, rates, _out, recon, timelines) = run_paper_chain(
        1_600_000.0,
        30,
        17,
        vec![Fault::Interrupt {
            nf: fw1,
            at: 10 * MILLIS,
            duration: 2 * MILLIS,
        }],
    );
    let bound = t.recursion_bound();
    let engine = Microscope::new(t, rates, DiagnosisConfig::default());
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    let max_rec = diagnoses.iter().map(|d| d.recursions).max().unwrap_or(0);
    assert!(
        max_rec <= bound,
        "recursions {max_rec} exceed the theoretical bound {bound}"
    );
    // The paper observed <= 5 in practice on this topology; allow slack but
    // assert the same order of magnitude.
    assert!(max_rec <= 12, "recursions {max_rec} look unbounded");
}

#[test]
fn parallel_pipeline_is_bit_identical_to_sequential_on_16_nf_run() {
    // The paper's 16-NF deployment with an injected interrupt, reconstructed
    // and diagnosed once sequentially and then with several worker counts.
    // The parallel pipeline merges all shards in stable input order, so
    // every artifact must compare equal — not approximately, identically.
    let topology = paper_topology();
    assert_eq!(topology.len(), 16, "the paper deployment has 16 NFs");
    let nat2 = topology.by_name("nat2").unwrap();
    let (t, rates, out, _recon, _tl) = run_paper_chain(
        1_200_000.0,
        25,
        11,
        vec![Fault::Interrupt {
            nf: nat2,
            at: 10 * MILLIS,
            duration: MILLIS,
        }],
    );

    let seq_recon = reconstruct(&t, &out.bundle, &ReconstructionConfig::default());
    let seq_timelines = Timelines::build(&seq_recon);
    let seq_engine = Microscope::new(t.clone(), rates.clone(), DiagnosisConfig::default());
    let seq_diag = seq_engine.diagnose_all(&seq_recon, &seq_timelines);
    assert!(!seq_diag.is_empty(), "the interrupt must produce victims");

    for threads in [2usize, 4, 8] {
        let recon_cfg = ReconstructionConfig {
            threads,
            ..Default::default()
        };
        let par_recon = reconstruct(&t, &out.bundle, &recon_cfg);
        assert_eq!(par_recon.traces, seq_recon.traces, "threads={threads}");
        assert_eq!(par_recon.report, seq_recon.report, "threads={threads}");
        assert_eq!(
            par_recon.rx_to_trace, seq_recon.rx_to_trace,
            "threads={threads}"
        );

        let par_timelines = Timelines::build(&par_recon);
        let par_engine = Microscope::new(
            t.clone(),
            rates.clone(),
            DiagnosisConfig {
                threads,
                ..Default::default()
            },
        );
        let par_diag = par_engine.diagnose_all(&par_recon, &par_timelines);
        assert_eq!(par_diag, seq_diag, "threads={threads}");
    }
}

#[test]
fn collector_off_means_no_diagnosis_data_and_no_overhead() {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 1_000_000.0,
            ..Default::default()
        },
        1,
    );
    let packets = gen.generate(0, 10 * MILLIS).finalize(0);
    let sim = Simulation::new(
        topology.clone(),
        cfgs,
        SimConfig {
            collector: CollectorConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let out = sim.run(&packets);
    assert_eq!(out.bundle.packet_appearances(), 0);
    assert!(out.bundle.source_flows.is_empty());
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    assert_eq!(recon.traces.len(), 0);
}
