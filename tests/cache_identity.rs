//! Memoization-correctness tests: the period-keyed step cache must be
//! invisible in every output bit.
//!
//! Cache entries are pure functions of their `(nf, anchor, threshold)` key
//! for a fixed reconstruction and configuration, so a cached run — at any
//! thread count, with any hit/miss interleaving — must produce diagnoses
//! identical to the cache-disabled sequential path. These tests pin that
//! across seeds and worker counts on the paper's 16-NF deployment.

use microscope_repro::prelude::*;

fn run_16nf(rate: f64, millis: u64, seed: u64) -> (Topology, Vec<f64>, Reconstruction, Timelines) {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: rate,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    let nat2 = topology.by_name("nat2").unwrap();
    sim.add_fault(Fault::Interrupt {
        nf: nat2,
        at: (millis / 2) * MILLIS,
        duration: MILLIS,
    });
    let out = sim.run(&packets);
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    (topology, rates, recon, timelines)
}

fn config(threads: usize, cache: bool) -> DiagnosisConfig {
    DiagnosisConfig {
        threads,
        cache,
        ..Default::default()
    }
}

#[test]
fn cached_diagnosis_is_bit_identical_across_seeds_and_threads() {
    for seed in [11u64, 23, 47] {
        let (t, rates, recon, timelines) = run_16nf(1_200_000.0, 20, seed);

        // Ground truth: sequential, cache disabled (the pre-cache code
        // path, minus sharing of any kind).
        let plain = Microscope::new(t.clone(), rates.clone(), config(1, false));
        let (expected, off_stats) = plain.diagnose_all_stats(&recon, &timelines);
        assert!(!expected.is_empty(), "seed {seed} produced no victims");
        assert_eq!(
            off_stats,
            CacheStats::default(),
            "disabled cache must report zero activity"
        );

        for threads in [1usize, 2, 4] {
            for cache in [true, false] {
                let engine = Microscope::new(t.clone(), rates.clone(), config(threads, cache));
                let (got, stats) = engine.diagnose_all_stats(&recon, &timelines);
                assert_eq!(
                    got, expected,
                    "seed {seed}, threads {threads}, cache {cache}: output diverged"
                );
                if cache {
                    // Victims cluster in bursts, so sharing must actually
                    // happen — a cache that never hits is a silent repeat
                    // of the per-victim recomputation this PR removes.
                    assert!(
                        stats.hits > 0,
                        "seed {seed}, threads {threads}: no cache hits over {} victims",
                        expected.len()
                    );
                    assert!(stats.entries > 0 && stats.entries <= stats.misses);
                }
            }
        }
    }
}

#[test]
fn repeated_cached_runs_are_identical() {
    // Same engine config, two independent runs (fresh cache each): the
    // diagnoses and the sequential-path cache counters must reproduce.
    let (t, rates, recon, timelines) = run_16nf(1_300_000.0, 15, 7);
    let engine = Microscope::new(t, rates, config(1, true));
    let (a, sa) = engine.diagnose_all_stats(&recon, &timelines);
    let (b, sb) = engine.diagnose_all_stats(&recon, &timelines);
    assert_eq!(a, b);
    assert_eq!(sa, sb, "sequential cache statistics must be deterministic");
    assert!(sa.hit_rate() > 0.0);
}
