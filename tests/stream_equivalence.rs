//! Streaming-equivalence suite: the streamed pipeline must be a bit-exact
//! replay of the offline oracle.
//!
//! The offline pipeline (`reconstruct` + `Timelines::build` + diagnosis)
//! stays the ground truth; `StreamEngine` consumes the identical records as
//! time chunks and must produce the same traces, report, back-references,
//! timelines, and diagnoses for every seed, chunk size, and cache setting —
//! the only sanctioned divergence is `Reconstruction::streams`, which
//! streaming leaves empty (nothing downstream of timeline construction
//! reads it).

use microscope_repro::prelude::*;
use microscope_repro::trace::NfTimelineBuilder;

fn run_16nf(rate: f64, millis: u64, seed: u64) -> (Topology, Vec<f64>, TraceBundle) {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: rate,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    let nat2 = topology.by_name("nat2").unwrap();
    // Long enough to overflow nat2's ring at the higher offered rates, so
    // the suite covers inferred drops and flow mismatches, not just the
    // happy path.
    sim.add_fault(Fault::Interrupt {
        nf: nat2,
        at: (millis / 2) * MILLIS,
        duration: 3 * MILLIS,
    });
    let out = sim.run(&packets);
    (topology, rates, out.bundle)
}

fn diag_config(cache: bool) -> DiagnosisConfig {
    let mut dc = DiagnosisConfig {
        cache,
        ..Default::default()
    };
    dc.victims.latency = LatencyThreshold::Quantile(0.99);
    dc.victims.max_victims = Some(2_000);
    dc
}

#[test]
fn streamed_pipeline_is_bit_identical_to_offline() {
    for seed in [11u64, 42] {
        let (topology, rates, bundle) = run_16nf(1_600_000.0, 20, seed);
        let offline = reconstruct(&topology, &bundle, &ReconstructionConfig::default());
        let off_tl = Timelines::build(&offline);
        assert!(
            offline.report.delivered > 0 && offline.report.inferred_drops > 0,
            "seed {seed}: run must exercise drops"
        );
        let oracle = Microscope::new(topology.clone(), rates.clone(), diag_config(true));
        let (off_diag, _) = oracle.diagnose_all_stats(&offline, &off_tl);
        assert!(!off_diag.is_empty(), "seed {seed} produced no victims");

        for chunk_ms in [3u64, 11] {
            for cache in [true, false] {
                let tag = format!("seed {seed}, chunk {chunk_ms} ms, cache {cache}");
                let mut engine = StreamEngine::new(&topology, StreamConfig::default());
                for chunk in chunk_bundle(&bundle, chunk_ms * MILLIS) {
                    engine.push_chunk(&chunk).expect("chunk fits topology");
                }
                let out = engine.finish_and_diagnose(rates.clone(), diag_config(cache));
                assert_eq!(out.recon.traces, offline.traces, "{tag}: traces");
                assert_eq!(out.recon.hops, offline.hops, "{tag}: hop arena");
                assert_eq!(out.recon.report, offline.report, "{tag}: report");
                assert_eq!(
                    out.recon.rx_to_trace, offline.rx_to_trace,
                    "{tag}: rx_to_trace"
                );
                assert_eq!(
                    out.recon.hop_path_ids, offline.hop_path_ids,
                    "{tag}: hop_path_ids"
                );
                assert_eq!(out.timelines, off_tl, "{tag}: timelines");
                assert_eq!(out.diagnoses, off_diag, "{tag}: diagnoses");
            }
        }
    }
}

#[test]
fn streamed_timelines_match_the_builder_contract() {
    // The streaming engine's timelines come from incremental
    // NfTimelineBuilder pushes; double-check the builder itself on this
    // workload against the batch constructor (guards the engine's oracle).
    let (topology, _, bundle) = run_16nf(1_000_000.0, 15, 7);
    let offline = reconstruct(&topology, &bundle, &ReconstructionConfig::default());
    let off_tl = Timelines::build(&offline);
    let _ = NfTimelineBuilder::new; // builder is part of the public API
    let mut engine = StreamEngine::new(&topology, StreamConfig::default());
    for chunk in chunk_bundle(&bundle, 5 * MILLIS) {
        engine.push_chunk(&chunk).expect("chunk fits topology");
    }
    let (_, tl) = engine.finish();
    assert_eq!(tl, off_tl);
}

#[test]
fn working_set_stays_bounded_as_the_run_grows() {
    // Peak frontier bytes must track the chunk window, not the run length:
    // a 4x longer run at the same chunk size may not inflate the peak more
    // than a small constant factor.
    let chunk = 4 * MILLIS;
    let mut peaks = Vec::new();
    for millis in [10u64, 40] {
        let (topology, _, bundle) = run_16nf(1_000_000.0, millis, 13);
        let mut engine = StreamEngine::new(&topology, StreamConfig::default());
        for c in chunk_bundle(&bundle, chunk) {
            engine.push_chunk(&c).expect("chunk fits topology");
        }
        peaks.push(engine.working_set_peak());
        let (recon, _) = engine.finish();
        assert!(recon.report.total > 0);
    }
    let (small, large) = (peaks[0], peaks[1]);
    assert!(
        large < small.max(1) * 3,
        "peak frontier grew with run length: {small} -> {large}"
    );
}
