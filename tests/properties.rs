//! Property-based tests over the core invariants, spanning crates.

use microscope_repro::collector::{
    decode_nf_log, encode_nf_log, FlowRecord, NfLog, PacketMeta, RxBatch, TxBatch,
};
use microscope_repro::diagnosis::local_scores;
use microscope_repro::diagnosis::propagation::credit_walk;
use microscope_repro::prelude::*;
use microscope_repro::sim::PacketOutcome;
use microscope_repro::trace::TraceOutcome;
use nf_types::Interval;
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Proto::TCP), Just(Proto::UDP), Just(Proto::ICMP)],
    )
        .prop_map(|(s, d, sp, dp, pr)| FiveTuple::new(s, d, sp, dp, pr))
}

fn arb_nf_log() -> impl Strategy<Value = NfLog> {
    let rx = proptest::collection::vec(
        (
            0u64..1_000_000_000,
            proptest::collection::vec(any::<u16>(), 1..=32),
        ),
        0..20,
    );
    let tx = proptest::collection::vec(
        (
            0u64..1_000_000_000,
            proptest::option::of(0u16..8),
            proptest::collection::vec(any::<u16>(), 1..=32),
        ),
        0..20,
    );
    let flows = proptest::collection::vec((0u64..1_000_000_000, any::<u16>(), arb_flow()), 0..20);
    (rx, tx, flows).prop_map(|(rx, tx, flows)| {
        let mut rxb: Vec<RxBatch> = rx
            .into_iter()
            .map(|(ts, ipids)| RxBatch { ts, ipids })
            .collect();
        rxb.sort_by_key(|b| b.ts);
        let mut txb: Vec<TxBatch> = tx
            .into_iter()
            .map(|(ts, to, ipids)| TxBatch {
                ts,
                to: to.map(NfId),
                ipids,
            })
            .collect();
        txb.sort_by_key(|b| b.ts);
        let mut fl: Vec<FlowRecord> = flows
            .into_iter()
            .map(|(ts, ipid, flow)| FlowRecord { ipid, flow, ts })
            .collect();
        fl.sort_by_key(|f| f.ts);
        NfLog {
            nf: NfId(3),
            rx: rxb,
            tx: txb,
            flows: fl,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire encoding round-trips every well-formed log.
    #[test]
    fn encode_decode_round_trip(log in arb_nf_log()) {
        let bytes = encode_nf_log(&log).expect("encodes");
        let back = decode_nf_log(&bytes).expect("decodes");
        prop_assert_eq!(back, log);
    }

    /// Eqs. (1)+(2): Si + Sp always equals the queue length n_i − n_p.
    #[test]
    fn si_plus_sp_is_queue_length(
        len_us in 1u64..100_000,
        n_arrived in 0u64..100_000,
        backlog in 0u64..5_000,
        rate_mpps in 1u32..40,
    ) {
        let n_processed = n_arrived.saturating_sub(backlog);
        let qp = microscope_repro::trace::QueuingPeriod {
            interval: Interval::new(0, len_us * 1_000),
            preset: 0..0,
            n_arrived,
            n_processed,
        };
        let s = local_scores(&qp, rate_mpps as f64 * 1e5);
        prop_assert!((s.total() - qp.queue_len() as f64).abs() < 1e-6);
        prop_assert!(s.si >= 0.0);
    }

    /// §4.2 credit walk: credits are conserved — they sum to exactly the
    /// effective timespan reduction, and no credit is negative. Spans range
    /// up to 3× the largest `texp` so stretch-past-`texp` (where the walk
    /// resets its baseline to `out.min(texp)`, not `out`) is exercised on
    /// arbitrary squeeze/stretch interleavings.
    #[test]
    fn credit_walk_conserves_reduction(
        texp in 1u64..1_000_000,
        spans in proptest::collection::vec(0u64..3_000_000, 1..10),
    ) {
        let credits = credit_walk(texp, &spans);
        prop_assert_eq!(credits.len(), spans.len());
        // The conserved quantity is texp − the *final effective* timespan:
        // squeezes lower it, stretches raise it back (clamped by texp) and
        // cancel earlier credit — §4.2's "effective reduction from f's
        // perspective".
        let eff = spans
            .iter()
            .fold(texp, |prev, &s| if s < prev { s } else { s.min(texp) });
        let total: u64 = credits.iter().sum();
        prop_assert_eq!(total, texp.saturating_sub(eff));
        prop_assert!(total <= texp);
        prop_assert!(credits.iter().all(|&c| c <= texp));
    }

    /// Flow aggregates: a parent produced by any single-dimension
    /// generalisation still matches everything the child matches.
    #[test]
    fn aggregate_generalisation_is_monotone(flow in arb_flow()) {
        let exact = microscope_repro::types::FlowAggregate::exact(&flow);
        prop_assert!(exact.matches(&flow));
        let mut agg = exact;
        // March the src prefix all the way up; matching must never break.
        while let Some(p) = agg.src.parent() {
            agg.src = p;
            prop_assert!(agg.matches(&flow));
            prop_assert!(agg.covers(&exact));
        }
        let mut agg = exact;
        while let Some(r) = agg.src_port.static_parent() {
            agg.src_port = r;
            prop_assert!(agg.matches(&flow));
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// §7 timestamp audit: clock-skew correction clamps record timestamps
    /// at 0 while source emission times keep running, so a corrected bundle
    /// can legitimately contain arrivals that precede their own send times.
    /// Every downstream `sent − arrival`-style subtraction must saturate —
    /// this feeds adversarial per-NF offsets (far beyond anything the
    /// estimator would emit) straight into `correct_bundle` and asserts the
    /// whole reconstruct → find_victims path survives without an underflow
    /// panic (debug builds abort on wrapping subtraction).
    #[test]
    fn skew_corrected_pipeline_never_underflows(
        offsets in proptest::collection::vec(-2_000_000_000i64..2_000_000_000, 2),
        n_pkts in 32u16..128,
        spacing in 500u64..20_000,
    ) {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        let topo = b.build().unwrap();

        let mut c = Collector::new(&topo, CollectorConfig::default());
        for i in 0..n_pkts {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000, 80, Proto::TCP),
            };
            let t = 1_000 + i as u64 * spacing;
            c.record_source(t, &m);
            // Each NF's records carry its own (adversarially) skewed clock.
            let skewed = |true_ts: u64, off: i64| (true_ts as i64 + off).max(0) as u64;
            c.record_rx(NfId(0), skewed(t + 1_000, offsets[0]), &[m]);
            c.record_tx(NfId(0), skewed(t + 2_000, offsets[0]), Some(NfId(1)), &[m]);
            c.record_rx(NfId(1), skewed(t + 3_000, offsets[1]), &[m]);
            c.record_tx(NfId(1), skewed(t + 5_000, offsets[1]), None, &[m]);
        }
        let bundle = c.into_bundle();

        let vcfg = VictimConfig {
            latency: LatencyThreshold::Quantile(0.5),
            ..Default::default()
        };
        // Path 1: the estimator's own offsets (whatever it makes of the
        // adversarial clocks).
        let est = microscope_repro::trace::estimate_offsets(
            &topo,
            &bundle,
            &microscope_repro::trace::SkewConfig::default(),
        );
        let fixed = microscope_repro::trace::correct_bundle(&bundle, &est);
        let recon = reconstruct(&topo, &fixed, &ReconstructionConfig::default());
        let _ = microscope_repro::diagnosis::find_victims(&recon, &vcfg);

        // Path 2: the raw adversarial offsets applied directly — correction
        // pins whole logs to ts = 0, the worst case for underflow.
        let fixed = microscope_repro::trace::correct_bundle(&bundle, &offsets);
        let recon = reconstruct(&topo, &fixed, &ReconstructionConfig::default());
        let _ = microscope_repro::diagnosis::find_victims(&recon, &vcfg);
    }
}

proptest! {
    // Each case runs a full simulate→reconstruct cycle; keep the case count
    // bounded so debug-mode `cargo test` stays snappy.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end on random mini-workloads: a deterministic 2-NF chain run
    /// must reconstruct every packet exactly (no drops, moderate rate).
    #[test]
    fn chain_reconstruction_is_exact_on_random_workloads(
        seed in 0u64..500,
        n_flows in 1usize..20,
        rate_khz in 50u32..400,
    ) {
        let mut sb = ScenarioBuilder::new();
        let a = sb.nf(NfKind::Nat, "nat1");
        let b = sb.nf(NfKind::Vpn, "vpn1");
        sb.entry(a);
        sb.edge(a, b);
        let (topo, cfgs) = sb.build();
        let mut gen = CaidaLike::new(
            CaidaLikeConfig {
                rate_pps: rate_khz as f64 * 1e3,
                active_flows: n_flows,
                ..Default::default()
            },
            seed,
        );
        let packets = gen.generate(0, 2 * MILLIS).finalize(0);
        let sim = Simulation::new(topo.clone(), cfgs, SimConfig { seed, ..Default::default() });
        let out = sim.run(&packets);
        let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
        prop_assert_eq!(recon.report.flow_mismatches, 0);
        for (tr, fate) in recon.traces.iter().zip(&out.fates) {
            prop_assert_eq!(tr.flow, fate.packet.flow);
            match (&tr.outcome, &fate.outcome) {
                (TraceOutcome::Delivered(x), PacketOutcome::Delivered(y)) => {
                    prop_assert_eq!(x, y)
                }
                (TraceOutcome::InferredDrop { nf, .. }, PacketOutcome::Dropped { nf: n2, .. }) => {
                    prop_assert_eq!(nf, n2)
                }
                (TraceOutcome::Unresolved, PacketOutcome::InFlight) => {}
                (got, want) => prop_assert!(false, "recon {:?} truth {:?}", got, want),
            }
        }
    }
}
