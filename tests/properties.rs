//! Property-based tests over the core invariants, spanning crates.

use microscope_repro::collector::{
    decode_nf_log, encode_nf_log, FlowRecord, NfLog, RxBatch, TxBatch,
};
use microscope_repro::diagnosis::local_scores;
use microscope_repro::diagnosis::propagation::credit_walk;
use microscope_repro::prelude::*;
use microscope_repro::sim::PacketOutcome;
use microscope_repro::trace::TraceOutcome;
use nf_types::Interval;
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Proto::TCP), Just(Proto::UDP), Just(Proto::ICMP)],
    )
        .prop_map(|(s, d, sp, dp, pr)| FiveTuple::new(s, d, sp, dp, pr))
}

fn arb_nf_log() -> impl Strategy<Value = NfLog> {
    let rx = proptest::collection::vec(
        (0u64..1_000_000_000, proptest::collection::vec(any::<u16>(), 1..=32)),
        0..20,
    );
    let tx = proptest::collection::vec(
        (
            0u64..1_000_000_000,
            proptest::option::of(0u16..8),
            proptest::collection::vec(any::<u16>(), 1..=32),
        ),
        0..20,
    );
    let flows = proptest::collection::vec((0u64..1_000_000_000, any::<u16>(), arb_flow()), 0..20);
    (rx, tx, flows).prop_map(|(rx, tx, flows)| {
        let mut rxb: Vec<RxBatch> = rx
            .into_iter()
            .map(|(ts, ipids)| RxBatch { ts, ipids })
            .collect();
        rxb.sort_by_key(|b| b.ts);
        let mut txb: Vec<TxBatch> = tx
            .into_iter()
            .map(|(ts, to, ipids)| TxBatch {
                ts,
                to: to.map(NfId),
                ipids,
            })
            .collect();
        txb.sort_by_key(|b| b.ts);
        let mut fl: Vec<FlowRecord> = flows
            .into_iter()
            .map(|(ts, ipid, flow)| FlowRecord { ipid, flow, ts })
            .collect();
        fl.sort_by_key(|f| f.ts);
        NfLog {
            nf: NfId(3),
            rx: rxb,
            tx: txb,
            flows: fl,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire encoding round-trips every well-formed log.
    #[test]
    fn encode_decode_round_trip(log in arb_nf_log()) {
        let bytes = encode_nf_log(&log);
        let back = decode_nf_log(&bytes).expect("decodes");
        prop_assert_eq!(back, log);
    }

    /// Eqs. (1)+(2): Si + Sp always equals the queue length n_i − n_p.
    #[test]
    fn si_plus_sp_is_queue_length(
        len_us in 1u64..100_000,
        n_arrived in 0u64..100_000,
        backlog in 0u64..5_000,
        rate_mpps in 1u32..40,
    ) {
        let n_processed = n_arrived.saturating_sub(backlog);
        let qp = microscope_repro::trace::QueuingPeriod {
            interval: Interval::new(0, len_us * 1_000),
            preset: 0..0,
            n_arrived,
            n_processed,
        };
        let s = local_scores(&qp, rate_mpps as f64 * 1e5);
        prop_assert!((s.total() - qp.queue_len() as f64).abs() < 1e-6);
        prop_assert!(s.si >= 0.0);
    }

    /// §4.2 credit walk: credits are conserved — they sum to exactly the
    /// effective timespan reduction, and no credit is negative.
    #[test]
    fn credit_walk_conserves_reduction(
        texp in 1u64..1_000_000,
        spans in proptest::collection::vec(0u64..1_000_000, 1..8),
    ) {
        let credits = credit_walk(texp, &spans);
        prop_assert_eq!(credits.len(), spans.len());
        // The conserved quantity is texp − the *final effective* timespan:
        // squeezes lower it, stretches raise it back (clamped by texp) and
        // cancel earlier credit — §4.2's "effective reduction from f's
        // perspective".
        let eff = spans
            .iter()
            .fold(texp, |prev, &s| if s < prev { s } else { s.min(texp) });
        let total: u64 = credits.iter().sum();
        prop_assert_eq!(total, texp.saturating_sub(eff));
        prop_assert!(credits.iter().all(|&c| c <= texp));
    }

    /// Flow aggregates: a parent produced by any single-dimension
    /// generalisation still matches everything the child matches.
    #[test]
    fn aggregate_generalisation_is_monotone(flow in arb_flow()) {
        let exact = microscope_repro::types::FlowAggregate::exact(&flow);
        prop_assert!(exact.matches(&flow));
        let mut agg = exact;
        // March the src prefix all the way up; matching must never break.
        while let Some(p) = agg.src.parent() {
            agg.src = p;
            prop_assert!(agg.matches(&flow));
            prop_assert!(agg.covers(&exact));
        }
        let mut agg = exact;
        while let Some(r) = agg.src_port.static_parent() {
            agg.src_port = r;
            prop_assert!(agg.matches(&flow));
        }
    }

}

proptest! {
    // Each case runs a full simulate→reconstruct cycle; keep the case count
    // bounded so debug-mode `cargo test` stays snappy.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end on random mini-workloads: a deterministic 2-NF chain run
    /// must reconstruct every packet exactly (no drops, moderate rate).
    #[test]
    fn chain_reconstruction_is_exact_on_random_workloads(
        seed in 0u64..500,
        n_flows in 1usize..20,
        rate_khz in 50u32..400,
    ) {
        let mut sb = ScenarioBuilder::new();
        let a = sb.nf(NfKind::Nat, "nat1");
        let b = sb.nf(NfKind::Vpn, "vpn1");
        sb.entry(a);
        sb.edge(a, b);
        let (topo, cfgs) = sb.build();
        let mut gen = CaidaLike::new(
            CaidaLikeConfig {
                rate_pps: rate_khz as f64 * 1e3,
                active_flows: n_flows,
                ..Default::default()
            },
            seed,
        );
        let packets = gen.generate(0, 2 * MILLIS).finalize(0);
        let sim = Simulation::new(topo.clone(), cfgs, SimConfig { seed, ..Default::default() });
        let out = sim.run(packets);
        let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
        prop_assert_eq!(recon.report.flow_mismatches, 0);
        for (tr, fate) in recon.traces.iter().zip(&out.fates) {
            prop_assert_eq!(tr.flow, fate.packet.flow);
            match (&tr.outcome, &fate.outcome) {
                (TraceOutcome::Delivered(x), PacketOutcome::Delivered(y)) => {
                    prop_assert_eq!(x, y)
                }
                (TraceOutcome::InferredDrop { nf, .. }, PacketOutcome::Dropped { nf: n2, .. }) => {
                    prop_assert_eq!(nf, n2)
                }
                (TraceOutcome::Unresolved, PacketOutcome::InFlight) => {}
                (got, want) => prop_assert!(false, "recon {:?} truth {:?}", got, want),
            }
        }
    }
}
