//! Running in the wild (§6.5): the full 16-NF topology at high load, no
//! injected problems — just the natural noise of a busy software dataplane.
//! Microscope digests the latency tail into a handful of actionable causal
//! patterns.
//!
//! ```sh
//! cargo run --release --example wild_run
//! ```

use autofocus::{aggregate_patterns, PatternConfig};
use microscope::diagnoses_to_relations;
use microscope_repro::experiments::runner::wild_run;
use nf_types::{NodeId, MILLIS};

fn main() {
    let run = wild_run(400 * MILLIS, 2_000_000.0, 3, 0.99);

    println!(
        "wild run: {} packets offered, {} delivered, {} dropped",
        run.recon.report.total, run.recon.report.delivered, run.recon.report.inferred_drops
    );
    println!("diagnosing {} tail victims...", run.diagnoses.len());

    // Who causes the tail?
    let mut by_node: std::collections::HashMap<String, (f64, usize)> = Default::default();
    for d in &run.diagnoses {
        if let Some(top) = d.culprits.first() {
            let name = match top.node {
                NodeId::Source => "traffic source".into(),
                NodeId::Nf(id) => run.topology.nf(id).name.clone(),
            };
            let e = by_node.entry(name).or_default();
            e.0 += top.score;
            e.1 += 1;
        }
    }
    let mut ranked: Vec<(String, (f64, usize))> = by_node.into_iter().collect();
    ranked.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(&b.0)));
    println!("\ntop culprit locations (by victims where they rank #1):");
    for (name, (score, victims)) in ranked.iter().take(8) {
        println!("  {name:>14}: {victims:>5} victims, blame mass {score:.0}");
    }

    // Aggregate to operator-facing patterns.
    let relations = diagnoses_to_relations(&run.recon, &run.diagnoses);
    let patterns = aggregate_patterns(&relations, &PatternConfig::default(), &run.kind_of());
    println!(
        "\n{} causal relations aggregated into {} patterns; top 5:",
        relations.len(),
        patterns.len()
    );
    for p in patterns.iter().take(5) {
        println!("  {p}");
    }

    // The paper's headline observation: a noticeable share of tail victims
    // are caused by a *different* NF than the one where they suffer.
    let propagated = run
        .diagnoses
        .iter()
        .filter(|d| {
            d.culprits
                .first()
                .is_some_and(|c| c.node != NodeId::Nf(d.victim.nf))
        })
        .count();
    println!(
        "\npropagated victims: {propagated} of {} ({:.1}%) — blaming the local NF alone would mislead",
        run.diagnoses.len(),
        propagated as f64 / run.diagnoses.len().max(1) as f64 * 100.0
    );
}
