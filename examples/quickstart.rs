//! Quickstart: simulate a small NF chain, break it, and let Microscope tell
//! you what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use microscope_repro::prelude::*;

fn main() {
    // 1. Describe the deployment: a NAT feeding a VPN.
    let mut sb = ScenarioBuilder::new();
    let nat = sb.nf(NfKind::Nat, "nat1");
    let vpn = sb.nf(NfKind::Vpn, "vpn1");
    sb.entry(nat);
    sb.edge(nat, vpn);
    let (topology, nf_configs) = sb.build();
    let peak_rates: Vec<f64> = nf_configs
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();

    // 2. Offer CAIDA-like traffic and stall the NAT for 1 ms at t = 10 ms —
    //    the kind of CPU interrupt operators chase for hours.
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 400_000.0,
            ..Default::default()
        },
        42,
    );
    let packets = gen.generate(0, 40 * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), nf_configs, SimConfig::default());
    sim.add_fault(Fault::Interrupt {
        nf: nat,
        at: 10 * MILLIS,
        duration: MILLIS,
    });
    let out = sim.run(&packets);
    println!(
        "simulated {} packets; p99 latency {:.1} µs, max {:.1} µs",
        out.fates.len(),
        out.latency_quantile(0.99).unwrap_or(0) as f64 / 1e3,
        out.latency_quantile(1.0).unwrap_or(0) as f64 / 1e3,
    );

    // 3. Offline diagnosis — Microscope sees ONLY the collector bundle
    //    (batched timestamps + 2-byte IPIDs), not the simulator internals.
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    println!(
        "reconstructed {} traces ({} delivered, {} ambiguous IPIDs resolved)",
        recon.report.total, recon.report.delivered, recon.report.ambiguities
    );

    let engine = Microscope::new(topology.clone(), peak_rates, DiagnosisConfig::default());
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    println!("diagnosed {} victim (packet, NF) pairs", diagnoses.len());

    // 4. Aggregate the per-victim verdicts: who is to blame overall?
    let mut blame: std::collections::HashMap<String, f64> = Default::default();
    for d in &diagnoses {
        for c in &d.culprits {
            let name = match c.node {
                NodeId::Source => "traffic source".to_string(),
                NodeId::Nf(id) => topology.nf(id).name.clone(),
            };
            *blame.entry(name).or_default() += c.score;
        }
    }
    let mut blame: Vec<(String, f64)> = blame.into_iter().collect();
    blame.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nblame ranking (total packets of queue build-up attributed):");
    for (who, score) in &blame {
        println!("  {who:>14}: {score:.0}");
    }
    assert_eq!(blame[0].0, "nat1", "the stalled NAT must top the ranking");
    println!("\n=> Microscope correctly blames the stalled NAT.");
}
