//! The paper's §1 war story, end to end: a Firewall → VPN chain where some
//! packets see long latency *at the VPN*, the VPN vendor looks innocent in
//! isolation, and the true culprit is a Firewall bug that slows specific
//! flows — producing intermittent bursts towards the VPN (Fig. 8).
//!
//! ```sh
//! cargo run --release --example chain_diagnosis
//! ```

use microscope_repro::prelude::*;
use nf_traffic::intermittent_flows;
use nf_types::{FlowAggregate, PortRange, Prefix, ProtoMatch, MICROS};

fn main() {
    // Firewall -> VPN, as in the paper's introduction.
    let mut sb = ScenarioBuilder::new();
    let fw = sb.nf(NfKind::Firewall, "fw1");
    let vpn = sb.nf(NfKind::Vpn, "vpn1");
    sb.entry(fw);
    sb.edge(fw, vpn);
    let (topology, nf_configs) = sb.build();
    let peak_rates: Vec<f64> = nf_configs
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();

    // The bug: port-7777 flows hit a slow path in the firewall (20 µs per
    // packet instead of ~0.6 µs).
    let trigger = FiveTuple::new(
        nf_types::parse_ip("100.0.0.1").expect("ip"),
        nf_types::parse_ip("32.0.0.1").expect("ip"),
        7777,
        443,
        Proto::TCP,
    );
    let bug_rule = FlowAggregate {
        src: Prefix::host(trigger.src_ip),
        dst: Prefix::host(trigger.dst_ip),
        proto: ProtoMatch::Exact(Proto::TCP),
        src_port: PortRange::exact(7777),
        dst_port: PortRange::exact(443),
    };

    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 450_000.0,
            ..Default::default()
        },
        11,
    );
    let duration = 60 * MILLIS;
    let background = gen.generate(0, duration);
    // The trigger flow shows up every 15 ms with ~80 packets.
    let triggers = intermittent_flows(&[trigger], 8 * MILLIS, duration, 15 * MILLIS, 80, 1_000, 64);
    let packets = Schedule::merge([background, triggers]).finalize(0);

    let mut sim = Simulation::new(topology.clone(), nf_configs, SimConfig::default());
    sim.add_fault(Fault::BugRule {
        nf: fw,
        matches: bug_rule,
        per_packet_ns: 20 * MICROS,
    });
    let out = sim.run(&packets);

    // Step 1 of the blame game: "is the VPN slow?" — victims DO appear at
    // the VPN (they wait in its queue behind the firewall's bursts).
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let engine = Microscope::new(topology.clone(), peak_rates, DiagnosisConfig::default());
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    let at_vpn = diagnoses.iter().filter(|d| d.victim.nf == vpn).count();
    let at_fw = diagnoses.iter().filter(|d| d.victim.nf == fw).count();
    println!("victims observed: {at_fw} at the firewall, {at_vpn} at the VPN");

    // Step 2: Microscope's verdict — recursive diagnosis walks the VPN's
    // queue back to the firewall's slow processing (S_p^{VPN<-FW} > 0).
    let mut fw_blame = 0.0;
    let mut vpn_blame = 0.0;
    for d in &diagnoses {
        for c in &d.culprits {
            match c.node {
                NodeId::Nf(id) if id == fw => fw_blame += c.score,
                NodeId::Nf(id) if id == vpn => vpn_blame += c.score,
                _ => {}
            }
        }
    }
    println!("blame mass: firewall {fw_blame:.0}, vpn {vpn_blame:.0}");
    assert!(
        fw_blame > 3.0 * vpn_blame,
        "the firewall must dominate the blame"
    );

    // Step 3: pattern aggregation names the trigger flow without being told
    // anything about the bug (§6.4).
    let relations = diagnoses_to_relations(&recon, &diagnoses);
    let patterns = aggregate_patterns(&relations, &PatternConfig::default(), &|id| {
        topology.nf(id).kind
    });
    println!("\ntop causal patterns:");
    for p in patterns.iter().take(5) {
        println!("  {p}");
    }
    let found = patterns
        .iter()
        .take(5)
        .any(|p| p.culprit.flow.matches(&trigger));
    assert!(found, "the trigger flow must appear among the top patterns");
    println!("\n=> the port-7777 flow at fw1 is exposed as the culprit — case closed.");
}
