//! Microscope vs NetMedic on the same incident — the §2/Fig. 2 challenge
//! case where the cause and the symptom do not overlap in time.
//!
//! A NAT feeding a VPN takes a CPU interrupt; when it resumes it releases
//! its backlog at full speed, and packets that never overlapped the
//! interrupt pile up at the VPN milliseconds later. Time-window correlation
//! (NetMedic) looks at the victim's window; queue-based analysis
//! (Microscope) follows the queuing period across NFs and time.
//!
//! ```sh
//! cargo run --release --example tool_duel
//! ```

use microscope_repro::prelude::*;
use msc_experiments::build_history;

fn main() {
    // A dedicated NAT -> VPN chain (Fig. 2's setting).
    let mut sb = ScenarioBuilder::new();
    let nat = sb.nf(NfKind::Nat, "nat1");
    let vpn = sb.nf(NfKind::Vpn, "vpn1");
    sb.entry(nat);
    sb.edge(nat, vpn);
    let (topology, mut nf_configs) = sb.build();
    // Give the NAT a deep ring so the interrupt's backlog survives intact.
    nf_configs[nat.0 as usize].queue_capacity = 8192;
    let peak_rates: Vec<f64> = nf_configs
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();

    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 500_000.0,
            ..Default::default()
        },
        21,
    );
    let packets = gen.generate(0, 120 * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), nf_configs, SimConfig::default());
    sim.add_fault(Fault::Interrupt {
        nf: nat,
        at: 40 * MILLIS,
        duration: 4 * MILLIS,
    });
    let out = sim.run(&packets);

    // Diagnose, then pick a victim at the VPN observed well after the
    // interrupt ended (44 ms) — a packet that never saw the interrupt.
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let engine = Microscope::new(
        topology.clone(),
        peak_rates.clone(),
        DiagnosisConfig::default(),
    );
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    let victim = diagnoses
        .iter()
        .filter(|d| d.victim.nf == vpn && d.victim.arrival_ts > 45 * MILLIS)
        .max_by_key(|d| d.victim.observed_ts - d.victim.arrival_ts)
        .expect("the squeezed release must create late VPN victims");
    println!(
        "victim at the VPN: arrived {:.2} ms, left {:.2} ms (interrupt: 40–44 ms at nat1)",
        victim.victim.arrival_ts as f64 / MILLIS as f64,
        victim.victim.observed_ts as f64 / MILLIS as f64
    );

    let name_of = |n: NodeId| match n {
        NodeId::Source => "source".to_string(),
        NodeId::Nf(id) => topology.nf(id).name.clone(),
    };

    println!("\nMicroscope's ranked culprits (queue-based, no time window):");
    for (i, c) in victim.culprits.iter().take(4).enumerate() {
        println!(
            "  #{} {:>8} score {:>6.1}  culprit activity {:.2}–{:.2} ms",
            i + 1,
            name_of(c.node),
            c.score,
            c.window.start as f64 / MILLIS as f64,
            c.window.end as f64 / MILLIS as f64
        );
    }
    let ms_rank = victim
        .culprits
        .iter()
        .position(|c| c.node == NodeId::Nf(nat))
        .map(|p| p + 1);

    let nm = NetMedic::new(topology.clone(), NetMedicConfig::default());
    let hist = build_history(&out, topology.len(), &peak_rates, nm.window_ns());
    let ranked = nm.diagnose(&hist, victim.victim.nf, victim.victim.observed_ts);
    println!("\nNetMedic's ranked culprits (10 ms window correlation):");
    for (i, r) in ranked.iter().take(4).enumerate() {
        println!("  #{} {:>8} score {:.4}", i + 1, name_of(r.node), r.score);
    }
    let nm_rank = ranked
        .iter()
        .position(|r| r.node == NodeId::Nf(nat))
        .map(|p| p + 1);

    println!(
        "\ntrue culprit nat1 — Microscope rank {:?}, NetMedic rank {:?}",
        ms_rank, nm_rank
    );
    assert_eq!(
        ms_rank,
        Some(1),
        "Microscope must blame the NAT first: {:?}",
        victim
            .culprits
            .iter()
            .map(|c| (name_of(c.node), c.score))
            .collect::<Vec<_>>()
    );
    println!("=> Microscope pins the NAT even though the victim never met the interrupt.");
}
