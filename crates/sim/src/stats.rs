//! Ground-truth run output: per-packet fates and per-NF counters.
//!
//! Everything here is simulator-side truth that the diagnosis pipeline never
//! sees. Experiments use it to (a) pick victims with known causes, (b) score
//! diagnosis accuracy and (c) draw the Fig. 1–3 time series.

use nf_types::{Nanos, NfId, Packet};
use serde::{Deserialize, Serialize};

/// One hop of a packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    /// The NF traversed.
    pub nf: NfId,
    /// When the packet was enqueued at the NF's input ring.
    pub enqueued_at: Nanos,
    /// When the NF read it (start of its batch).
    pub read_at: Nanos,
    /// When the NF emitted it downstream (end of its batch).
    pub sent_at: Nanos,
}

impl HopRecord {
    /// Time spent in the input queue.
    pub fn queue_delay(&self) -> Nanos {
        self.read_at - self.enqueued_at
    }

    /// Total time at the NF (queue + service).
    pub fn nf_delay(&self) -> Nanos {
        self.sent_at - self.enqueued_at
    }
}

/// Terminal outcome of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketOutcome {
    /// Left the exit NF at this time.
    Delivered(Nanos),
    /// Dropped at this NF's full input ring at this time.
    Dropped {
        /// Where it was dropped.
        nf: NfId,
        /// When.
        at: Nanos,
    },
    /// Still in flight when the run ended.
    InFlight,
}

/// The full ground-truth journey of one packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketFate {
    /// The packet.
    pub packet: Packet,
    /// NF hops completed, in path order.
    pub hops: Vec<HopRecord>,
    /// How the journey ended.
    pub outcome: PacketOutcome,
}

impl PacketFate {
    /// End-to-end latency for delivered packets.
    pub fn latency(&self) -> Option<Nanos> {
        match self.outcome {
            PacketOutcome::Delivered(at) => Some(at - self.packet.created_at),
            _ => None,
        }
    }

    /// True if the packet was dropped.
    pub fn dropped(&self) -> bool {
        matches!(self.outcome, PacketOutcome::Dropped { .. })
    }

    /// The NF ids along the path (including the drop NF if dropped).
    pub fn path(&self) -> Vec<NfId> {
        let mut p: Vec<NfId> = self.hops.iter().map(|h| h.nf).collect();
        if let PacketOutcome::Dropped { nf, .. } = self.outcome {
            p.push(nf);
        }
        p
    }
}

/// Aggregate counters for one NF.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NfStats {
    /// Packets read from the input ring.
    pub processed: u64,
    /// Packets dropped at the full input ring.
    pub dropped: u64,
    /// Number of rx batches.
    pub batches: u64,
    /// Nanoseconds spent processing (busy time).
    pub busy_ns: Nanos,
    /// Maximum input-ring occupancy observed.
    pub max_queue: usize,
}

impl NfStats {
    /// Mean achieved processing rate in pps over `duration`.
    pub fn rate_pps(&self, duration: Nanos) -> f64 {
        if duration == 0 {
            0.0
        } else {
            self.processed as f64 / (duration as f64 / 1e9)
        }
    }

    /// Fraction of time the NF was busy.
    pub fn utilisation(&self, duration: Nanos) -> f64 {
        if duration == 0 {
            0.0
        } else {
            self.busy_ns as f64 / duration as f64
        }
    }

    /// Mean batch size — near 32 means the NF is saturated, near 1 means it
    /// polls an almost-empty ring.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.processed as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{FiveTuple, Proto};

    fn fate() -> PacketFate {
        let p = Packet::new(1, FiveTuple::new(1, 2, 3, 4, Proto::TCP), 64, 100);
        PacketFate {
            packet: p,
            hops: vec![
                HopRecord {
                    nf: NfId(0),
                    enqueued_at: 110,
                    read_at: 150,
                    sent_at: 200,
                },
                HopRecord {
                    nf: NfId(1),
                    enqueued_at: 210,
                    read_at: 220,
                    sent_at: 300,
                },
            ],
            outcome: PacketOutcome::Delivered(300),
        }
    }

    #[test]
    fn latency_and_path() {
        let f = fate();
        assert_eq!(f.latency(), Some(200));
        assert_eq!(f.path(), vec![NfId(0), NfId(1)]);
        assert!(!f.dropped());
    }

    #[test]
    fn hop_delays() {
        let h = fate().hops[0];
        assert_eq!(h.queue_delay(), 40);
        assert_eq!(h.nf_delay(), 90);
    }

    #[test]
    fn dropped_fate() {
        let mut f = fate();
        f.outcome = PacketOutcome::Dropped {
            nf: NfId(2),
            at: 400,
        };
        assert!(f.dropped());
        assert_eq!(f.latency(), None);
        assert_eq!(f.path(), vec![NfId(0), NfId(1), NfId(2)]);
    }

    #[test]
    fn nf_stats_derivations() {
        let s = NfStats {
            processed: 1000,
            dropped: 10,
            batches: 100,
            busy_ns: 500_000,
            max_queue: 64,
        };
        // 1000 packets in 1 ms = 1 Mpps.
        assert!((s.rate_pps(1_000_000) - 1e6).abs() < 1.0);
        assert!((s.utilisation(1_000_000) - 0.5).abs() < 1e-9);
        assert!((s.mean_batch() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_safe() {
        let s = NfStats::default();
        assert_eq!(s.rate_pps(0), 0.0);
        assert_eq!(s.utilisation(0), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
    }
}
