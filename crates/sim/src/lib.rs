//! A deterministic discrete-event simulator of DPDK-style NF chains.
//!
//! This is the testbed substitute (DESIGN.md §1): the paper runs Click-DPDK
//! NFs on two servers; we simulate the same observable behaviour —
//! poll-mode NFs that read *batches* (up to 32 packets) from bounded input
//! rings (1024 slots, drop-tail), process each packet at a service cost that
//! depends on the NF type and the flow, and forward to downstream queues
//! selected by flow-hash routing. Interrupts stall an NF's poll loop; bug
//! rules slow specific flows down; natural jitter and cache-miss spikes
//! provide the background noise of §6.5's "running in the wild".
//!
//! The simulator is seeded and fully deterministic: the same inputs always
//! produce byte-identical collector bundles, which is what makes every
//! experiment in `msc-experiments` reproducible.
//!
//! Ground truth (unique packet ids, exact per-hop timestamps, the fault
//! journal) is recorded *next to* the collector output and never shown to
//! the diagnosis pipeline — it is only used for scoring accuracy.

#![forbid(unsafe_code)]

pub mod engine;
pub mod faults;
pub mod nf;
pub mod queue;
pub mod scenario;
pub mod service;
pub mod stats;

pub use engine::{SimConfig, SimOutput, Simulation};
pub use faults::{Fault, FaultJournal, InjectedEvent};
pub use nf::{NfConfig, RoutePolicy};
pub use queue::{DropRecord, PacketQueue};
pub use scenario::{paper_nf_configs, single_nf_topology, ScenarioBuilder};
pub use service::ServiceModel;
pub use stats::{NfStats, PacketFate, PacketOutcome};
