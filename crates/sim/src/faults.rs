//! Fault injection and the ground-truth journal.
//!
//! The paper's accuracy evaluation (§6.2) injects three problem types with
//! known ground truth: traffic bursts (created at the source — see
//! `nf_traffic::burst`), CPU interrupts that stall an NF, and NF bugs that
//! process specific flows at a crawl. This module implements the latter two
//! inside the simulator and defines the [`InjectedEvent`] journal that all
//! three share, which the accuracy scorer matches diagnosis output against.

use nf_types::{FiveTuple, FlowAggregate, Interval, Nanos, NfId, NodeId};
use serde::{Deserialize, Serialize};

/// A fault to inject into the simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Fault {
    /// The NF's poll loop stalls for `[at, at + duration)` — a CPU
    /// interrupt / context switch (§6.2 injects 500–1000 µs).
    Interrupt {
        /// Stalled NF.
        nf: NfId,
        /// Stall start.
        at: Nanos,
        /// Stall length.
        duration: Nanos,
    },
    /// A bug: packets of flows matching `matches` are processed at
    /// `per_packet_ns` each instead of the NF's normal cost (§6.2 uses
    /// 0.05 Mpps = 20 µs/packet at one firewall).
    BugRule {
        /// Buggy NF.
        nf: NfId,
        /// Which flows trigger the slow path.
        matches: FlowAggregate,
        /// Slow-path cost per packet.
        per_packet_ns: Nanos,
    },
}

/// Ground truth about one injected problem, used only for scoring.
///
/// `culprit_node` is the location a correct diagnosis should blame, and
/// `window` the time when the problem was active (bursts and interrupts) or
/// each triggering episode (bugs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InjectedEvent {
    /// A traffic burst from the source.
    Burst {
        /// The bursting flows.
        flows: Vec<FiveTuple>,
        /// When the burst was emitted.
        window: Interval,
    },
    /// An NF stall.
    Interrupt {
        /// Stalled NF.
        nf: NfId,
        /// Stall window.
        window: Interval,
    },
    /// A bug-trigger episode: flows matching `matches` hit the slow path at
    /// `nf` during `window`.
    BugTrigger {
        /// Buggy NF.
        nf: NfId,
        /// Trigger-flow aggregate.
        matches: FlowAggregate,
        /// The episode window.
        window: Interval,
    },
}

impl InjectedEvent {
    /// The node a correct diagnosis blames for this event.
    pub fn culprit_node(&self) -> NodeId {
        match self {
            InjectedEvent::Burst { .. } => NodeId::Source,
            InjectedEvent::Interrupt { nf, .. } => NodeId::Nf(*nf),
            InjectedEvent::BugTrigger { nf, .. } => NodeId::Nf(*nf),
        }
    }

    /// When the event was active.
    pub fn window(&self) -> Interval {
        match self {
            InjectedEvent::Burst { window, .. } => *window,
            InjectedEvent::Interrupt { window, .. } => *window,
            InjectedEvent::BugTrigger { window, .. } => *window,
        }
    }

    /// A short human-readable tag for reports.
    pub fn kind_str(&self) -> &'static str {
        match self {
            InjectedEvent::Burst { .. } => "burst",
            InjectedEvent::Interrupt { .. } => "interrupt",
            InjectedEvent::BugTrigger { .. } => "bug",
        }
    }
}

/// The ground-truth journal of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultJournal {
    /// All injected problems, in injection order.
    pub events: Vec<InjectedEvent>,
}

impl FaultJournal {
    /// Records an event.
    pub fn record(&mut self, e: InjectedEvent) {
        self.events.push(e);
    }

    /// Events whose window overlaps `[t - lookback, t]` — the candidates
    /// that could have caused a problem observed at `t` (queues make causes
    /// precede effects by up to tens of milliseconds; Fig. 15 measures the
    /// gap distribution).
    pub fn candidates(&self, t: Nanos, lookback: Nanos) -> Vec<&InjectedEvent> {
        let window = Interval::new(t.saturating_sub(lookback), t + 1);
        self.events
            .iter()
            .filter(|e| e.window().overlaps(&window))
            .collect()
    }
}

/// Per-NF interrupt timetable with O(log n) "when can I run" lookups.
#[derive(Debug, Clone, Default)]
pub struct InterruptSchedule {
    /// Sorted, non-overlapping stall windows.
    windows: Vec<Interval>,
}

impl InterruptSchedule {
    /// Adds a stall window; overlapping windows are merged.
    pub fn add(&mut self, w: Interval) {
        self.windows.push(w);
        self.windows.sort_by_key(|w| w.start);
        let mut merged: Vec<Interval> = Vec::with_capacity(self.windows.len());
        for w in self.windows.drain(..) {
            match merged.last_mut() {
                Some(last) if w.start <= last.end => {
                    last.end = last.end.max(w.end);
                }
                _ => merged.push(w),
            }
        }
        self.windows = merged;
    }

    /// Earliest time `>= t` at which the NF is not stalled.
    pub fn next_available(&self, t: Nanos) -> Nanos {
        // Binary search for the window that could contain t.
        let idx = self.windows.partition_point(|w| w.end <= t);
        match self.windows.get(idx) {
            Some(w) if w.contains(t) => w.end,
            _ => t,
        }
    }

    /// True if the NF is stalled at `t`.
    pub fn stalled_at(&self, t: Nanos) -> bool {
        self.next_available(t) != t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_schedule_pushes_start_time() {
        let mut s = InterruptSchedule::default();
        s.add(Interval::new(100, 200));
        assert_eq!(s.next_available(50), 50);
        assert_eq!(s.next_available(100), 200);
        assert_eq!(s.next_available(150), 200);
        assert_eq!(s.next_available(200), 200);
        assert!(s.stalled_at(150));
        assert!(!s.stalled_at(200));
    }

    #[test]
    fn overlapping_windows_merge() {
        let mut s = InterruptSchedule::default();
        s.add(Interval::new(100, 200));
        s.add(Interval::new(150, 300));
        s.add(Interval::new(400, 500));
        assert_eq!(s.next_available(120), 300);
        assert_eq!(s.next_available(350), 350);
        assert_eq!(s.next_available(450), 500);
    }

    #[test]
    fn journal_candidates_respect_lookback() {
        let mut j = FaultJournal::default();
        j.record(InjectedEvent::Interrupt {
            nf: NfId(0),
            window: Interval::new(1_000, 2_000),
        });
        j.record(InjectedEvent::Interrupt {
            nf: NfId(1),
            window: Interval::new(50_000, 60_000),
        });
        // Observation at t=5000 with 10k lookback sees only the first.
        let c = j.candidates(5_000, 10_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].culprit_node(), NodeId::Nf(NfId(0)));
        // Observation at 55k sees only the second (first is too old).
        let c = j.candidates(55_000, 10_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].culprit_node(), NodeId::Nf(NfId(1)));
    }

    #[test]
    fn event_metadata() {
        let e = InjectedEvent::Burst {
            flows: vec![],
            window: Interval::new(1, 2),
        };
        assert_eq!(e.culprit_node(), NodeId::Source);
        assert_eq!(e.kind_str(), "burst");
    }
}
