//! Static per-NF configuration: service model, queueing and routing.

use crate::service::ServiceModel;
use nf_types::{FiveTuple, FlowAggregate, NfId};
use serde::{Deserialize, Serialize};

/// Where an NF sends a processed packet.
///
/// All policies are *flow-stable*: a given five-tuple always takes the same
/// next hop, which matches real deployments (connection affinity) and is the
/// property §5's path side channel relies on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Send every packet to one fixed downstream NF.
    Fixed(NfId),
    /// Pick a downstream NF by flow hash (ECMP-style load balancing).
    HashAcross(Vec<NfId>),
    /// The firewall policy of the paper's chain (Fig. 10): flows matching
    /// `rule` are diverted to a monitor, everything else goes straight to a
    /// VPN; both sets are flow-hash balanced.
    FirewallSplit {
        /// The diversion rule.
        rule: FlowAggregate,
        /// Monitor instances for matching flows.
        monitors: Vec<NfId>,
        /// VPN instances for the rest.
        vpns: Vec<NfId>,
    },
    /// Packets leave the NF graph here (exit NF).
    Exit,
}

impl RoutePolicy {
    /// Resolves the next hop for `flow`. `None` means the packet exits.
    pub fn next_hop(&self, flow: &FiveTuple) -> Option<NfId> {
        match self {
            RoutePolicy::Fixed(nf) => Some(*nf),
            RoutePolicy::HashAcross(nfs) => {
                assert!(!nfs.is_empty(), "HashAcross with no targets");
                Some(nfs[(flow.stable_hash() % nfs.len() as u64) as usize])
            }
            RoutePolicy::FirewallSplit {
                rule,
                monitors,
                vpns,
            } => {
                let set = if rule.matches(flow) { monitors } else { vpns };
                assert!(!set.is_empty(), "FirewallSplit with empty target set");
                // Use a different hash stream than the NAT level so the two
                // levels of balancing are independent.
                Some(set[(flow.stable_hash().rotate_left(17) % set.len() as u64) as usize])
            }
            RoutePolicy::Exit => None,
        }
    }
}

/// Full static configuration of one NF instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NfConfig {
    /// Service-cost model (defines the peak rate `r_i`).
    pub service: ServiceModel,
    /// Input ring capacity (DPDK default: 1024).
    pub queue_capacity: usize,
    /// Routing policy for processed packets.
    pub route: RoutePolicy,
}

impl NfConfig {
    /// A config with the given service model, default 1024-slot ring and an
    /// explicit route.
    pub fn new(service: ServiceModel, route: RoutePolicy) -> Self {
        Self {
            service,
            queue_capacity: 1024,
            route,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{PortRange, Prefix, Proto, ProtoMatch};

    fn flow(sport: u16) -> FiveTuple {
        FiveTuple::new(0x0a000001, 0x14000001, sport, 80, Proto::TCP)
    }

    #[test]
    fn fixed_route() {
        let r = RoutePolicy::Fixed(NfId(3));
        assert_eq!(r.next_hop(&flow(1)), Some(NfId(3)));
    }

    #[test]
    fn exit_route() {
        assert_eq!(RoutePolicy::Exit.next_hop(&flow(1)), None);
    }

    #[test]
    fn hash_route_is_flow_stable_and_spreads() {
        let r = RoutePolicy::HashAcross(vec![NfId(0), NfId(1), NfId(2)]);
        let mut seen = std::collections::HashSet::new();
        for sport in 0..200 {
            let a = r.next_hop(&flow(sport)).unwrap();
            let b = r.next_hop(&flow(sport)).unwrap();
            assert_eq!(a, b, "not flow-stable");
            seen.insert(a);
        }
        assert_eq!(seen.len(), 3, "hash does not spread: {seen:?}");
    }

    #[test]
    fn firewall_split_diverts_matching_flows() {
        let rule = FlowAggregate {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            proto: ProtoMatch::Any,
            src_port: PortRange::new(1000, 1099),
            dst_port: PortRange::ANY,
        };
        let r = RoutePolicy::FirewallSplit {
            rule,
            monitors: vec![NfId(10)],
            vpns: vec![NfId(20), NfId(21)],
        };
        assert_eq!(r.next_hop(&flow(1050)), Some(NfId(10)));
        let out = r.next_hop(&flow(5000)).unwrap();
        assert!(out == NfId(20) || out == NfId(21));
    }
}
