//! Bounded drop-tail packet queues — the NF input rings.
//!
//! DPDK NFs receive through fixed-size descriptor rings; when the ring is
//! full the NIC drops arriving packets. The queue also keeps an optional
//! down-sampled length time series used by the Fig. 1/2 reproductions.

use nf_types::{Nanos, NfId, Packet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A packet the simulator had to drop because an input ring was full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropRecord {
    /// The packet that was lost.
    pub packet: Packet,
    /// The NF whose input ring was full.
    pub nf: NfId,
    /// When the drop happened.
    pub at: Nanos,
}

/// An entry sitting in an input ring: the packet plus its enqueue time
/// (ground truth for queueing-delay accounting).
#[derive(Debug, Clone, Copy)]
pub struct Queued {
    /// The packet.
    pub packet: Packet,
    /// When it was enqueued.
    pub enqueued_at: Nanos,
}

/// A bounded drop-tail FIFO with length-series sampling.
#[derive(Debug)]
pub struct PacketQueue {
    items: VecDeque<Queued>,
    capacity: usize,
    /// (time, length) samples, recorded at most once per `sample_every`.
    series: Vec<(Nanos, usize)>,
    sample_every: Option<Nanos>,
    last_sample: Nanos,
    /// Total packets ever enqueued.
    pub enqueued: u64,
    /// Total packets dropped at the tail.
    pub dropped: u64,
    /// Running maximum length.
    pub max_len: usize,
}

impl PacketQueue {
    /// Creates a queue holding at most `capacity` packets. `sample_every`
    /// enables the length time series at that granularity.
    pub fn new(capacity: usize, sample_every: Option<Nanos>) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            series: Vec::new(),
            sample_every,
            last_sample: 0,
            enqueued: 0,
            dropped: 0,
            max_len: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `packet` at time `at`. Returns `false` (a drop) when full.
    pub fn push(&mut self, packet: Packet, at: Nanos) -> bool {
        self.maybe_sample(at);
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.items.push_back(Queued {
            packet,
            enqueued_at: at,
        });
        self.enqueued += 1;
        self.max_len = self.max_len.max(self.items.len());
        true
    }

    /// Dequeues up to `max` packets at time `at` (one DPDK rx burst).
    pub fn pop_batch(&mut self, max: usize, at: Nanos) -> Vec<Queued> {
        self.maybe_sample(at);
        let n = max.min(self.items.len());
        self.items.drain(..n).collect()
    }

    fn maybe_sample(&mut self, at: Nanos) {
        if let Some(every) = self.sample_every {
            if self.series.is_empty() || at >= self.last_sample + every {
                self.series.push((at, self.items.len()));
                self.last_sample = at;
            }
        }
    }

    /// The recorded (time, length) series (empty unless sampling enabled).
    pub fn series(&self) -> &[(Nanos, usize)] {
        &self.series
    }

    /// Takes the series out of the queue.
    pub fn take_series(&mut self) -> Vec<(Nanos, usize)> {
        std::mem::take(&mut self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{FiveTuple, Proto};

    fn pkt(id: u64) -> Packet {
        Packet::new(id, FiveTuple::new(1, 2, 3, 4, Proto::UDP), 64, 0)
    }

    #[test]
    fn fifo_batching() {
        let mut q = PacketQueue::new(8, None);
        for i in 0..5 {
            assert!(q.push(pkt(i), i * 10));
        }
        let b = q.pop_batch(3, 100);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].packet.id.0, 0);
        assert_eq!(b[2].packet.id.0, 2);
        assert_eq!(b[0].enqueued_at, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_tail_when_full() {
        let mut q = PacketQueue::new(2, None);
        assert!(q.push(pkt(0), 0));
        assert!(q.push(pkt(1), 0));
        assert!(!q.push(pkt(2), 0));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_larger_than_queue_drains_it() {
        let mut q = PacketQueue::new(8, None);
        q.push(pkt(0), 0);
        let b = q.pop_batch(32, 1);
        assert_eq!(b.len(), 1);
        assert!(q.is_empty());
        assert!(q.pop_batch(32, 2).is_empty());
    }

    #[test]
    fn series_sampling_is_rate_limited() {
        let mut q = PacketQueue::new(100, Some(100));
        for i in 0..50u64 {
            q.push(pkt(i), i * 10); // 10 ns apart, sample every 100 ns
        }
        let s = q.series();
        assert!(s.len() <= 6, "{} samples", s.len());
        // Samples are monotonically timed.
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn max_len_tracked() {
        let mut q = PacketQueue::new(10, None);
        for i in 0..7u64 {
            q.push(pkt(i), 0);
        }
        q.pop_batch(5, 1);
        assert_eq!(q.max_len, 7);
    }
}
