//! Canned topologies and NF configurations for the paper's experiments.

use crate::nf::{NfConfig, RoutePolicy};
use crate::service::ServiceModel;
use nf_types::{FlowAggregate, NfId, NfKind, PortRange, Prefix, ProtoMatch, Topology};

/// The firewall diversion rule used in the paper-style scenarios: HTTP
/// traffic (dst port 80) is sent through a monitor, the rest goes straight
/// to a VPN. With the synthetic traffic mix this diverts roughly 1/7 of
/// flows, so monitors are lightly loaded relative to VPNs, as in Fig. 10.
pub fn monitor_rule() -> FlowAggregate {
    FlowAggregate {
        src: Prefix::ANY,
        dst: Prefix::ANY,
        proto: ProtoMatch::Any,
        src_port: PortRange::ANY,
        dst_port: PortRange::exact(80),
    }
}

/// Builds the per-NF configs for [`nf_types::paper_topology`] (Fig. 10):
/// NATs hash-balance over all firewalls, firewalls split matched flows to
/// monitors and the rest to VPNs, monitors hash over VPNs, VPNs exit.
pub fn paper_nf_configs(topology: &Topology) -> Vec<NfConfig> {
    let by_kind = |k: NfKind| -> Vec<NfId> {
        topology
            .nfs()
            .iter()
            .filter(|n| n.kind == k)
            .map(|n| n.id)
            .collect()
    };
    let fws = by_kind(NfKind::Firewall);
    let mons = by_kind(NfKind::Monitor);
    let vpns = by_kind(NfKind::Vpn);
    topology
        .nfs()
        .iter()
        .map(|n| {
            let route = match n.kind {
                NfKind::Nat => RoutePolicy::HashAcross(fws.clone()),
                NfKind::Firewall => RoutePolicy::FirewallSplit {
                    rule: monitor_rule(),
                    monitors: mons.clone(),
                    vpns: vpns.clone(),
                },
                NfKind::Monitor => RoutePolicy::HashAcross(vpns.clone()),
                NfKind::Vpn => RoutePolicy::Exit,
                NfKind::Custom(_) => RoutePolicy::Exit,
            };
            NfConfig::new(ServiceModel::for_kind(n.kind), route)
        })
        .collect()
}

/// A single-NF topology (the Fig. 1 setting: one firewall) with its config.
pub fn single_nf_topology(kind: NfKind) -> (Topology, Vec<NfConfig>) {
    let mut b = Topology::builder();
    let nf = b.add_nf(kind, format!("{}1", kind.label()));
    b.add_entry(nf);
    let t = b.build().expect("single node is a DAG");
    let cfg = NfConfig::new(ServiceModel::for_kind(kind), RoutePolicy::Exit);
    (t, vec![cfg])
}

/// Fluent builder for linear chains and small custom DAGs used by examples
/// and the Fig. 2/3 experiments.
#[derive(Default)]
pub struct ScenarioBuilder {
    builder: Option<nf_types::TopologyBuilder>,
    configs: Vec<(NfId, ServiceModel)>,
    edges: Vec<(NfId, NfId)>,
    entries: Vec<NfId>,
}

impl ScenarioBuilder {
    /// Starts a new scenario.
    pub fn new() -> Self {
        Self {
            builder: Some(nf_types::Topology::builder()),
            configs: Vec::new(),
            edges: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Adds an NF with the default service model for its kind.
    pub fn nf(&mut self, kind: NfKind, name: &str) -> NfId {
        self.nf_with(kind, name, ServiceModel::for_kind(kind))
    }

    /// Adds an NF with an explicit service model.
    pub fn nf_with(&mut self, kind: NfKind, name: &str, model: ServiceModel) -> NfId {
        let id = self
            .builder
            .as_mut()
            .expect("builder consumed")
            .add_nf(kind, name);
        self.configs.push((id, model));
        id
    }

    /// Marks an entry NF.
    pub fn entry(&mut self, nf: NfId) -> &mut Self {
        self.entries.push(nf);
        self
    }

    /// Adds an edge.
    pub fn edge(&mut self, from: NfId, to: NfId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Builds the topology and configs. Routing: NFs with exactly one
    /// downstream get `Fixed`, several get `HashAcross`, none get `Exit`.
    pub fn build(mut self) -> (Topology, Vec<NfConfig>) {
        let mut b = self.builder.take().expect("builder consumed");
        for &e in &self.entries {
            b.add_entry(e);
        }
        for &(f, t) in &self.edges {
            b.add_edge(f, t);
        }
        let topo = b.build().expect("scenario topology must be a DAG");
        let configs = self
            .configs
            .into_iter()
            .map(|(id, model)| {
                let down = topo.downstream(id);
                let route = match down.len() {
                    0 => RoutePolicy::Exit,
                    1 => RoutePolicy::Fixed(down[0]),
                    _ => RoutePolicy::HashAcross(down.to_vec()),
                };
                NfConfig::new(model, route)
            })
            .collect();
        (topo, configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::paper_topology;

    #[test]
    fn paper_configs_route_correctly() {
        let t = paper_topology();
        let cfgs = paper_nf_configs(&t);
        assert_eq!(cfgs.len(), 16);
        let nat1 = t.by_name("nat1").unwrap();
        match &cfgs[nat1.0 as usize].route {
            RoutePolicy::HashAcross(fws) => assert_eq!(fws.len(), 5),
            other => panic!("nat routes {other:?}"),
        }
        let vpn1 = t.by_name("vpn1").unwrap();
        assert!(matches!(cfgs[vpn1.0 as usize].route, RoutePolicy::Exit));
        let fw1 = t.by_name("fw1").unwrap();
        match &cfgs[fw1.0 as usize].route {
            RoutePolicy::FirewallSplit { monitors, vpns, .. } => {
                assert_eq!(monitors.len(), 3);
                assert_eq!(vpns.len(), 4);
            }
            other => panic!("fw routes {other:?}"),
        }
    }

    #[test]
    fn single_nf_scenario() {
        let (t, cfgs) = single_nf_topology(NfKind::Firewall);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries(), t.exits());
        assert!(matches!(cfgs[0].route, RoutePolicy::Exit));
    }

    #[test]
    fn scenario_builder_chain() {
        let mut s = ScenarioBuilder::new();
        let a = s.nf(NfKind::Nat, "nat1");
        let v = s.nf(NfKind::Vpn, "vpn1");
        s.entry(a);
        s.edge(a, v);
        let (t, cfgs) = s.build();
        assert_eq!(t.len(), 2);
        assert!(matches!(cfgs[0].route, RoutePolicy::Fixed(id) if id == v));
        assert!(matches!(cfgs[1].route, RoutePolicy::Exit));
    }

    #[test]
    fn scenario_builder_fanout_uses_hash() {
        let mut s = ScenarioBuilder::new();
        let a = s.nf(NfKind::Nat, "nat1");
        let v1 = s.nf(NfKind::Vpn, "vpn1");
        let v2 = s.nf(NfKind::Vpn, "vpn2");
        s.entry(a);
        s.edge(a, v1);
        s.edge(a, v2);
        let (_, cfgs) = s.build();
        assert!(matches!(&cfgs[0].route, RoutePolicy::HashAcross(v) if v.len() == 2));
    }
}
