//! Per-packet service-cost models.
//!
//! Each NF kind gets a base per-packet cost (the inverse of its peak rate
//! `r_i`, which the paper measures by offline stress testing) plus two noise
//! terms that model real software dataplanes: small multiplicative jitter
//! (pipeline/cache variation) and rare additive spikes (LLC misses, TLB
//! shootdowns). Bug rules (per-flow slow paths) are handled by the fault
//! layer, not here.

use nf_types::{Nanos, NfKind};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Service-cost model of one NF instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Deterministic base cost per packet in nanoseconds. The NF's peak
    /// processing rate is `1e9 / base_cost_ns` pps.
    pub base_cost_ns: Nanos,
    /// Multiplicative jitter amplitude as a fraction (0.05 = ±5% uniform).
    pub jitter_frac: f64,
    /// Probability that a packet takes a cache-miss spike.
    pub spike_prob: f64,
    /// Additional cost of a spike in nanoseconds.
    pub spike_ns: Nanos,
}

impl ServiceModel {
    /// A noiseless model (unit tests, calibration).
    pub fn deterministic(base_cost_ns: Nanos) -> Self {
        Self {
            base_cost_ns,
            jitter_frac: 0.0,
            spike_prob: 0.0,
            spike_ns: 0,
        }
    }

    /// The defaults we use for the paper's four NF kinds. Peak rates land in
    /// the band typical for single-core Click-DPDK NFs with 64-byte packets:
    /// stateless forwarding paths (NAT/firewall/monitor) near 1.6–2.5 Mpps,
    /// the crypto-bound VPN around 0.63 Mpps. The large headroom gap between
    /// the fast NFs and the VPN is what lets an upstream NF's post-stall
    /// release overwhelm a downstream VPN — the propagation regime of §2
    /// and Table 2.
    pub fn for_kind(kind: NfKind) -> Self {
        let (base, jitter, spike_prob, spike_ns) = match kind {
            NfKind::Nat => (520, 0.04, 2e-4, 2_600),
            NfKind::Firewall => (610, 0.05, 2e-4, 3_000),
            NfKind::Monitor => (400, 0.03, 1e-4, 2_000),
            NfKind::Vpn => (1_580, 0.05, 2e-4, 7_600),
            NfKind::Custom(_) => (600, 0.04, 2e-4, 3_000),
        };
        Self {
            base_cost_ns: base,
            jitter_frac: jitter,
            spike_prob,
            spike_ns,
        }
    }

    /// The peak processing rate `r_i` in packets/second implied by the base
    /// cost — what Microscope is configured with.
    pub fn peak_rate_pps(&self) -> f64 {
        1e9 / self.base_cost_ns as f64
    }

    /// Draws the cost of processing one packet.
    pub fn sample_cost(&self, rng: &mut StdRng) -> Nanos {
        let mut cost = self.base_cost_ns as f64;
        if self.jitter_frac > 0.0 {
            let j: f64 = rng.gen_range(-self.jitter_frac..=self.jitter_frac);
            cost *= 1.0 + j;
        }
        let mut total = cost.round() as Nanos;
        if self.spike_prob > 0.0 && rng.gen_bool(self.spike_prob) {
            total = total.saturating_add(self.spike_ns);
        }
        total.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_model_is_exact() {
        let m = ServiceModel::deterministic(500);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample_cost(&mut rng), 500);
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = ServiceModel {
            base_cost_ns: 1000,
            jitter_frac: 0.1,
            spike_prob: 0.0,
            spike_ns: 0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let c = m.sample_cost(&mut rng);
            assert!((900..=1100).contains(&c), "cost {c}");
        }
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let m = ServiceModel {
            base_cost_ns: 1000,
            jitter_frac: 0.0,
            spike_prob: 0.01,
            spike_ns: 50_000,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let spikes = (0..n).filter(|_| m.sample_cost(&mut rng) > 10_000).count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.003, "spike rate {rate}");
    }

    #[test]
    fn peak_rate_inverse_of_cost() {
        let m = ServiceModel::deterministic(500);
        assert!((m.peak_rate_pps() - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn kind_defaults_ordering() {
        // VPN is the slowest, monitor the fastest — the shape the paper's
        // chain relies on (VPN queues build first).
        let vpn = ServiceModel::for_kind(NfKind::Vpn).peak_rate_pps();
        let mon = ServiceModel::for_kind(NfKind::Monitor).peak_rate_pps();
        let nat = ServiceModel::for_kind(NfKind::Nat).peak_rate_pps();
        assert!(vpn < nat && nat < mon);
    }
}
