//! The discrete-event engine.
//!
//! Three event kinds drive the run:
//!
//! * `Emit(i)` — the traffic source emits the i-th packet of the schedule
//!   and load-balances it (flow hash) onto an entry NF.
//! * `Arrive` — a group of packets written by an upstream NF lands on a
//!   downstream input ring after the (configurable, default 0) link delay.
//! * `Wake(nf)` / `BatchDone(nf)` — the poll-mode NF loop: an idle NF with a
//!   non-empty ring starts a batch (up to [`MAX_BATCH`] packets), holds the
//!   core for the sum of per-packet service costs (+ collector surcharge),
//!   then writes one tx batch per downstream and immediately starts the next
//!   batch if the ring is non-empty.
//!
//! Interrupts stall `Wake`/batch starts until the stall window ends; packets
//! keep arriving meanwhile, which is precisely how queues build up (Fig. 1).
//! Everything is ordered by `(time, sequence)` so runs are deterministic.

use crate::faults::{Fault, FaultJournal, InjectedEvent, InterruptSchedule};
use crate::nf::NfConfig;
use crate::queue::{DropRecord, PacketQueue, Queued};
use crate::stats::{HopRecord, NfStats, PacketFate, PacketOutcome};
use msc_collector::{Collector, CollectorConfig, PacketMeta, TraceBundle, MAX_BATCH};
use nf_types::{FlowAggregate, Interval, Nanos, NfId, Packet, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Epoch added to all observed clocks when skew modelling is on (10 s —
/// far larger than any offset, so clocks never read negative).
const CLOCK_EPOCH_NS: i64 = 10_000_000_000;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed for service-time noise.
    pub seed: u64,
    /// Collector settings (recording on/off, per-packet cost).
    pub collector: CollectorConfig,
    /// Record full per-packet ground truth (memory-heavy on long runs).
    pub record_fates: bool,
    /// Sample input-queue lengths at this granularity (for Fig. 1/2 plots).
    pub queue_sample_every: Option<Nanos>,
    /// Wire/propagation delay between NFs (0 = same-host shared ring).
    pub link_delay_ns: Nanos,
    /// Bug-trigger episodes closer than this merge into one journal window.
    pub bug_merge_gap_ns: Nanos,
    /// Hard stop: events after this time are discarded and packets still in
    /// flight stay `InFlight`. `None` = run to completion.
    pub run_until: Option<Nanos>,
    /// Per-NF clock offsets in nanoseconds, applied to the *collector's*
    /// timestamps only (ground truth stays on the true clock). Models NFs
    /// on different servers with unsynchronised clocks (§7); empty = all
    /// clocks perfect. The offline `msc_trace::skew` module estimates and
    /// removes these.
    pub clock_offsets_ns: Vec<i64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            collector: CollectorConfig::default(),
            record_fates: true,
            queue_sample_every: None,
            link_delay_ns: 0,
            bug_merge_gap_ns: 200 * nf_types::MICROS,
            run_until: None,
            clock_offsets_ns: Vec::new(),
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Emit(usize),
    Arrive { nf: NfId, group: Vec<Packet> },
    Wake(NfId),
    BatchDone(NfId),
}

/// Heap ordering: earliest time first, FIFO within a timestamp.
struct Ev(Nanos, u64, EventKind);

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

struct NfState {
    cfg: NfConfig,
    queue: PacketQueue,
    busy: bool,
    in_flight: Vec<(Queued, Nanos)>, // (entry, read_at)
    interrupts: InterruptSchedule,
    bugs: Vec<(FlowAggregate, Nanos)>,
    stats: NfStats,
    last_bug_trigger: Option<usize>, // index into journal.events
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// The collector's view — the *only* thing the diagnosis pipeline sees.
    pub bundle: TraceBundle,
    /// Ground-truth per-packet journeys (empty if `record_fates` was off).
    pub fates: Vec<PacketFate>,
    /// Ground-truth fault journal.
    pub journal: FaultJournal,
    /// Per-NF input-queue length series (empty unless sampling enabled).
    pub queue_series: Vec<Vec<(Nanos, usize)>>,
    /// All ring-full drops.
    pub drops: Vec<DropRecord>,
    /// Per-NF counters.
    pub nf_stats: Vec<NfStats>,
    /// Time of the last processed event.
    pub duration: Nanos,
}

impl SimOutput {
    /// Delivered-packet latencies in nanoseconds (unsorted).
    pub fn latencies(&self) -> Vec<Nanos> {
        self.fates.iter().filter_map(|f| f.latency()).collect()
    }

    /// The p-quantile (0..=1) of delivered latency.
    pub fn latency_quantile(&self, p: f64) -> Option<Nanos> {
        let mut l = self.latencies();
        if l.is_empty() {
            return None;
        }
        l.sort_unstable();
        let idx = ((l.len() - 1) as f64 * p).round() as usize;
        Some(l[idx])
    }
}

/// A configured simulation, ready to run once.
pub struct Simulation {
    topology: Topology,
    nfs: Vec<NfState>,
    cfg: SimConfig,
    rng: StdRng,
    collector: Collector,
    journal: FaultJournal,
    drops: Vec<DropRecord>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    now: Nanos,
}

impl Simulation {
    /// Creates a simulation. `nf_configs` must have one entry per NF, in
    /// `NfId` order.
    pub fn new(topology: Topology, nf_configs: Vec<NfConfig>, cfg: SimConfig) -> Self {
        assert_eq!(
            nf_configs.len(),
            topology.len(),
            "need one NfConfig per NF instance"
        );
        let collector = Collector::new(&topology, cfg.collector.clone());
        let nfs = nf_configs
            .into_iter()
            .map(|c| NfState {
                queue: PacketQueue::new(c.queue_capacity, cfg.queue_sample_every),
                cfg: c,
                busy: false,
                in_flight: Vec::new(),
                interrupts: InterruptSchedule::default(),
                bugs: Vec::new(),
                stats: NfStats::default(),
                last_bug_trigger: None,
            })
            .collect();
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            topology,
            nfs,
            cfg,
            rng,
            collector,
            journal: FaultJournal::default(),
            drops: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Injects a fault before the run.
    pub fn add_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Interrupt { nf, at, duration } => {
                let w = Interval::new(at, at + duration);
                self.nfs[nf.0 as usize].interrupts.add(w);
                self.journal
                    .record(InjectedEvent::Interrupt { nf, window: w });
            }
            Fault::BugRule {
                nf,
                matches,
                per_packet_ns,
            } => {
                self.nfs[nf.0 as usize].bugs.push((matches, per_packet_ns));
            }
        }
    }

    /// Journals a source-side burst (bursts are built into the schedule by
    /// `nf_traffic`; the engine only needs the ground truth entry).
    pub fn journal_burst(&mut self, flows: Vec<nf_types::FiveTuple>, window: Interval) {
        self.journal.record(InjectedEvent::Burst { flows, window });
    }

    /// The timestamp NF `nf`'s (possibly skewed) clock shows at true time
    /// `t` — what its collector hook records. When skew is modelled, every
    /// clock (including the source's) additionally carries a large common
    /// epoch, as real clocks do: without it, a negative offset near the
    /// start of the run would underflow and clamp, which no real deployment
    /// exhibits.
    fn observed(&self, nf: NfId, t: Nanos) -> Nanos {
        match self.cfg.clock_offsets_ns.get(nf.0 as usize) {
            Some(&off) => (t as i64 + off + CLOCK_EPOCH_NS) as Nanos,
            None => t,
        }
    }

    /// The source's clock (epoch only; the source is the reference clock).
    fn observed_source(&self, t: Nanos) -> Nanos {
        if self.cfg.clock_offsets_ns.is_empty() {
            t
        } else {
            t + CLOCK_EPOCH_NS as Nanos
        }
    }

    fn schedule(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev(at, self.seq, kind)));
    }

    /// Runs the simulation over `packets` (must be sorted by `created_at`
    /// with contiguous ascending ids, as produced by
    /// `nf_traffic::Schedule::finalize`).
    pub fn run(mut self, packets: &[Packet]) -> SimOutput {
        let base_id = packets.first().map_or(0, |p| p.id.0);
        debug_assert!(packets
            .windows(2)
            .all(|w| { w[0].created_at <= w[1].created_at && w[0].id.0 + 1 == w[1].id.0 }));
        let mut fates: Vec<PacketFate> = if self.cfg.record_fates {
            packets
                .iter()
                .map(|&p| PacketFate {
                    packet: p,
                    hops: Vec::new(),
                    outcome: PacketOutcome::InFlight,
                })
                .collect()
        } else {
            Vec::new()
        };

        if !packets.is_empty() {
            self.schedule(packets[0].created_at, EventKind::Emit(0));
        }

        while let Some(Reverse(Ev(at, _, kind))) = self.heap.pop() {
            if let Some(end) = self.cfg.run_until {
                if at > end {
                    break;
                }
            }
            self.now = at;
            match kind {
                EventKind::Emit(i) => {
                    let p = packets[i];
                    let meta = PacketMeta {
                        ipid: p.ipid,
                        flow: p.flow,
                    };
                    let obs = self.observed_source(at);
                    self.collector.record_source(obs, &meta);
                    let entry = self.topology.entry_for(&p.flow);
                    self.deliver(entry, &[p], at, base_id, &mut fates);
                    if i + 1 < packets.len() {
                        self.schedule(packets[i + 1].created_at, EventKind::Emit(i + 1));
                    }
                }
                EventKind::Arrive { nf, group } => {
                    self.deliver(nf, &group, at, base_id, &mut fates);
                }
                EventKind::Wake(nf) => {
                    self.wake(nf, at, base_id, &mut fates);
                }
                EventKind::BatchDone(nf) => {
                    self.batch_done(nf, at, base_id, &mut fates);
                }
            }
        }

        let queue_series = self.nfs.iter_mut().map(|n| n.queue.take_series()).collect();
        let mut nf_stats: Vec<NfStats> = Vec::with_capacity(self.nfs.len());
        for n in &self.nfs {
            let mut s = n.stats.clone();
            s.max_queue = n.queue.max_len;
            s.dropped = n.queue.dropped;
            nf_stats.push(s);
        }
        SimOutput {
            bundle: self.collector.into_bundle(),
            fates,
            journal: self.journal,
            queue_series,
            drops: self.drops,
            nf_stats,
            duration: self.now,
        }
    }

    /// Lands `group` on `nf`'s input ring at `at`, waking the NF if idle.
    fn deliver(
        &mut self,
        nf: NfId,
        group: &[Packet],
        at: Nanos,
        base_id: u64,
        fates: &mut [PacketFate],
    ) {
        let idx = nf.0 as usize;
        for &p in group {
            if self.nfs[idx].queue.push(p, at) {
                continue;
            }
            let rec = DropRecord { packet: p, nf, at };
            self.drops.push(rec);
            if self.cfg.record_fates {
                fates[(p.id.0 - base_id) as usize].outcome = PacketOutcome::Dropped { nf, at };
            }
        }
        if !self.nfs[idx].busy && !self.nfs[idx].queue.is_empty() {
            let start = self.nfs[idx].interrupts.next_available(at);
            if start == at {
                self.start_batch(nf, at, base_id, fates);
            } else {
                self.schedule(start, EventKind::Wake(nf));
            }
        }
    }

    fn wake(&mut self, nf: NfId, at: Nanos, base_id: u64, fates: &mut [PacketFate]) {
        let idx = nf.0 as usize;
        if self.nfs[idx].busy || self.nfs[idx].queue.is_empty() {
            return;
        }
        let start = self.nfs[idx].interrupts.next_available(at);
        if start == at {
            self.start_batch(nf, at, base_id, fates);
        } else {
            self.schedule(start, EventKind::Wake(nf));
        }
    }

    fn start_batch(&mut self, nf: NfId, at: Nanos, base_id: u64, fates: &mut [PacketFate]) {
        let idx = nf.0 as usize;
        let batch = self.nfs[idx].queue.pop_batch(MAX_BATCH, at);
        if batch.is_empty() {
            return;
        }
        let metas: Vec<PacketMeta> = batch
            .iter()
            .map(|q| PacketMeta {
                ipid: q.packet.ipid,
                flow: q.packet.flow,
            })
            .collect();
        let obs = self.observed(nf, at);
        self.collector.record_rx(nf, obs, &metas);

        // Per-packet service costs: bug slow path wins over the normal model.
        let mut service: Nanos = self.collector.batch_overhead_ns(batch.len());
        let mut bug_hit: Option<FlowAggregate> = None;
        for q in &batch {
            let slow = self.nfs[idx]
                .bugs
                .iter()
                .find(|(agg, _)| agg.matches(&q.packet.flow));
            service += match slow {
                Some(&(agg, cost)) => {
                    bug_hit = Some(agg);
                    cost
                }
                None => self.nfs[idx].cfg.service.sample_cost(&mut self.rng),
            };
        }
        let done = at + service;

        if let Some(agg) = bug_hit {
            self.journal_bug_trigger(nf, agg, at, done);
        }

        let st = &mut self.nfs[idx];
        st.stats.batches += 1;
        st.stats.processed += batch.len() as u64;
        st.stats.busy_ns = st.stats.busy_ns.saturating_add(service);
        st.busy = true;
        st.in_flight = batch.into_iter().map(|q| (q, at)).collect();
        let _ = (base_id, fates); // hop records are written at batch_done
        self.schedule(done, EventKind::BatchDone(nf));
    }

    fn journal_bug_trigger(&mut self, nf: NfId, agg: FlowAggregate, at: Nanos, done: Nanos) {
        let idx = nf.0 as usize;
        if let Some(ev_idx) = self.nfs[idx].last_bug_trigger {
            if let InjectedEvent::BugTrigger { window, .. } = &mut self.journal.events[ev_idx] {
                if at <= window.end.saturating_add(self.cfg.bug_merge_gap_ns) {
                    window.end = window.end.max(done);
                    return;
                }
            }
        }
        self.journal.record(InjectedEvent::BugTrigger {
            nf,
            matches: agg,
            window: Interval::new(at, done),
        });
        self.nfs[idx].last_bug_trigger = Some(self.journal.events.len() - 1);
    }

    fn batch_done(&mut self, nf: NfId, at: Nanos, base_id: u64, fates: &mut [PacketFate]) {
        let idx = nf.0 as usize;
        let batch = std::mem::take(&mut self.nfs[idx].in_flight);
        self.nfs[idx].busy = false;

        // Group consecutive packets by next hop, preserving wire order.
        let mut groups: Vec<(Option<NfId>, Vec<Packet>)> = Vec::new();
        for (q, read_at) in &batch {
            let hop = self.nfs[idx].cfg.route.next_hop(&q.packet.flow);
            match groups.last_mut() {
                Some((h, g)) if *h == hop => g.push(q.packet),
                _ => groups.push((hop, vec![q.packet])),
            }
            if self.cfg.record_fates {
                fates[(q.packet.id.0 - base_id) as usize]
                    .hops
                    .push(HopRecord {
                        nf,
                        enqueued_at: q.enqueued_at,
                        read_at: *read_at,
                        sent_at: at,
                    });
            }
        }

        for (hop, group) in groups {
            let metas: Vec<PacketMeta> = group
                .iter()
                .map(|p| PacketMeta {
                    ipid: p.ipid,
                    flow: p.flow,
                })
                .collect();
            let obs = self.observed(nf, at);
            self.collector.record_tx(nf, obs, hop, &metas);
            match hop {
                Some(d) => {
                    if self.cfg.link_delay_ns == 0 {
                        self.deliver(d, &group, at, base_id, fates);
                    } else {
                        self.schedule(
                            at.saturating_add(self.cfg.link_delay_ns),
                            EventKind::Arrive { nf: d, group },
                        );
                    }
                }
                None => {
                    if self.cfg.record_fates {
                        for p in &group {
                            fates[(p.id.0 - base_id) as usize].outcome =
                                PacketOutcome::Delivered(at);
                        }
                    }
                }
            }
        }

        // Keep the poll loop going.
        if !self.nfs[idx].queue.is_empty() {
            let start = self.nfs[idx].interrupts.next_available(at);
            if start == at {
                self.start_batch(nf, at, base_id, fates);
            } else {
                self.schedule(start, EventKind::Wake(nf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::RoutePolicy;
    use crate::service::ServiceModel;
    use nf_types::{FiveTuple, NfKind, Proto, Topology, MICROS};

    fn chain2() -> (Topology, Vec<NfConfig>) {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        let t = b.build().unwrap();
        let cfgs = vec![
            NfConfig::new(ServiceModel::deterministic(500), RoutePolicy::Fixed(v)),
            NfConfig::new(ServiceModel::deterministic(800), RoutePolicy::Exit),
        ];
        (t, cfgs)
    }

    fn flow(sport: u16) -> FiveTuple {
        FiveTuple::new(0x0a000001, 0x14000001, sport, 80, Proto::TCP)
    }

    fn packets(n: u64, gap: Nanos) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i, flow(1000), 64, i * gap))
            .collect()
    }

    #[test]
    fn packets_traverse_the_chain() {
        let (t, cfgs) = chain2();
        let sim = Simulation::new(t, cfgs, SimConfig::default());
        let out = sim.run(&packets(10, 10_000)); // slow arrivals, no queueing
        assert_eq!(out.fates.len(), 10);
        for f in &out.fates {
            assert!(matches!(f.outcome, PacketOutcome::Delivered(_)), "{f:?}");
            assert_eq!(f.path(), vec![NfId(0), NfId(1)]);
            // Unloaded latency = 500 + 800 ns service + 2 × 8 ns collector.
            assert_eq!(f.latency().unwrap(), 1316);
        }
        assert_eq!(out.nf_stats[0].processed, 10);
        assert_eq!(out.nf_stats[1].processed, 10);
    }

    #[test]
    fn batching_kicks_in_under_load() {
        let (t, cfgs) = chain2();
        let sim = Simulation::new(t, cfgs, SimConfig::default());
        // 1 packet every 100 ns (10 Mpps) into a 2 Mpps NAT: queues, batches.
        let out = sim.run(&packets(500, 100));
        assert!(
            out.nf_stats[0].mean_batch() > 8.0,
            "{}",
            out.nf_stats[0].mean_batch()
        );
        // Overload drops at the NAT once its 1024-ring fills? 500 < 1024: no.
        assert_eq!(out.nf_stats[0].dropped, 0);
    }

    #[test]
    fn ring_overflow_drops() {
        let (t, mut cfgs) = chain2();
        cfgs[0].queue_capacity = 64;
        let sim = Simulation::new(t, cfgs, SimConfig::default());
        // Line-rate burst of 500 packets into a 64-slot ring.
        let out = sim.run(&packets(500, 10));
        assert!(out.nf_stats[0].dropped > 0);
        assert_eq!(
            out.drops.len() as u64,
            out.nf_stats[0].dropped,
            "drop records match counter"
        );
        let delivered = out
            .fates
            .iter()
            .filter(|f| matches!(f.outcome, PacketOutcome::Delivered(_)))
            .count() as u64;
        assert_eq!(delivered + out.nf_stats[0].dropped, 500);
    }

    #[test]
    fn interrupt_stalls_and_queue_builds() {
        let (t, cfgs) = chain2();
        let mut sim = Simulation::new(
            t,
            cfgs,
            SimConfig {
                queue_sample_every: Some(10 * MICROS),
                ..Default::default()
            },
        );
        sim.add_fault(Fault::Interrupt {
            nf: NfId(0),
            at: 100 * MICROS,
            duration: 500 * MICROS,
        });
        // 1 Mpps for 1 ms = 1000 packets; NAT stalls 0.1–0.6 ms.
        let out = sim.run(&packets(1000, 1_000));
        // During the stall ~500 packets accumulate.
        assert!(
            out.nf_stats[0].max_queue > 400,
            "{}",
            out.nf_stats[0].max_queue
        );
        // Journal has the ground truth.
        assert_eq!(out.journal.events.len(), 1);
        // Latency of packets arriving mid-stall spikes.
        let max_lat = out.latencies().into_iter().max().unwrap();
        assert!(max_lat > 400 * MICROS, "{max_lat}");
    }

    #[test]
    fn bug_rule_slows_matching_flows_and_journals_trigger() {
        let (t, cfgs) = chain2();
        let mut sim = Simulation::new(t, cfgs, SimConfig::default());
        let agg = FlowAggregate::exact(&flow(7777));
        sim.add_fault(Fault::BugRule {
            nf: NfId(0),
            matches: agg,
            per_packet_ns: 20_000,
        });
        let mut pkts = Vec::new();
        // 50 normal packets then 5 bug packets then 50 normal.
        let mut id = 0;
        let mut t_ns = 0;
        for _ in 0..50 {
            pkts.push(Packet::new(id, flow(1000), 64, t_ns));
            id += 1;
            t_ns += 2_000;
        }
        for _ in 0..5 {
            pkts.push(Packet::new(id, flow(7777), 64, t_ns));
            id += 1;
            t_ns += 2_000;
        }
        for _ in 0..50 {
            pkts.push(Packet::new(id, flow(1000), 64, t_ns));
            id += 1;
            t_ns += 2_000;
        }
        let out = sim.run(&pkts);
        let trigger = out
            .journal
            .events
            .iter()
            .find(|e| matches!(e, InjectedEvent::BugTrigger { .. }))
            .expect("bug trigger journaled");
        assert_eq!(trigger.culprit_node(), nf_types::NodeId::Nf(NfId(0)));
        // Bug packets took ≥ 20 µs at the NAT.
        let bug_fate = &out.fates[52];
        assert_eq!(bug_fate.packet.flow.src_port, 7777);
        assert!(bug_fate.latency().unwrap() > 20_000);
    }

    #[test]
    fn collector_bundle_contains_rx_tx_and_exit_flows() {
        let (t, cfgs) = chain2();
        let sim = Simulation::new(t, cfgs, SimConfig::default());
        let out = sim.run(&packets(20, 10_000));
        let nat = out.bundle.log(NfId(0));
        let vpn = out.bundle.log(NfId(1));
        assert_eq!(nat.rx.iter().map(|b| b.len()).sum::<usize>(), 20);
        assert_eq!(vpn.rx.iter().map(|b| b.len()).sum::<usize>(), 20);
        // Exit NF records flow info on exit tx.
        assert_eq!(vpn.flows.len(), 20);
        assert!(nat.flows.is_empty());
        // Source offered everything.
        assert_eq!(out.bundle.source_flows.len(), 20);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let (t, cfgs) = chain2();
            let sim = Simulation::new(t, cfgs, SimConfig::default());
            sim.run(&packets(200, 300)).bundle
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_leaves_packets_in_flight() {
        let (t, cfgs) = chain2();
        let sim = Simulation::new(
            t,
            cfgs,
            SimConfig {
                run_until: Some(50_000),
                ..Default::default()
            },
        );
        // Packets arrive every 100 µs; only the first is processed by 50 µs.
        let out = sim.run(&packets(5, 100_000));
        let delivered = out
            .fates
            .iter()
            .filter(|f| matches!(f.outcome, PacketOutcome::Delivered(_)))
            .count();
        assert_eq!(delivered, 1);
        assert!(out
            .fates
            .iter()
            .skip(1)
            .all(|f| matches!(f.outcome, PacketOutcome::InFlight)));
    }

    #[test]
    fn link_delay_shifts_arrivals() {
        let (t, cfgs) = chain2();
        let sim = Simulation::new(
            t,
            cfgs,
            SimConfig {
                link_delay_ns: 1_000,
                ..Default::default()
            },
        );
        let out = sim.run(&packets(1, 0));
        // 500 (NAT) + 1000 (link) + 800 (VPN) + 16 (collector) = 2316.
        assert_eq!(out.fates[0].latency().unwrap(), 2316);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::nf::RoutePolicy;
    use crate::service::ServiceModel;
    use nf_types::{FiveTuple, NfKind, Proto, Topology, MICROS};

    fn fanout_topo() -> (Topology, Vec<NfConfig>) {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v1 = b.add_nf(NfKind::Vpn, "vpn1");
        let v2 = b.add_nf(NfKind::Vpn, "vpn2");
        b.add_entry(a);
        b.add_edge(a, v1);
        b.add_edge(a, v2);
        let t = b.build().unwrap();
        let cfgs = vec![
            NfConfig::new(
                ServiceModel::deterministic(400),
                RoutePolicy::HashAcross(vec![v1, v2]),
            ),
            NfConfig::new(ServiceModel::deterministic(800), RoutePolicy::Exit),
            NfConfig::new(ServiceModel::deterministic(800), RoutePolicy::Exit),
        ];
        (t, cfgs)
    }

    #[test]
    fn tx_groups_split_by_next_hop_preserve_order() {
        let (t, cfgs) = fanout_topo();
        let sim = Simulation::new(t, cfgs, SimConfig::default());
        // Flows alternate between the two VPNs by hash; a dense arrival run
        // forms multi-packet batches whose tx groups must preserve order.
        let packets: Vec<Packet> = (0..200u64)
            .map(|i| {
                let flow = FiveTuple::new(
                    0x0a000001,
                    0x14000001,
                    1000 + (i as u16 % 64),
                    80,
                    Proto::UDP,
                );
                Packet::new(i, flow, 64, i * 100)
            })
            .collect();
        let out = sim.run(&packets);
        // Per-VPN rx order equals the NAT's per-VPN tx order.
        for vpn in [1u16, 2] {
            let nat_tx: Vec<u16> = out
                .bundle
                .log(NfId(0))
                .tx
                .iter()
                .filter(|b| b.to == Some(NfId(vpn)))
                .flat_map(|b| b.ipids.iter().copied())
                .collect();
            let vpn_rx: Vec<u16> = out
                .bundle
                .log(NfId(vpn))
                .rx
                .iter()
                .flat_map(|b| b.ipids.iter().copied())
                .collect();
            assert_eq!(nat_tx, vpn_rx, "vpn{vpn} order");
            assert!(!nat_tx.is_empty());
        }
    }

    #[test]
    fn overlapping_interrupts_merge_in_schedule() {
        let (t, cfgs) = fanout_topo();
        let mut sim = Simulation::new(t, cfgs, SimConfig::default());
        sim.add_fault(Fault::Interrupt {
            nf: NfId(0),
            at: 100 * MICROS,
            duration: 200 * MICROS,
        });
        sim.add_fault(Fault::Interrupt {
            nf: NfId(0),
            at: 250 * MICROS,
            duration: 200 * MICROS,
        });
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let packets: Vec<Packet> = (0..100u64)
            .map(|i| Packet::new(i, flow, 64, 50 * MICROS + i * 1_000))
            .collect();
        let out = sim.run(&packets);
        // Packets arriving at 150 µs wait until the merged window ends at
        // 450 µs.
        let victim = out
            .fates
            .iter()
            .find(|f| f.packet.created_at >= 140 * MICROS)
            .unwrap();
        assert!(
            victim.hops[0].read_at >= 450 * MICROS,
            "{:?}",
            victim.hops[0]
        );
        // Both interrupts journaled separately (ground truth is per event).
        assert_eq!(out.journal.events.len(), 2);
    }

    #[test]
    fn journal_burst_records_ground_truth() {
        let (t, cfgs) = fanout_topo();
        let mut sim = Simulation::new(t, cfgs, SimConfig::default());
        let flow = FiveTuple::new(9, 9, 9, 9, Proto::UDP);
        sim.journal_burst(vec![flow], Interval::new(10, 20));
        let out = sim.run(&[Packet::new(0, flow, 64, 0)]);
        match &out.journal.events[0] {
            InjectedEvent::Burst { flows, window } => {
                assert_eq!(flows, &vec![flow]);
                assert_eq!(*window, Interval::new(10, 20));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fates_disabled_saves_memory_but_keeps_bundle() {
        let (t, cfgs) = fanout_topo();
        let sim = Simulation::new(
            t,
            cfgs,
            SimConfig {
                record_fates: false,
                ..Default::default()
            },
        );
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let packets: Vec<Packet> = (0..50u64)
            .map(|i| Packet::new(i, flow, 64, i * 1_000))
            .collect();
        let out = sim.run(&packets);
        assert!(out.fates.is_empty());
        assert_eq!(out.bundle.source_flows.len(), 50);
        assert_eq!(out.nf_stats[0].processed, 50);
    }

    #[test]
    fn skewed_clocks_affect_bundle_not_ground_truth() {
        let (t, cfgs) = fanout_topo();
        let sim = Simulation::new(
            t,
            cfgs,
            SimConfig {
                clock_offsets_ns: vec![1_000_000, -500_000, 0],
                ..Default::default()
            },
        );
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let out = sim.run(&[Packet::new(0, flow, 64, 1_000)]);
        // Ground truth on the true clock.
        assert_eq!(out.fates[0].hops[0].read_at, 1_000);
        // Collector records on the skewed clock + epoch.
        let rec = out.bundle.log(NfId(0)).rx[0].ts;
        assert_eq!(rec, 1_000 + 1_000_000 + 10_000_000_000);
        // Source records carry the epoch only.
        assert_eq!(out.bundle.source_flows[0].ts, 1_000 + 10_000_000_000);
    }
}
