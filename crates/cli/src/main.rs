//! `microscope` — the command-line front end.
//!
//! ```text
//! microscope record   --out DIR [--millis N] [--rate MPPS] [--seed S]
//!                     [--interrupt NF:MS:US]... [--skew]
//!     Simulate the paper's 16-NF deployment, write DIR/topology.txt and
//!     DIR/run.msc (the collector bundle an operator would have).
//!
//! microscope inspect  --bundle FILE
//!     Print bundle statistics (packets, batches, bytes/packet, per NF).
//!
//! microscope diagnose --topology FILE --bundle FILE [--quantile Q]
//!                     [--threshold PKTS] [--top N] [--skew] [--threads N]
//!     Reconstruct traces, select tail victims, run the queue-based
//!     diagnosis and print ranked culprits + aggregated causal patterns.
//!     --threads N fans reconstruction and diagnosis out over N workers
//!     (0 = one per CPU); the output is bit-identical at any thread count.
//!
//! microscope stream   --topology FILE --bundle FILE [--chunk-ms N]
//!                     [--quantile Q] [--top N] [--skew] [--threads N]
//!     Consume the bundle as a stream of time chunks (chunked .mscs files
//!     directly, whole .msc bundles chunked in memory), reconstructing
//!     with O(window) state, and print the same report as diagnose —
//!     byte-identical without --skew.
//!
//! microscope skew     --topology FILE --bundle FILE
//!     Estimate per-NF clock offsets from the records alone (§7).
//! ```

#![forbid(unsafe_code)]

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "record" => commands::record(rest),
        "inspect" => commands::inspect(rest),
        "diagnose" => commands::diagnose(rest),
        "stream" => commands::stream(rest),
        "skew" => commands::skew(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
