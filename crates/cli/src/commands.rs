//! Subcommand implementations for the `microscope` CLI.

use microscope::{DiagnosisConfig, LatencyThreshold, Microscope};
use msc_collector::{
    chunk_bundle, load_bundle, peek_format, save_bundle, save_bundle_chunked, BundleChunkReader,
    BundleFormat, TraceBundle,
};
use msc_stream::{StreamConfig, StreamEngine};
use msc_trace::{
    correct_bundle, estimate_offsets_refined, reconstruct, Reconstruction, ReconstructionConfig,
    SkewConfig, Timelines,
};
use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{emit_topology, paper_topology, parse_topology, NodeId, Topology, MICROS, MILLIS};
use std::path::{Path, PathBuf};

/// Top-level usage text.
pub const USAGE: &str = "\
microscope — queue-based performance diagnosis for network functions

commands:
  record   --out DIR [--millis N] [--rate MPPS] [--seed S]
           [--interrupt NF:AT_MS:LEN_US]... [--skew] [--chunk-ms N]
  inspect  --bundle FILE
  diagnose --topology FILE --bundle FILE [--quantile Q] [--threshold PKTS]
           [--top N] [--skew] [--threads N] [--no-cache]
  stream   --topology FILE --bundle FILE [--chunk-ms N] [--quantile Q]
           [--top N] [--skew] [--threads N] [--no-cache]
  skew     --topology FILE --bundle FILE

--threads N: pipeline workers (0 = one per CPU, 1 = sequential; clamped to
the available CPUs — asking for more only adds scheduling overhead). The
output is bit-identical for any worker count.

stream consumes the bundle incrementally (chunked .mscs files directly;
whole-run .msc bundles are chunked in memory at --chunk-ms, default 50)
and prints the same report as diagnose — byte-identical without --skew.

run `microscope <command>` with missing flags to see its specific errors.";

/// A tiny flag parser: `--key value` pairs plus repeatable keys.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {a:?}"))?;
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_string(), it.next().expect("peeked").clone()));
                }
                _ => switches.push(key.to_string()),
            }
        }
        Ok(Flags { pairs, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn load_deployment(path: &str) -> Result<(Topology, Vec<f64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_topology(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_bundle_arg(path: &str) -> Result<TraceBundle, String> {
    load_bundle(Path::new(path)).map_err(|e| format!("load {path}: {e}"))
}

/// `microscope record` — simulate a run and write the operator-visible
/// artifacts (deployment description + collector bundle).
pub fn record(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let out_dir = PathBuf::from(f.require("out")?);
    let millis: u64 = f.num("millis", 200)?;
    let rate: f64 = f.num("rate", 1.2)?;
    let seed: u64 = f.num("seed", 42)?;

    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();

    let mut sim_cfg = SimConfig {
        seed,
        record_fates: false,
        ..Default::default()
    };
    if f.has("skew") {
        // Spread the NFs over "servers" with ±2 ms clock offsets.
        sim_cfg.clock_offsets_ns = (0..topology.len() as i64)
            .map(|i| (i % 5 - 2) * 1_000_000)
            .collect();
    }
    let mut sim = Simulation::new(topology.clone(), cfgs, sim_cfg);
    for spec in f.get_all("interrupt") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--interrupt wants NF:AT_MS:LEN_US, got {spec:?}"));
        }
        let nf = topology
            .by_name(parts[0])
            .ok_or_else(|| format!("no NF named {:?}", parts[0]))?;
        let at: u64 = parts[1]
            .parse()
            .map_err(|_| format!("bad ms in {spec:?}"))?;
        let len: u64 = parts[2]
            .parse()
            .map_err(|_| format!("bad µs in {spec:?}"))?;
        sim.add_fault(Fault::Interrupt {
            nf,
            at: at * MILLIS,
            duration: len * MICROS,
        });
    }

    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: rate * 1e6,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let n = packets.len();
    let out = sim.run(&packets);

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("mkdir {out_dir:?}: {e}"))?;
    let topo_path = out_dir.join("topology.txt");
    std::fs::write(&topo_path, emit_topology(&topology, &rates))
        .map_err(|e| format!("write {topo_path:?}: {e}"))?;
    let bundle_path = out_dir.join("run.msc");
    save_bundle(&bundle_path, &out.bundle).map_err(|e| format!("{e}"))?;
    if let Some(ms) = f.get("chunk-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --chunk-ms {ms:?}"))?;
        let chunks = chunk_bundle(&out.bundle, ms.max(1) * MILLIS);
        let chunked_path = out_dir.join("run.mscs");
        save_bundle_chunked(&chunked_path, &chunks).map_err(|e| format!("{e}"))?;
        println!(
            "wrote {} ({} chunks of {ms} ms)",
            chunked_path.display(),
            chunks.len()
        );
    }

    println!(
        "recorded {n} packets over {millis} ms at {rate} Mpps (seed {seed})\n\
         wrote {} and {} ({} bytes, {:.2} B/packet-appearance)",
        topo_path.display(),
        bundle_path.display(),
        std::fs::metadata(&bundle_path).map_or(0, |m| m.len()),
        out.bundle.bytes_per_packet(),
    );
    Ok(())
}

/// `microscope inspect` — bundle statistics.
pub fn inspect(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let bundle = load_bundle_arg(f.require("bundle")?)?;
    println!("source packets : {}", bundle.source_flows.len());
    println!("nf logs        : {}", bundle.logs.len());
    println!("appearances    : {}", bundle.packet_appearances());
    println!("encoded size   : {} bytes", bundle.encoded_size());
    println!("bytes/packet   : {:.2}", bundle.bytes_per_packet());
    println!();
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "nf", "rx_batches", "tx_batches", "rx_packets", "mean_batch", "flows"
    );
    for log in &bundle.logs {
        let rx_pkts: usize = log.rx.iter().map(|b| b.len()).sum();
        let mean = if log.rx.is_empty() {
            0.0
        } else {
            rx_pkts as f64 / log.rx.len() as f64
        };
        println!(
            "{:>5} {:>10} {:>10} {:>12} {:>12.2} {:>10}",
            log.nf.0,
            log.rx.len(),
            log.tx.len(),
            rx_pkts,
            mean,
            log.flows.len()
        );
    }
    Ok(())
}

/// `microscope diagnose` — the full offline pipeline on saved artifacts.
pub fn diagnose(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let (topology, rates) = load_deployment(f.require("topology")?)?;
    let mut bundle = load_bundle_arg(f.require("bundle")?)?;
    let quantile: f64 = f.num("quantile", 0.99)?;
    let top: usize = f.num("top", 10)?;
    // Worker threads for reconstruction and diagnosis: 0 = one per CPU,
    // 1 = sequential; requests above the host's available CPUs are clamped
    // (oversubscribing only slows the pipeline down). Output is identical
    // either way (deterministic merge).
    let threads: usize = f.num("threads", 1)?;

    let mut recon_cfg = ReconstructionConfig {
        threads,
        ..Default::default()
    };
    if f.has("skew") {
        let offsets = estimate_offsets_refined(&topology, &bundle, &SkewConfig::default());
        println!("estimated clock offsets (ns): {offsets:?}\n");
        bundle = correct_bundle(&bundle, &offsets);
        recon_cfg.matching.negative_slack_ns = 20 * MICROS;
    }

    let recon = reconstruct(&topology, &bundle, &recon_cfg);
    let timelines = Timelines::build(&recon);

    if let Some(thr) = f.get("threshold") {
        let _pkts: u64 = thr
            .parse()
            .map_err(|_| format!("bad --threshold {thr:?}"))?;
        // Non-zero queuing threshold (§7) is exposed through the timelines;
        // the diagnosis core currently anchors at zero-threshold periods.
        eprintln!("note: --threshold is accepted for timeline queries; diagnosis uses 0");
    }
    let opts = ReportOpts {
        quantile,
        top,
        threads,
        cache: !f.has("no-cache"),
    };
    report_diagnosis(&topology, rates, &recon, &timelines, &opts)
}

/// Shared knobs for the diagnosis report printed by `diagnose` and
/// `stream`.
struct ReportOpts {
    quantile: f64,
    top: usize,
    threads: usize,
    cache: bool,
}

/// The diagnosis half of the pipeline plus all the stdout both `diagnose`
/// and `stream` print — one function so the two commands stay
/// byte-identical on identical reconstructions (the streaming-equivalence
/// CI job diffs them).
fn report_diagnosis(
    topology: &Topology,
    rates: Vec<f64>,
    recon: &Reconstruction,
    timelines: &Timelines,
    opts: &ReportOpts,
) -> Result<(), String> {
    let ReportOpts {
        quantile,
        top,
        threads,
        cache,
    } = *opts;
    println!(
        "reconstructed {} traces: {} delivered, {} dropped, {} unresolved, {} IPID ambiguities",
        recon.report.total,
        recon.report.delivered,
        recon.report.inferred_drops,
        recon.report.unresolved,
        recon.report.ambiguities
    );

    let mut dc = DiagnosisConfig {
        threads,
        // Period-keyed memoization (on by default; `--no-cache` benchmarks
        // the unshared path — the reported diagnoses are identical).
        cache,
        ..Default::default()
    };
    dc.victims.latency = LatencyThreshold::Quantile(quantile);
    dc.victims.max_victims = Some(5_000);
    let engine = Microscope::new(topology.clone(), rates, dc);
    let (diagnoses, cache_stats) = engine.diagnose_all_stats(recon, timelines);
    // Cache statistics go to stderr: stdout is diffed by the determinism
    // CI job, and hit/miss interleaving is timing-dependent under threads.
    if cache_stats.hits + cache_stats.misses > 0 {
        eprintln!(
            "step cache: {} hits / {} misses ({:.1}% hit rate, {} periods)",
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.hit_rate() * 100.0,
            cache_stats.entries
        );
    }
    println!("diagnosed {} victim (packet, NF) pairs\n", diagnoses.len());

    // Ranked culprit locations.
    let mut blame: std::collections::HashMap<String, (f64, usize)> = Default::default();
    for d in &diagnoses {
        if let Some(c) = d.culprits.first() {
            let name = match c.node {
                NodeId::Source => "traffic-source".to_string(),
                NodeId::Nf(id) => topology.nf(id).name.clone(),
            };
            let e = blame.entry(name).or_default();
            e.0 += c.score;
            e.1 += 1;
        }
    }
    let mut ranked: Vec<(String, (f64, usize))> = blame.into_iter().collect();
    // Tie-break on the name: the counts come out of a HashMap, so equal
    // counts would otherwise print in per-process-random order.
    ranked.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(&b.0)));
    println!("top culprit locations (victims where ranked #1):");
    for (name, (score, victims)) in ranked.iter().take(top) {
        println!("  {name:>16}: {victims:>6} victims, blame mass {score:.1}");
    }

    // Aggregated causal patterns (§4.4). Aggregation costs ~1 ms/relation
    // (the paper reports ~3 minutes for its 84K); for interactive use we
    // subsample large relation sets — scores stay proportional under a
    // uniform stride.
    let mut relations = microscope::diagnoses_to_relations(recon, &diagnoses);
    const MAX_RELATIONS: usize = 2_000;
    if relations.len() > MAX_RELATIONS {
        let stride = relations.len() / MAX_RELATIONS + 1;
        eprintln!(
            "note: sampling {} of {} causal relations for aggregation (1/{stride})",
            relations.len() / stride,
            relations.len()
        );
        relations = relations.into_iter().step_by(stride).collect();
    }
    let patterns =
        autofocus::aggregate_patterns(&relations, &autofocus::PatternConfig::default(), &|id| {
            topology.nf(id).kind
        });
    println!(
        "\n{} causal relations -> {} patterns; top {}:",
        relations.len(),
        patterns.len(),
        top.min(patterns.len())
    );
    for p in patterns.iter().take(top) {
        println!("  {p}");
    }
    Ok(())
}

/// `microscope stream` — the streaming pipeline: consume the bundle as a
/// sequence of time chunks with O(window) reconstruction state, then print
/// the same report as `diagnose` (byte-identical without `--skew`).
pub fn stream(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let (topology, rates) = load_deployment(f.require("topology")?)?;
    let path = f.require("bundle")?;
    let chunk_ms: u64 = f.num("chunk-ms", 50)?;
    let opts = ReportOpts {
        quantile: f.num("quantile", 0.99)?,
        top: f.num("top", 10)?,
        threads: f.num("threads", 1)?,
        cache: !f.has("no-cache"),
    };

    let mut cfg = StreamConfig::default();
    if f.has("skew") {
        // Per-window estimation is approximate; give the matcher the same
        // slack the offline skew path uses. This mode is *not*
        // byte-identical to offline `diagnose --skew` (which estimates
        // offsets once over the whole run).
        cfg.matching.negative_slack_ns = 20 * MICROS;
        cfg.skew = Some(SkewConfig::default());
    }
    let mut engine = StreamEngine::new(&topology, cfg);

    match peek_format(Path::new(path)).map_err(|e| format!("{path}: {e}"))? {
        BundleFormat::Chunked => {
            let mut rdr = BundleChunkReader::open(Path::new(path))
                .map_err(|e| format!("open {path}: {e}"))?;
            while let Some(chunk) = rdr.next_chunk().map_err(|e| format!("read {path}: {e}"))? {
                engine.push_chunk(&chunk).map_err(|e| format!("{e}"))?;
            }
        }
        BundleFormat::Whole => {
            eprintln!("note: whole-run bundle; chunking in memory at {chunk_ms} ms");
            let bundle = load_bundle_arg(path)?;
            for chunk in chunk_bundle(&bundle, chunk_ms * MILLIS) {
                engine.push_chunk(&chunk).map_err(|e| format!("{e}"))?;
            }
        }
    }

    // Streaming-only stats go to stderr: stdout must match `diagnose`.
    eprintln!(
        "streamed {} chunks: {} traces committed pre-finish, peak working set {} KiB, \
         {} queuing periods closed (longest {} us)",
        engine.chunks(),
        engine.committed(),
        engine.working_set_peak() / 1024,
        engine.periods().closed_periods(),
        engine.periods().longest_ns() / 1_000,
    );
    for note in engine.skew_notes() {
        eprintln!("note: {note}");
    }
    let (recon, timelines) = engine.finish();
    report_diagnosis(&topology, rates, &recon, &timelines, &opts)
}

/// `microscope skew` — clock-offset estimation only.
pub fn skew(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let (topology, _) = load_deployment(f.require("topology")?)?;
    let bundle = load_bundle_arg(f.require("bundle")?)?;
    let offsets = estimate_offsets_refined(&topology, &bundle, &SkewConfig::default());
    println!("{:>8} {:>16}", "nf", "offset_ns");
    for (nf, off) in topology.nfs().iter().zip(&offsets) {
        println!("{:>8} {:>16}", nf.name, off);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parser() {
        let f = Flags::parse(&s(&[
            "--out",
            "dir",
            "--skew",
            "--interrupt",
            "a:1:2",
            "--interrupt",
            "b:3:4",
        ]))
        .unwrap();
        assert_eq!(f.get("out"), Some("dir"));
        assert!(f.has("skew"));
        assert_eq!(f.get_all("interrupt"), vec!["a:1:2", "b:3:4"]);
        assert!(f.require("missing").is_err());
        assert_eq!(f.num::<u64>("nope", 7).unwrap(), 7);
        assert!(Flags::parse(&s(&["positional"])).is_err());
    }

    #[test]
    fn record_inspect_diagnose_round_trip() {
        let dir = std::env::temp_dir().join("msc_cli_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        record(&s(&[
            "--out",
            &out,
            "--millis",
            "40",
            "--seed",
            "3",
            "--interrupt",
            "nat1:15:800",
        ]))
        .unwrap();
        assert!(dir.join("topology.txt").exists());
        assert!(dir.join("run.msc").exists());
        let bundle = dir.join("run.msc").to_string_lossy().to_string();
        let topo = dir.join("topology.txt").to_string_lossy().to_string();
        inspect(&s(&["--bundle", &bundle])).unwrap();
        diagnose(&s(&[
            "--topology",
            &topo,
            "--bundle",
            &bundle,
            "--top",
            "3",
        ]))
        .unwrap();
        // The parallel pipeline accepts any worker count and is bit-identical
        // to sequential, so --threads must not change the exit status.
        diagnose(&s(&[
            "--topology",
            &topo,
            "--bundle",
            &bundle,
            "--top",
            "3",
            "--threads",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn stream_round_trip_both_formats() {
        let dir = std::env::temp_dir().join("msc_cli_streamtest");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        record(&s(&[
            "--out",
            &out,
            "--millis",
            "40",
            "--seed",
            "3",
            "--interrupt",
            "nat1:15:800",
            "--chunk-ms",
            "10",
        ]))
        .unwrap();
        assert!(dir.join("run.mscs").exists());
        let topo = dir.join("topology.txt").to_string_lossy().to_string();
        let whole = dir.join("run.msc").to_string_lossy().to_string();
        let chunked = dir.join("run.mscs").to_string_lossy().to_string();
        // Chunked file is consumed incrementally; whole bundles are chunked
        // in memory. Both must run the full report.
        stream(&s(&[
            "--topology",
            &topo,
            "--bundle",
            &chunked,
            "--top",
            "3",
        ]))
        .unwrap();
        stream(&s(&[
            "--topology",
            &topo,
            "--bundle",
            &whole,
            "--chunk-ms",
            "10",
            "--top",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn record_rejects_bad_interrupt_spec() {
        let dir = std::env::temp_dir().join("msc_cli_badspec");
        let out = dir.to_string_lossy().to_string();
        assert!(record(&s(&["--out", &out, "--interrupt", "nat1:xx"])).is_err());
        assert!(record(&s(&["--out", &out, "--interrupt", "ghost:1:2"])).is_err());
    }

    #[test]
    fn diagnose_requires_files() {
        assert!(diagnose(&s(&["--topology", "/nonexistent", "--bundle", "/nope"])).is_err());
    }

    #[test]
    fn skew_round_trip() {
        let dir = std::env::temp_dir().join("msc_cli_skewtest");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        record(&s(&[
            "--out", &out, "--millis", "30", "--seed", "4", "--skew",
        ]))
        .unwrap();
        let bundle = dir.join("run.msc").to_string_lossy().to_string();
        let topo = dir.join("topology.txt").to_string_lossy().to_string();
        skew(&s(&["--topology", &topo, "--bundle", &bundle])).unwrap();
    }
}
