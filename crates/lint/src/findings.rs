//! Finding types and the two output formats (human text, machine JSON).

use std::fmt;

/// The seven project invariants `msc-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1 — HashMap/HashSet iteration order must not reach output.
    OrderSensitivity,
    /// R2 — timestamp arithmetic must be saturating/wrapping/checked.
    TimeArithmetic,
    /// R3 — lossy `as` casts on wire-format quantities.
    LossyCast,
    /// R4 — panic surface (`unwrap`/`expect`) in library code, baselined.
    PanicSurface,
    /// R5 — `unsafe` requires a `// SAFETY:` comment on the preceding line.
    UnsafeAudit,
    /// R6 — `Ordering::Relaxed` requires a `// ordering:` justification.
    OrderingJustification,
    /// R7 — atomics and `unsafe` only in manifest-registered modules.
    ConcurrencyManifest,
}

impl RuleId {
    /// Short id used in output and tests ("R1".."R7").
    pub fn id(self) -> &'static str {
        match self {
            RuleId::OrderSensitivity => "R1",
            RuleId::TimeArithmetic => "R2",
            RuleId::LossyCast => "R3",
            RuleId::PanicSurface => "R4",
            RuleId::UnsafeAudit => "R5",
            RuleId::OrderingJustification => "R6",
            RuleId::ConcurrencyManifest => "R7",
        }
    }

    /// Human slug used in output ("order-sensitivity", ...).
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::OrderSensitivity => "order-sensitivity",
            RuleId::TimeArithmetic => "time-arithmetic",
            RuleId::LossyCast => "lossy-cast",
            RuleId::PanicSurface => "panic-surface",
            RuleId::UnsafeAudit => "unsafe-audit",
            RuleId::OrderingJustification => "ordering-justification",
            RuleId::ConcurrencyManifest => "concurrency-manifest",
        }
    }

    /// The `// lint: <slug>(reason)` annotation that suppresses this rule at
    /// a site, if the rule supports annotations.
    pub fn annotation(self) -> Option<&'static str> {
        match self {
            RuleId::OrderSensitivity => Some("order-insensitive"),
            RuleId::TimeArithmetic => Some("time-arith-ok"),
            RuleId::LossyCast => Some("lossy-cast-ok"),
            // R4 is governed by the baseline file, R5 by `// SAFETY:`,
            // R6 by `// ordering:`, R7 by the concurrency manifest.
            RuleId::PanicSurface
            | RuleId::UnsafeAudit
            | RuleId::OrderingJustification
            | RuleId::ConcurrencyManifest => None,
        }
    }
}

/// One violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}:{}: {}",
            self.rule.id(),
            self.rule.slug(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, sorted input).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"slug\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule.id(),
            f.rule.slug(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_orders_fields() {
        let f = vec![Finding {
            rule: RuleId::OrderSensitivity,
            file: "a\\b\"c.rs".into(),
            line: 7,
            message: "tab\there".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains(r#""rule":"R1""#));
        assert!(j.contains(r#""file":"a\\b\"c.rs""#));
        assert!(j.contains(r#"tab\there"#));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
