//! The five rule visitors, operating on the lexed token stream of one file.
//!
//! Every rule is a deliberately *syntactic* over-approximation: this linter
//! has no type information, so it reasons about binding names, declared
//! types, and suffix conventions. False positives are expected and cheap —
//! each rule has an explicit, greppable escape hatch (`// lint: <slug>(...)`
//! annotations for R1–R3, `// SAFETY:` for R5, the checked-in baseline for
//! R4) that doubles as reviewer-facing documentation of *why* a site is
//! exempt. False negatives are bounded by convention: the rules cover the
//! idioms this workspace actually uses (and the ones that already produced
//! shipped bugs — see DESIGN.md "Determinism invariants").

use crate::findings::{Finding, RuleId};
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// Which target a file belongs to; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules, including the R4 panic-surface ratchet.
    Lib,
    /// Binary code (`src/main.rs` of bin crates, `src/bin/*`): R1–R3 and R5
    /// apply, R4 does not (a CLI may panic on impossible states).
    Bin,
}

/// One file ready for linting.
pub struct FileCtx {
    /// Workspace-relative path (as reported in findings).
    pub path: String,
    /// The crate the file belongs to (directory name under `crates/`).
    pub crate_name: String,
    pub kind: FileKind,
    pub lexed: Lexed,
    /// Token-index ranges (inclusive) belonging to `#[cfg(test)]` / `#[test]`
    /// / `#[bench]` items: excluded from every rule.
    excluded: Vec<(usize, usize)>,
}

/// Crates whose output feeds reports, figures, or serialized artifacts —
/// the R1 order-sensitivity scope.
pub const OUTPUT_CRATES: &[&str] = &[
    "autofocus",
    "core",
    "trace",
    "netmedic",
    "experiments",
    "cli",
];

/// Map/set types whose iteration order is nondeterministic per process.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that begin an iteration over a map/set binding.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that pin an ordering when they appear in the same (or the
/// immediately following) statement as an unordered iteration.
fn is_order_fixing(ident: &str) -> bool {
    ident.starts_with("sort") || ident == "BTreeMap" || ident == "BTreeSet"
}

/// Signed / float cast targets that make a bare timestamp difference safe
/// (`a as i64 - b as i64` is the sanctioned signed-delta idiom — it cannot
/// underflow-wrap the way unsigned `Nanos` subtraction can).
const SIGNED_CASTS: &[&str] = &[
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
    "TimeDelta",
];

/// Lossy cast targets checked by R3.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32"];

impl FileCtx {
    pub fn new(path: String, crate_name: String, kind: FileKind, lexed: Lexed) -> Self {
        let excluded = excluded_ranges(&lexed.tokens);
        Self {
            path,
            crate_name,
            kind,
            lexed,
            excluded,
        }
    }

    fn is_excluded(&self, idx: usize) -> bool {
        self.excluded.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// True when the site at `line` carries a `// lint: <slug>(reason)`
    /// annotation on the same or the preceding line.
    fn annotated(&self, line: u32, slug: &str) -> bool {
        has_annotation(self.lexed.comment_on(line), slug)
            || (line > 1 && has_annotation(self.lexed.comment_on(line - 1), slug))
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.tokens
    }
}

/// Checks `comment` for `lint:` followed (anywhere later) by `slug(reason)`
/// with a non-empty reason.
fn has_annotation(comment: &str, slug: &str) -> bool {
    let Some(at) = comment.find("lint:") else {
        return false;
    };
    let rest = &comment[at..];
    let Some(s) = rest.find(&format!("{slug}(")) else {
        return false;
    };
    let after = &rest[s + slug.len() + 1..];
    match after.find(')') {
        Some(close) => !after[..close].trim().is_empty(),
        None => false,
    }
}

/// Computes token ranges covered by test-only items: any item annotated
/// `#[cfg(test)]`, `#[test]`, or `#[bench]` (including `mod tests { ... }`
/// blocks, which removes their entire contents).
fn excluded_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let attr_start = i;
            let Some(attr_end) = matching(toks, i + 1, "[", "]") else {
                break;
            };
            let testish = toks[attr_start..=attr_end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && (t.text == "test" || t.text == "bench"));
            if testish {
                // Skip any further attributes on the same item.
                let mut k = attr_end + 1;
                while toks.get(k).map(|t| t.text.as_str()) == Some("#")
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    match matching(toks, k + 1, "[", "]") {
                        Some(e) => k = e + 1,
                        None => return out,
                    }
                }
                // The item body: first `;` at depth 0, or the matching `}`
                // of the first `{` at depth 0.
                let mut depth = 0i32;
                let mut m = k;
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        "{" if depth == 0 => {
                            m = matching(toks, m, "{", "}").unwrap_or(toks.len() - 1);
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                out.push((attr_start, m.min(toks.len().saturating_sub(1))));
                i = m + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the token matching the opener at `open_idx` (`toks[open_idx]`
/// must equal `open`), counting nesting of that delimiter pair only.
fn matching(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Start index of the statement containing `idx`: scans backward to the
/// nearest `;`, `{`, or `}` at the same nesting level.
fn stmt_start(toks: &[Tok], idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = idx;
    while j > 0 {
        let t = toks[j - 1].text.as_str();
        match t {
            ")" | "]" | "}" if t == "}" && depth == 0 => return j,
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    0
}

/// End index (exclusive) of the statement containing `idx`: scans forward to
/// the first `;` or block-opening `{` at the same nesting level. Returns the
/// boundary index and whether it stopped at a `;`.
fn stmt_end(toks: &[Tok], idx: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = idx;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    return (j, false);
                }
                depth -= 1;
            }
            "{" if depth == 0 => return (j, false),
            "}" if depth == 0 => return (j, false),
            ";" if depth == 0 => return (j, true),
            _ => {}
        }
        j += 1;
    }
    (toks.len(), false)
}

/// Timestamp-suffix convention: `ts`, `*_ts`, `*_ns`, `*_nanos`, plus the
/// `Nanos`-typed accessor spellings used across the workspace.
fn is_ts_ident(name: &str) -> bool {
    name == "ts"
        || name == "now"
        || name.ends_with("_ts")
        || name.ends_with("_ns")
        || name.ends_with("_nanos")
}

/// R1 — order-sensitivity: iterating a `HashMap`/`HashSet` binding in
/// non-test code of an output-producing crate must either flow into a sort
/// in the same (or immediately following) statement or carry an
/// `// lint: order-insensitive(reason)` annotation.
pub fn r1_order_sensitivity(ctx: &FileCtx) -> Vec<Finding> {
    if !OUTPUT_CRATES.contains(&ctx.crate_name.as_str()) {
        return Vec::new();
    }
    let toks = ctx.toks();
    let bindings = unordered_bindings(toks);
    if bindings.is_empty() {
        return Vec::new();
    }

    // For-loop expression ranges: (`in`-idx+1 .. body `{`-idx).
    let mut for_ranges: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "for" {
            // Find the `in` of this loop at pattern depth 0.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() && j < i + 64 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" => break,
                    "in" if depth == 0 => {
                        in_idx = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(ii) = in_idx {
                let (end, _) = stmt_end(toks, ii + 1);
                for_ranges.push((ii + 1, end));
            }
        }
    }

    let mut found: BTreeSet<(u32, String)> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bindings.contains(t.text.as_str()) || ctx.is_excluded(i) {
            continue;
        }
        let name = t.text.as_str();
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let next2 = toks.get(i + 2).map(|t| t.text.as_str());
        let in_for = for_ranges.iter().any(|&(a, b)| i >= a && i < b);

        let method_iter = next == Some(".")
            && next2.is_some_and(|m| ITER_METHODS.contains(&m))
            && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(");
        // In a for-loop head, a bare (or borrowed) map binding iterates
        // implicitly; `map.len()`-style uses do not.
        let bare_in_for = in_for && next != Some(".");
        if !(method_iter || bare_in_for) {
            continue;
        }

        // Suppression 1: a sort (or ordered-collection collect) in the same
        // statement, or — for `let` statements — in the one that follows
        // (the workspace's `let v: Vec<_> = map.into_iter().collect();
        // v.sort_by(...)` idiom).
        let start = stmt_start(toks, i);
        let (end, ended_at_semi) = stmt_end(toks, i);
        let mut fixing = toks[start..end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && is_order_fixing(&t.text));
        if !fixing && ended_at_semi && toks.get(start).map(|t| t.text.as_str()) == Some("let") {
            let (next_end, _) = stmt_end(toks, end + 1);
            fixing = toks[end + 1..next_end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && is_order_fixing(&t.text));
        }
        if fixing {
            continue;
        }
        // Suppression 2: explicit annotation.
        if ctx.annotated(t.line, "order-insensitive") {
            continue;
        }
        found.insert((t.line, name.to_string()));
    }

    found
        .into_iter()
        .map(|(line, name)| Finding {
            rule: RuleId::OrderSensitivity,
            file: ctx.path.clone(),
            line,
            message: format!(
                "iteration over unordered `{name}` can leak HashMap order into output; \
                 sort in the same statement or annotate \
                 `// lint: order-insensitive(reason)`"
            ),
        })
        .collect()
}

/// Collects binding names declared with an unordered map/set type in this
/// file: `let` statements whose initializer/type mentions `HashMap`/
/// `HashSet`, plus `name: HashMap<..>` params and fields where the map is
/// the outermost type.
fn unordered_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !UNORDERED_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Pattern a/c: `let [mut] NAME ... HashMap ...` within one statement.
        let start = stmt_start(toks, i);
        if toks.get(start).map(|t| t.text.as_str()) == Some("let") {
            let mut k = start + 1;
            if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
                k += 1;
            }
            if let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                out.insert(name.text.clone());
                continue;
            }
        }
        // Pattern b: `NAME : [&] [mut] [std::collections::] HashMap <` —
        // outermost type only (a `Vec<HashMap<..>>` element is reached by
        // indexed/ordered access, not by iterating the map itself).
        let mut j = i;
        let mut ok = true;
        while j > 0 {
            let p = &toks[j - 1];
            match (p.kind, p.text.as_str()) {
                (TokKind::Ident, "std" | "collections" | "mut") => j -= 1,
                (TokKind::Punct, "::" | "&") => j -= 1,
                (TokKind::Lifetime, _) => j -= 1,
                (TokKind::Punct, ":") => break,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && j >= 2 && toks[j - 1].text == ":" {
            if let Some(name) = toks.get(j - 2).filter(|t| t.kind == TokKind::Ident) {
                out.insert(name.text.clone());
            }
        }
    }
    out
}

/// Operand ident collection for R2/R3: walks outward from an operator,
/// gathering identifiers until an expression boundary at nesting level 0.
///
/// Identifiers *inside* balanced `(...)`/`[...]` groups are skipped: in
/// `bins.entry(d.div_euclid(bin_ns)).or_default() += 1` the quantity being
/// added to is the counter, not the `bin_ns` key buried in the call
/// arguments, and in `rx[rx_idx].ts` the index is not the operand either.
/// Only the top-level receiver chain participates in the suffix check.
fn operand_idents(toks: &[Tok], idx: usize, forward: bool) -> Vec<(usize, String)> {
    let boundary = |t: &str| {
        matches!(
            t,
            ";" | ","
                | "="
                | "=="
                | "!="
                | "<="
                | ">="
                | "<"
                | ">"
                | "&&"
                | "||"
                | "+"
                | "-"
                | "*"
                | "/"
                | "%"
                | "+="
                | "-="
                | "return"
                | "=>"
                | ".."
                | "..="
                | "{"
                | "}"
        )
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    if forward {
        let mut j = idx + 1;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                s if depth == 0 && boundary(s) => break,
                _ => {}
            }
            if t.kind == TokKind::Ident && depth == 0 {
                out.push((j, t.text.clone()));
            }
            j += 1;
        }
    } else {
        let mut j = idx;
        while j > 0 {
            let t = &toks[j - 1];
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                s if depth == 0 && boundary(s) => break,
                _ => {}
            }
            if t.kind == TokKind::Ident && depth == 0 {
                out.push((j - 1, t.text.clone()));
            }
            j -= 1;
        }
        out.reverse();
    }
    out
}

/// True when the operand ident list contains an `as <signed>` cast — the
/// sanctioned signed-delta idiom.
fn has_signed_cast(idents: &[(usize, String)]) -> bool {
    idents
        .windows(2)
        .any(|w| w[0].1 == "as" && w[0].0 + 1 == w[1].0 && SIGNED_CASTS.contains(&w[1].1.as_str()))
}

/// R2 — saturating time arithmetic: bare `+`, `-`, `+=`, `-=` where either
/// operand is a timestamp-suffixed identifier is an error unless both sides
/// are cast to a signed type first or the site is annotated.
pub fn r2_time_arithmetic(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks();
    let mut out = Vec::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "+=" | "-=") {
            continue;
        }
        if ctx.is_excluded(i) {
            continue;
        }
        // Unary +/- (negation, `-1` literals): previous token is an operator
        // or opener, or there is no previous token.
        let unary = match toks.get(i.wrapping_sub(1)) {
            None => true,
            Some(p) => {
                (p.kind == TokKind::Punct && !matches!(p.text.as_str(), ")" | "]" | "}"))
                    || (p.kind == TokKind::Ident
                        && matches!(p.text.as_str(), "return" | "as" | "in" | "if" | "else"))
            }
        };
        if unary && matches!(t.text.as_str(), "+" | "-") {
            continue;
        }
        let left = operand_idents(toks, i, false);
        let right = operand_idents(toks, i, true);
        let ts_involved = left.iter().chain(right.iter()).any(|(j, n)| {
            is_ts_ident(n)
                // Exclude method *names*: `x.checked_sub(slack_ns)` — the
                // ident before a `(` directly after it is a call, fine; but
                // a ts ident used as a call argument still counts. Only
                // skip idents that are path segments of macros (`ns!`).
                && toks.get(j + 1).map(|t| t.text.as_str()) != Some("!")
        });
        if !ts_involved {
            continue;
        }
        if has_signed_cast(&left) && has_signed_cast(&right) {
            continue;
        }
        if seen.contains(&t.line) || ctx.annotated(t.line, "time-arith-ok") {
            continue;
        }
        seen.insert(t.line);
        out.push(Finding {
            rule: RuleId::TimeArithmetic,
            file: ctx.path.clone(),
            line: t.line,
            message: format!(
                "bare `{}` on a timestamp; use saturating_*/wrapping_*/checked_* \
                 (or cast both sides `as i64` for a signed delta, or annotate \
                 `// lint: time-arith-ok(reason)`)",
                t.text
            ),
        });
    }
    out
}

/// R3 — lossy casts on wire-format quantities: `as u8`/`as u16`/`as u32`
/// where the source expression names an IPID / batch / count / length must
/// be `try_into()` (with a typed error) or annotated.
pub fn r3_lossy_cast(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || ctx.is_excluded(i) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !NARROW_CASTS.contains(&target.text.as_str()) {
            continue;
        }
        let left = operand_idents(toks, i, false);
        let wire = left.iter().any(|(_, n)| {
            let l = n.to_ascii_lowercase();
            l.contains("ipid")
                || l.contains("batch")
                || l.contains("count")
                || l == "len"
                || l.starts_with("n_")
        });
        if !wire || ctx.annotated(t.line, "lossy-cast-ok") {
            continue;
        }
        out.push(Finding {
            rule: RuleId::LossyCast,
            file: ctx.path.clone(),
            line: t.line,
            message: format!(
                "lossy `as {}` on a wire-format quantity; use try_into() with a \
                 typed error or annotate `// lint: lossy-cast-ok(reason)`",
                target.text
            ),
        });
    }
    out
}

/// R4 — panic surface: `.unwrap()` / `.expect(` in library code. Sites are
/// reported individually; the driver compares per-file counts against the
/// checked-in baseline.
pub fn r4_panic_sites(ctx: &FileCtx) -> Vec<Finding> {
    if ctx.kind != FileKind::Lib {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_excluded(i) {
            continue;
        }
        let call = (t.text == "unwrap" || t.text == "expect")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && i > 0
            && toks[i - 1].text == ".";
        if call {
            out.push(Finding {
                rule: RuleId::PanicSurface,
                file: ctx.path.clone(),
                line: t.line,
                message: format!("`{}` in library code (baselined panic surface)", t.text),
            });
        }
    }
    out
}

/// R5 — unsafe audit: every `unsafe` keyword must have a `// SAFETY:`
/// comment on its own line or in the contiguous comment block immediately
/// above it (multi-line `//` justifications count as one block).
pub fn r5_unsafe_audit(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || ctx.is_excluded(i) {
            continue;
        }
        let here = ctx.lexed.comment_on(t.line).contains("SAFETY:");
        let mut above = false;
        let mut l = t.line;
        while l > 1 {
            let c = ctx.lexed.comment_on(l - 1);
            if c.is_empty() {
                break;
            }
            if c.contains("SAFETY:") {
                above = true;
                break;
            }
            l -= 1;
        }
        if !(here || above) {
            out.push(Finding {
                rule: RuleId::UnsafeAudit,
                file: ctx.path.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment immediately above".into(),
            });
        }
    }
    out
}

/// The crate that *implements* the memory-model semantics: it interprets
/// orderings rather than relying on them, so R6/R7 stop at its boundary.
pub const MODEL_CRATE: &str = "model";

/// Atomic / interior-mutability type names that mark a module as part of
/// the concurrency surface (R7).
const CONCURRENCY_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "UnsafeCell",
];

/// The five atomic memory orderings. `Ordering::<one of these>` is the
/// signature of atomics code — `std::cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) never collide.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// True when tokens at `i` spell `Ordering :: <variant>` for an atomic
/// ordering variant; returns the variant index.
fn atomic_ordering_at(toks: &[Tok], i: usize) -> Option<usize> {
    if toks[i].kind != TokKind::Ident || toks[i].text != "Ordering" {
        return None;
    }
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some("::") {
        return None;
    }
    let v = toks.get(i + 2)?;
    if v.kind == TokKind::Ident && ATOMIC_ORDERINGS.contains(&v.text.as_str()) {
        Some(i + 2)
    } else {
        None
    }
}

/// True when `line` (or the contiguous comment block immediately above it)
/// carries a comment containing `needle` — the R5/R6 justification scan.
fn justified(ctx: &FileCtx, line: u32, needle: &str) -> bool {
    if ctx.lexed.comment_on(line).contains(needle) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        let c = ctx.lexed.comment_on(l - 1);
        if c.is_empty() {
            return false;
        }
        if c.contains(needle) {
            return true;
        }
        l -= 1;
    }
    false
}

/// R6 — ordering justification: every `Ordering::Relaxed` must carry a
/// `// ordering:` comment on the same line or in the contiguous comment
/// block immediately above. Acquire/Release/AcqRel/SeqCst are exempt (they
/// *are* the synchronization; `Relaxed` is the claim that none is needed,
/// and that claim is what needs writing down). The model crate interprets
/// orderings rather than relying on them, so it is out of scope.
pub fn r6_ordering_justification(ctx: &FileCtx) -> Vec<Finding> {
    if ctx.crate_name == MODEL_CRATE {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(v) = atomic_ordering_at(toks, i) else {
            continue;
        };
        if toks[v].text != "Relaxed" || ctx.is_excluded(i) {
            continue;
        }
        if justified(ctx, toks[v].line, "ordering:") {
            continue;
        }
        out.push(Finding {
            rule: RuleId::OrderingJustification,
            file: ctx.path.clone(),
            line: toks[v].line,
            message: "`Ordering::Relaxed` without a `// ordering:` justification \
                      comment; state why no synchronization is needed here"
                .into(),
        });
    }
    out
}

/// R7 raw sites — lines where this file uses a concurrency primitive: the
/// `unsafe` keyword, an atomic / `UnsafeCell` type name, or an atomic
/// memory ordering. The driver folds these into per-module presence and
/// compares against the checked-in concurrency manifest; files in the
/// model crate are the enforcement boundary and out of scope.
pub fn r7_concurrency_sites(ctx: &FileCtx) -> Vec<u32> {
    if ctx.crate_name == MODEL_CRATE {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_excluded(i) {
            continue;
        }
        let site = t.text == "unsafe"
            || CONCURRENCY_TYPES.contains(&t.text.as_str())
            || atomic_ordering_at(toks, i).is_some();
        if site {
            out.push(t.line);
        }
    }
    out.dedup();
    out
}

/// Runs every per-file rule (R4 sites are returned raw and baselined in the
/// driver; R7 sites are collected separately via
/// [`r7_concurrency_sites`] and folded against the manifest there).
pub fn run_all(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(r1_order_sensitivity(ctx));
    out.extend(r2_time_arithmetic(ctx));
    out.extend(r3_lossy_cast(ctx));
    out.extend(r4_panic_sites(ctx));
    out.extend(r5_unsafe_audit(ctx));
    out.extend(r6_ordering_justification(ctx));
    out
}
