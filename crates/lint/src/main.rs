//! CLI driver: `cargo run -p msc-lint -- [--root DIR] [--baseline FILE]
//! [--manifest FILE] [--format text|json] [--write-baseline]
//! [--write-manifest]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use msc_lint::{to_json, Baseline, Manifest};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
msc-lint — workspace static analysis for determinism/saturation/panic invariants

usage: cargo run -p msc-lint -- [options]
  --root DIR         workspace root to lint (default: .)
  --baseline FILE    R4 baseline file (default: <root>/lint-baseline.toml)
  --manifest FILE    R7 concurrency manifest (default: <root>/concurrency-manifest.toml)
  --format text|json output format (default: text)
  --write-baseline   record current R4 counts as the new baseline and exit
  --write-manifest   record current concurrency modules into the manifest and exit";

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    manifest: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    write_manifest: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        manifest: None,
        format: Format::Text,
        write_baseline: false,
        write_manifest: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root wants a directory")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline wants a file")?));
            }
            "--manifest" => {
                args.manifest = Some(PathBuf::from(it.next().ok_or("--manifest wants a file")?));
            }
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format wants text|json, got {other:?}")),
                }
            }
            "--write-baseline" => args.write_baseline = true,
            "--write-manifest" => args.write_manifest = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
    let manifest_path = args
        .manifest
        .clone()
        .unwrap_or_else(|| args.root.join("concurrency-manifest.toml"));

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match msc_lint::run(&args.root, &baseline, &manifest) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let new = Baseline {
            r4: run.r4_counts.clone(),
        };
        if let Err(e) = std::fs::write(&baseline_path, new.render()) {
            eprintln!("error: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} grandfathered panic site(s) across {} file(s))",
            baseline_path.display(),
            new.total(),
            new.r4.len()
        );
        return ExitCode::SUCCESS;
    }

    if args.write_manifest {
        // Keep existing reasons; new modules get a placeholder the reviewer
        // must replace (the parse rejects empty reasons, not placeholders —
        // the diff is the gate).
        let mut new = Manifest::default();
        for module in run.concurrency_modules.keys() {
            let reason = manifest
                .modules
                .get(module)
                .cloned()
                .unwrap_or_else(|| "TODO: justify this module's concurrency protocol".into());
            new.modules.insert(module.clone(), reason);
        }
        if let Err(e) = std::fs::write(&manifest_path, new.render()) {
            eprintln!("error: write {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} registered concurrency module(s))",
            manifest_path.display(),
            new.modules.len()
        );
        return ExitCode::SUCCESS;
    }

    match args.format {
        Format::Json => println!("{}", to_json(&run.findings)),
        Format::Text => {
            for f in &run.findings {
                println!("{f}");
            }
            eprintln!(
                "msc-lint: {} file(s), {} finding(s), R4 baseline {} site(s) in {} file(s), \
                 R7 manifest {} module(s)",
                run.files,
                run.findings.len(),
                baseline.total(),
                baseline.r4.len(),
                manifest.modules.len()
            );
        }
    }
    if run.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
