//! A small, comment- and string-aware Rust lexer.
//!
//! The rules in this crate reason about *token streams*, never raw text, so
//! that `"HashMap"` inside a string literal, `unsafe` inside a doc comment,
//! and `'a` lifetimes vs `'a'` char literals can never confuse them. The
//! lexer is deliberately simpler than rustc's: it has no need for precise
//! numeric suffixes or macro fragments, only for a faithful token/comment
//! split with correct line numbers.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `unsafe`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// String, raw-string, byte-string, or raw-byte-string literal.
    StrLit,
    /// Numeric literal (integers and floats, any base, with suffixes).
    NumLit,
    /// Punctuation, including multi-character operators (`-=`, `::`, `..=`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// The output of [`lex`]: tokens plus the comment text attached to each line.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    /// Comment text per 1-based line. A block comment contributes its text to
    /// every line it spans, so "comment on the preceding line" checks work
    /// for multi-line `/* SAFETY: ... */` blocks too.
    pub comments: std::collections::BTreeMap<u32, String>,
}

impl Lexed {
    /// Comment text recorded for `line`, or `""`.
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments.get(&line).map_or("", String::as_str)
    }
}

/// Multi-character punctuation recognised as single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and per-line comments. Never fails: unterminated
/// literals are closed at end-of-file, which is good enough for linting
/// (rustc will reject such files anyway).
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push_comment = |out: &mut Lexed, line: u32, text: &str| {
        let slot = out.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    };

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            push_comment(&mut out, line, &text);
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let start = i;
            let first_line = line;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            for l in first_line..=line {
                push_comment(&mut out, l, &text);
            }
            continue;
        }

        // Raw strings / raw byte strings / raw identifiers.
        if c == 'r' || c == 'b' {
            // br"..." / rb is not a thing; handle r", r#", b", b', br", br#".
            let mut j = i;
            let mut prefix = String::new();
            while j < bytes.len() && (bytes[j] == 'r' || bytes[j] == 'b') && prefix.len() < 2 {
                prefix.push(bytes[j]);
                j += 1;
            }
            let has_r = prefix.contains('r');
            if has_r && j < bytes.len() && (bytes[j] == '#' || bytes[j] == '"') {
                // Raw identifier r#name (no quote after hashes).
                let mut hashes = 0usize;
                while bytes.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if bytes.get(j + hashes) == Some(&'"') {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    let start_line = line;
                    let mut k = j + hashes + 1;
                    while k < bytes.len() {
                        if bytes[k] == '\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if bytes[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && bytes.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break;
                            }
                        }
                        k += 1;
                    }
                    let text: String = bytes[i..k.min(bytes.len())].iter().collect();
                    out.tokens.push(Tok {
                        kind: TokKind::StrLit,
                        text,
                        line: start_line,
                    });
                    i = k.min(bytes.len());
                    continue;
                }
                if hashes == 1
                    && prefix == "r"
                    && bytes.get(j + 1).is_some_and(|c| is_ident_start(*c))
                {
                    // r#ident — lex as a normal identifier (keep the prefix).
                    let mut k = j + 1;
                    while k < bytes.len() && is_ident_continue(bytes[k]) {
                        k += 1;
                    }
                    let text: String = bytes[i..k].iter().collect();
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            if prefix.contains('b') && !has_r {
                if bytes.get(i + 1) == Some(&'"') {
                    // b"..." — fall through to the string scanner below from
                    // the quote, keeping the prefix in the token text.
                    let (text, nl) = scan_quoted(&bytes, i + 1, '"');
                    out.tokens.push(Tok {
                        kind: TokKind::StrLit,
                        text: format!("b{text}"),
                        line,
                    });
                    line += nl;
                    i = i + 1 + text.chars().count();
                    continue;
                }
                if bytes.get(i + 1) == Some(&'\'') {
                    let (text, nl) = scan_quoted(&bytes, i + 1, '\'');
                    out.tokens.push(Tok {
                        kind: TokKind::CharLit,
                        text: format!("b{text}"),
                        line,
                    });
                    line += nl;
                    i = i + 1 + text.chars().count();
                    continue;
                }
            }
            // Plain identifier starting with r/b.
        }

        // String literal.
        if c == '"' {
            let start_line = line;
            let (text, nl) = scan_quoted(&bytes, i, '"');
            i += text.chars().count();
            line += nl;
            out.tokens.push(Tok {
                kind: TokKind::StrLit,
                text,
                line: start_line,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            // A lifetime is `'` ident-start ident-continue* NOT followed by
            // a closing `'`. Everything else after `'` is a char literal.
            let mut k = i + 1;
            if k < bytes.len() && is_ident_start(bytes[k]) {
                while k < bytes.len() && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                if bytes.get(k) != Some(&'\'') {
                    let text: String = bytes[i..k].iter().collect();
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            let (text, nl) = scan_quoted(&bytes, i, '\'');
            i += text.chars().count();
            line += nl;
            out.tokens.push(Tok {
                kind: TokKind::CharLit,
                text,
                line,
            });
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let mut k = i;
            let mut prev_exp = false;
            while k < bytes.len() {
                let d = bytes[k];
                if d.is_ascii_alphanumeric() || d == '_' {
                    prev_exp = d == 'e' || d == 'E';
                    k += 1;
                } else if d == '.' && bytes.get(k + 1).is_some_and(char::is_ascii_digit) {
                    // `1.5` but not `1..n` or `1.method()`.
                    k += 1;
                } else if (d == '+' || d == '-') && prev_exp {
                    // `1e-9`
                    prev_exp = false;
                    k += 1;
                } else {
                    break;
                }
            }
            let text: String = bytes[i..k].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::NumLit,
                text,
                line,
            });
            i = k;
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut k = i;
            while k < bytes.len() && is_ident_continue(bytes[k]) {
                k += 1;
            }
            let text: String = bytes[i..k].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = k;
            continue;
        }

        // Punctuation: try multi-char operators longest-first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let n = op.chars().count();
            if i + n <= bytes.len() && bytes[i..i + n].iter().collect::<String>() == **op {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += n;
                matched = true;
                break;
            }
        }
        if !matched {
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Scans a quoted literal starting at the opening quote `bytes[start]`,
/// honouring backslash escapes. Returns (text including both quotes,
/// newline count inside the literal).
fn scan_quoted(bytes: &[char], start: usize, quote: char) -> (String, u32) {
    let mut k = start + 1;
    let mut newlines = 0u32;
    while k < bytes.len() {
        match bytes[k] {
            // An escape consumes the next char too; a `\` + newline
            // line-continuation still ends a source line, so count it.
            '\\' => {
                if bytes.get(k + 1) == Some(&'\n') {
                    newlines += 1;
                }
                k += 2;
            }
            '\n' => {
                newlines += 1;
                k += 1;
            }
            c if c == quote => {
                k += 1;
                break;
            }
            _ => k += 1,
        }
    }
    let text: String = bytes[start..k.min(bytes.len())].iter().collect();
    (text, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "for x in map.iter() unsafe";"#);
        assert!(l.tokens.iter().all(|t| t.text != "unsafe"));
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("map.iter()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let l = lex(r#"let s = "a \" b"; let t = 1;"#);
        let idents: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#; let u = unsafe_marker;"###);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("quote \" inside"));
        assert!(l.tokens.iter().any(|t| t.text == "unsafe_marker"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["let", "x", "=", "1", ";"]
        );
        assert!(l.comment_on(1).contains("inner"));
        assert!(l.comment_on(1).contains("still comment"));
    }

    #[test]
    fn multi_line_block_comment_tags_every_line() {
        let l = lex("/* SAFETY:\n   spans lines */\nunsafe {}");
        assert!(l.comment_on(1).contains("SAFETY:"));
        assert!(l.comment_on(2).contains("SAFETY:"));
        let u = l.tokens.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(u.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_escaped_char_quote() {
        let l = lex(r"const S: &'static str = EMPTY; let q = '\'';");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::CharLit && t.text == r"'\''"));
    }

    #[test]
    fn multi_char_punct_and_numbers() {
        let got = kinds("a -= b; c..=d; e::<f>(); 1_000u64 + 0x1f - 1e-9");
        assert!(got.contains(&(TokKind::Punct, "-=".into())));
        assert!(got.contains(&(TokKind::Punct, "..=".into())));
        assert!(got.contains(&(TokKind::Punct, "::".into())));
        assert!(got.contains(&(TokKind::NumLit, "1_000u64".into())));
        assert!(got.contains(&(TokKind::NumLit, "0x1f".into())));
        assert!(got.contains(&(TokKind::NumLit, "1e-9".into())));
    }

    #[test]
    fn line_numbers_survive_literals_and_comments() {
        let src = "let a = 1;\n\"two\nlines\";\n// comment\nlet b = 2;\n";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
        assert!(l.comment_on(4).contains("comment"));
    }

    #[test]
    fn line_comment_text_is_recorded_per_line() {
        let l = lex("// lint: order-insensitive(sums are commutative)\nx.keys();");
        assert!(l.comment_on(1).contains("order-insensitive"));
        assert_eq!(l.comment_on(2), "");
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let src = "let s = \"a\\\nb\\\nc\";\nlet after = 1;\n";
        let l = lex(src);
        let after = l.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex(r#"let m = b"MSCB"; let z = b'\0';"#);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::StrLit && t.text == "b\"MSCB\""));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::CharLit && t.text == r"b'\0'"));
    }
}
