//! Workspace walking, rule dispatch, baseline comparison, and reporting.

use crate::baseline::{Baseline, BaselineError};
use crate::findings::{Finding, RuleId};
use crate::lexer;
use crate::rules::{self, FileCtx, FileKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crate directories that are vendored stand-ins for external dependencies
/// (see the workspace `Cargo.toml`): not part of this project's invariant
/// surface, so the linter does not walk them.
const VENDORED_DIRS: &[&str] = &["compat", "target"];

/// A driver error (I/O or baseline syntax) — distinct from findings.
#[derive(Debug)]
pub enum DriverError {
    Io(PathBuf, std::io::Error),
    Baseline(BaselineError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            DriverError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<BaselineError> for DriverError {
    fn from(e: BaselineError) -> Self {
        DriverError::Baseline(e)
    }
}

/// The result of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Gate-failing findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Current R4 site counts per file (before baselining) — what
    /// `--write-baseline` persists.
    pub r4_counts: BTreeMap<String, usize>,
    /// Files scanned.
    pub files: usize,
}

/// Discovers the `.rs` files of every non-vendored workspace crate:
/// `crates/*/src/**` plus the root crate's `src/**`. Test, bench, and
/// example *targets* are out of scope by construction (only `src/` trees
/// are walked); `#[cfg(test)]` items inside `src/` are excluded per-item
/// by the rules layer.
pub fn discover(root: &Path) -> Result<Vec<(PathBuf, String, FileKind)>, DriverError> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_roots: Vec<(PathBuf, String)> =
        vec![(root.join("src"), "microscope-repro".into())];
    if crates_dir.is_dir() {
        let entries =
            std::fs::read_dir(&crates_dir).map_err(|e| DriverError::Io(crates_dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DriverError::Io(crates_dir.clone(), e))?;
            let name = entry.file_name().to_string_lossy().to_string();
            let src = entry.path().join("src");
            if src.is_dir() {
                crate_roots.push((src, name));
            }
        }
    }
    crate_roots.sort();
    for (src, crate_name) in crate_roots {
        if VENDORED_DIRS.contains(&crate_name.as_str()) {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let in_bin_dir = f.strip_prefix(&src).ok().is_some_and(|rel| {
                rel.components()
                    .next()
                    .is_some_and(|c| c.as_os_str() == "bin")
            });
            // `main.rs` is always a binary target root; `src/bin/*` files
            // are binaries in any crate. For bin crates with helper modules
            // (the CLI), those modules compile into the binary too — but
            // they are still held to the library rules except R4, which the
            // per-crate kind below decides.
            let is_main = f.file_name().is_some_and(|n| n == "main.rs");
            let crate_is_bin = !src.join("lib.rs").exists();
            let kind = if in_bin_dir || is_main || crate_is_bin {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            out.push((f, crate_name.clone(), kind));
        }
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), DriverError> {
    let entries = std::fs::read_dir(dir).map_err(|e| DriverError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| DriverError::Io(dir.to_path_buf(), e))?;
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints one already-loaded file. Exposed for the fixture tests.
pub fn lint_source(path: &str, crate_name: &str, kind: FileKind, source: &str) -> Vec<Finding> {
    let ctx = FileCtx::new(
        path.to_string(),
        crate_name.to_string(),
        kind,
        lexer::lex(source),
    );
    rules::run_all(&ctx)
}

/// Runs the full workspace lint rooted at `root` against `baseline`.
///
/// R1/R2/R3/R5 findings always gate. R4 sites are folded into per-file
/// counts and compared against the baseline: a file over its allowance
/// contributes one summary finding; a file *under* its allowance (or a
/// baselined file that no longer exists) is stale drift, which also gates
/// so the checked-in counts can only ratchet down explicitly.
pub fn run(root: &Path, baseline: &Baseline) -> Result<LintRun, DriverError> {
    let files = discover(root)?;
    let mut run = LintRun {
        files: files.len(),
        ..Default::default()
    };
    let mut r4_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();

    for (path, crate_name, kind) in files {
        let source =
            std::fs::read_to_string(&path).map_err(|e| DriverError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        for f in lint_source(&rel, &crate_name, kind, &source) {
            if f.rule == RuleId::PanicSurface {
                r4_lines.entry(rel.clone()).or_default().push(f.line);
            } else {
                run.findings.push(f);
            }
        }
    }

    for (file, lines) in &r4_lines {
        run.r4_counts.insert(file.clone(), lines.len());
    }

    // Baseline comparison.
    for (file, lines) in &r4_lines {
        let allowed = baseline.r4.get(file).copied().unwrap_or(0);
        let actual = lines.len();
        if actual > allowed {
            let shown: Vec<String> = lines.iter().map(u32::to_string).collect();
            run.findings.push(Finding {
                rule: RuleId::PanicSurface,
                file: file.clone(),
                line: lines[0],
                message: format!(
                    "{actual} unwrap()/expect( site(s) but baseline allows {allowed} \
                     (lines {}); return a typed error instead, or regenerate the \
                     baseline only for grandfathered code",
                    shown.join(", ")
                ),
            });
        }
    }
    // Stale-drift: baselined files that improved or disappeared must be
    // re-recorded so the checked-in count is always exact.
    for (file, &allowed) in &baseline.r4 {
        let actual = r4_lines.get(file).map_or(0, Vec::len);
        if actual < allowed {
            run.findings.push(Finding {
                rule: RuleId::PanicSurface,
                file: file.clone(),
                line: 1,
                message: format!(
                    "stale baseline: allows {allowed} panic site(s) but found {actual}; \
                     run `cargo run -p msc-lint -- --write-baseline` to ratchet down"
                ),
            });
        }
    }

    run.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r4_over_baseline_gates_and_under_is_stale() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("crates/core/src/x.rs", "core", FileKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::PanicSurface);
    }

    #[test]
    fn bin_files_have_no_panic_rule() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("crates/cli/src/main.rs", "cli", FileKind::Bin, src);
        assert!(findings.is_empty());
    }
}
