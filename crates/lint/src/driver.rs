//! Workspace walking, rule dispatch, baseline/manifest comparison, and
//! reporting.

use crate::baseline::{Baseline, BaselineError};
use crate::findings::{Finding, RuleId};
use crate::lexer;
use crate::manifest::{Manifest, ManifestError};
use crate::rules::{self, FileCtx, FileKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crate directories that are vendored stand-ins for external dependencies
/// (see the workspace `Cargo.toml`): not part of this project's invariant
/// surface, so the linter does not walk them.
const VENDORED_DIRS: &[&str] = &["compat", "target"];

/// A driver error (I/O, baseline, or manifest syntax) — distinct from
/// findings.
#[derive(Debug)]
pub enum DriverError {
    Io(PathBuf, std::io::Error),
    Baseline(BaselineError),
    Manifest(ManifestError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            DriverError::Baseline(e) => write!(f, "{e}"),
            DriverError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<BaselineError> for DriverError {
    fn from(e: BaselineError) -> Self {
        DriverError::Baseline(e)
    }
}

impl From<ManifestError> for DriverError {
    fn from(e: ManifestError) -> Self {
        DriverError::Manifest(e)
    }
}

/// The result of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Gate-failing findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Current R4 site counts per file (before baselining) — what
    /// `--write-baseline` persists.
    pub r4_counts: BTreeMap<String, usize>,
    /// Modules currently using concurrency primitives (module key → file) —
    /// what `--write-manifest` persists.
    pub concurrency_modules: BTreeMap<String, String>,
    /// Files scanned.
    pub files: usize,
}

/// The R7 module key of a workspace-relative `.rs` path: crate name plus
/// the module path under `src/`, e.g. `crates/collector/src/ring.rs` →
/// `collector::ring`. `lib.rs` / `main.rs` / `mod.rs` name their parent.
pub fn module_key(rel_path: &str, crate_name: &str) -> String {
    let mut segs: Vec<&str> = rel_path.split('/').collect();
    // Everything up to and including the `src` component is the crate root.
    if let Some(at) = segs.iter().position(|s| *s == "src") {
        segs.drain(..=at);
    }
    let mut key = String::from(crate_name);
    for (i, seg) in segs.iter().enumerate() {
        let s = if i + 1 == segs.len() {
            seg.strip_suffix(".rs").unwrap_or(seg)
        } else {
            seg
        };
        if matches!(s, "lib" | "main" | "mod") && i + 1 == segs.len() {
            continue;
        }
        key.push_str("::");
        key.push_str(s);
    }
    key
}

/// Discovers the `.rs` files of every non-vendored workspace crate:
/// `crates/*/src/**` plus the root crate's `src/**`. Test, bench, and
/// example *targets* are out of scope by construction (only `src/` trees
/// are walked); `#[cfg(test)]` items inside `src/` are excluded per-item
/// by the rules layer.
pub fn discover(root: &Path) -> Result<Vec<(PathBuf, String, FileKind)>, DriverError> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_roots: Vec<(PathBuf, String)> =
        vec![(root.join("src"), "microscope-repro".into())];
    if crates_dir.is_dir() {
        let entries =
            std::fs::read_dir(&crates_dir).map_err(|e| DriverError::Io(crates_dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DriverError::Io(crates_dir.clone(), e))?;
            let name = entry.file_name().to_string_lossy().to_string();
            let src = entry.path().join("src");
            if src.is_dir() {
                crate_roots.push((src, name));
            }
        }
    }
    crate_roots.sort();
    for (src, crate_name) in crate_roots {
        if VENDORED_DIRS.contains(&crate_name.as_str()) {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let in_bin_dir = f.strip_prefix(&src).ok().is_some_and(|rel| {
                rel.components()
                    .next()
                    .is_some_and(|c| c.as_os_str() == "bin")
            });
            // `main.rs` is always a binary target root; `src/bin/*` files
            // are binaries in any crate. For bin crates with helper modules
            // (the CLI), those modules compile into the binary too — but
            // they are still held to the library rules except R4, which the
            // per-crate kind below decides.
            let is_main = f.file_name().is_some_and(|n| n == "main.rs");
            let crate_is_bin = !src.join("lib.rs").exists();
            let kind = if in_bin_dir || is_main || crate_is_bin {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            out.push((f, crate_name.clone(), kind));
        }
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), DriverError> {
    let entries = std::fs::read_dir(dir).map_err(|e| DriverError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| DriverError::Io(dir.to_path_buf(), e))?;
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints one already-loaded file. Exposed for the fixture tests.
pub fn lint_source(path: &str, crate_name: &str, kind: FileKind, source: &str) -> Vec<Finding> {
    let ctx = FileCtx::new(
        path.to_string(),
        crate_name.to_string(),
        kind,
        lexer::lex(source),
    );
    rules::run_all(&ctx)
}

/// Runs the full workspace lint rooted at `root` against `baseline` and
/// `manifest`.
///
/// R1/R2/R3/R5/R6 findings always gate. R4 sites are folded into per-file
/// counts and compared against the baseline: a file over its allowance
/// contributes one summary finding; a file *under* its allowance (or a
/// baselined file that no longer exists) is stale drift, which also gates
/// so the checked-in counts can only ratchet down explicitly. R7 sites are
/// folded into per-module presence and compared against the manifest the
/// same two-sided way: an unregistered module gates, and a registered
/// module with no remaining concurrency use is stale.
pub fn run(root: &Path, baseline: &Baseline, manifest: &Manifest) -> Result<LintRun, DriverError> {
    let files = discover(root)?;
    let mut run = LintRun {
        files: files.len(),
        ..Default::default()
    };
    let mut r4_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    // module key -> (file, first site line, site count)
    let mut r7_modules: BTreeMap<String, (String, u32, usize)> = BTreeMap::new();

    for (path, crate_name, kind) in files {
        let source =
            std::fs::read_to_string(&path).map_err(|e| DriverError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileCtx::new(rel.clone(), crate_name.clone(), kind, lexer::lex(&source));
        for f in rules::run_all(&ctx) {
            if f.rule == RuleId::PanicSurface {
                r4_lines.entry(rel.clone()).or_default().push(f.line);
            } else {
                run.findings.push(f);
            }
        }
        let sites = rules::r7_concurrency_sites(&ctx);
        if let Some(&first) = sites.first() {
            let key = module_key(&rel, &crate_name);
            let entry = r7_modules
                .entry(key)
                .or_insert_with(|| (rel.clone(), first, 0));
            entry.2 += sites.len();
        }
    }

    for (file, lines) in &r4_lines {
        run.r4_counts.insert(file.clone(), lines.len());
    }

    // Baseline comparison.
    for (file, lines) in &r4_lines {
        let allowed = baseline.r4.get(file).copied().unwrap_or(0);
        let actual = lines.len();
        if actual > allowed {
            let shown: Vec<String> = lines.iter().map(u32::to_string).collect();
            run.findings.push(Finding {
                rule: RuleId::PanicSurface,
                file: file.clone(),
                line: lines[0],
                message: format!(
                    "{actual} unwrap()/expect( site(s) but baseline allows {allowed} \
                     (lines {}); return a typed error instead, or regenerate the \
                     baseline only for grandfathered code",
                    shown.join(", ")
                ),
            });
        }
    }
    // Stale-drift: baselined files that improved or disappeared must be
    // re-recorded so the checked-in count is always exact.
    for (file, &allowed) in &baseline.r4 {
        let actual = r4_lines.get(file).map_or(0, Vec::len);
        if actual < allowed {
            run.findings.push(Finding {
                rule: RuleId::PanicSurface,
                file: file.clone(),
                line: 1,
                message: format!(
                    "stale baseline: allows {allowed} panic site(s) but found {actual}; \
                     run `cargo run -p msc-lint -- --write-baseline` to ratchet down"
                ),
            });
        }
    }

    // Manifest comparison (R7): every module using a concurrency primitive
    // must be registered, and every registered module must still use one.
    for (module, (file, first, count)) in &r7_modules {
        run.concurrency_modules.insert(module.clone(), file.clone());
        if !manifest.modules.contains_key(module) {
            run.findings.push(Finding {
                rule: RuleId::ConcurrencyManifest,
                file: file.clone(),
                line: *first,
                message: format!(
                    "module `{module}` uses atomics/unsafe at {count} site(s) but is \
                     not registered in concurrency-manifest.toml; register it with a \
                     reason and add msc-model interleaving tests (DESIGN.md \u{a7}7)"
                ),
            });
        }
    }
    for module in manifest.modules.keys() {
        if !r7_modules.contains_key(module) {
            run.findings.push(Finding {
                rule: RuleId::ConcurrencyManifest,
                file: format!("concurrency-manifest.toml ({module})"),
                line: 1,
                message: format!(
                    "stale manifest: `{module}` is registered but no longer uses any \
                     concurrency primitive; run \
                     `cargo run -p msc-lint -- --write-manifest` to drop it"
                ),
            });
        }
    }

    run.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r4_over_baseline_gates_and_under_is_stale() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("crates/core/src/x.rs", "core", FileKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::PanicSurface);
    }

    #[test]
    fn bin_files_have_no_panic_rule() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("crates/cli/src/main.rs", "cli", FileKind::Bin, src);
        assert!(findings.is_empty());
    }

    #[test]
    fn module_keys_name_files_and_roots() {
        assert_eq!(
            module_key("crates/collector/src/ring.rs", "collector"),
            "collector::ring"
        );
        assert_eq!(module_key("crates/core/src/lib.rs", "core"), "core");
        assert_eq!(module_key("crates/cli/src/main.rs", "cli"), "cli");
        assert_eq!(module_key("crates/x/src/a/mod.rs", "x"), "x::a");
        assert_eq!(module_key("crates/x/src/a/b.rs", "x"), "x::a::b");
        assert_eq!(
            module_key("src/lib.rs", "microscope-repro"),
            "microscope-repro"
        );
    }
}
