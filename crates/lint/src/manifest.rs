//! The R7 concurrency manifest: `concurrency-manifest.toml`.
//!
//! Atomics and `unsafe` are allowed only in modules registered here, each
//! with a one-line reason. Registration is deliberately a checked-in file
//! rather than an inline annotation: adding a module to the concurrency
//! surface shows up as a manifest diff in review, and the expectation (see
//! DESIGN.md §7) is that the same PR adds `msc-model` interleaving tests
//! for it. A registered module that no longer uses any concurrency
//! primitive trips the stale check, so the manifest always lists *exactly*
//! the current surface.
//!
//! The format mirrors [`crate::baseline`]: a hand-rolled TOML subset (one
//! `[modules]` table of `"crate::module" = "reason"` entries) keeping the
//! linter dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// Registered modules: `crate::module` key to one-line reason.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Manifest {
    pub modules: BTreeMap<String, String>,
}

/// Errors from reading a manifest file.
#[derive(Debug)]
pub enum ManifestError {
    Io(std::io::Error),
    /// Line number and description of the malformed line.
    Parse(usize, String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest i/o error: {e}"),
            ManifestError::Parse(line, what) => {
                write!(f, "manifest parse error on line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Strips surrounding double quotes, rejecting anything else.
fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"'))
}

impl Manifest {
    /// Parses the manifest text format.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut out = Manifest::default();
        let mut in_modules = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                if !line.ends_with(']') {
                    return Err(ManifestError::Parse(
                        lineno,
                        format!("bad table header {line:?}"),
                    ));
                }
                in_modules = line == "[modules]";
                continue;
            }
            if !in_modules {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ManifestError::Parse(
                    lineno,
                    format!("expected `\"crate::module\" = \"reason\"`, got {line:?}"),
                ));
            };
            let module = unquote(key.trim()).ok_or_else(|| {
                ManifestError::Parse(
                    lineno,
                    format!("module must be double-quoted, got {:?}", key.trim()),
                )
            })?;
            let reason = unquote(value.trim()).ok_or_else(|| {
                ManifestError::Parse(
                    lineno,
                    format!("reason must be double-quoted, got {:?}", value.trim()),
                )
            })?;
            if reason.trim().is_empty() {
                return Err(ManifestError::Parse(
                    lineno,
                    format!("module {module:?} needs a non-empty reason"),
                ));
            }
            out.modules.insert(module.to_string(), reason.to_string());
        }
        Ok(out)
    }

    /// Loads from a file; a missing file is an empty manifest (so a
    /// workspace with no registered concurrency surface needs no file).
    pub fn load(path: &std::path::Path) -> Result<Manifest, ManifestError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Manifest::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(ManifestError::Io(e)),
        }
    }

    /// Renders the canonical file text (sorted, commented header).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# msc-lint concurrency manifest (rule R7).\n\
             # Atomics and `unsafe` are allowed only in the modules registered below.\n\
             # Registering a module here is a claim that its concurrency protocol is\n\
             # deliberate: justify it with the reason string and back it with msc-model\n\
             # interleaving tests (see DESIGN.md \u{a7}7). A registered module that stops\n\
             # using concurrency primitives trips the stale check. Regenerate with:\n\
             #   cargo run -p msc-lint -- --write-manifest\n\
             \n[modules]\n",
        );
        for (module, reason) in &self.modules {
            out.push_str(&format!("\"{module}\" = \"{reason}\"\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut m = Manifest::default();
        m.modules
            .insert("collector::ring".into(), "SPSC handoff".into());
        m.modules.insert("core::cache".into(), "shard locks".into());
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn missing_file_is_empty() {
        let m = Manifest::load(std::path::Path::new("/nonexistent/msc-lint-manifest")).unwrap();
        assert!(m.modules.is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Manifest::parse("[modules]\nnot a pair\n").is_err());
        assert!(Manifest::parse("[modules]\ncollector::ring = \"x\"\n").is_err());
        assert!(Manifest::parse("[modules]\n\"a::b\" = bare\n").is_err());
        assert!(Manifest::parse("[modules]\n\"a::b\" = \"\"\n").is_err());
    }

    #[test]
    fn unknown_tables_are_ignored() {
        let m = Manifest::parse("[future]\n\"x\" = \"y\"\n[modules]\n\"a::b\" = \"ok\"\n").unwrap();
        assert_eq!(m.modules.len(), 1);
        assert_eq!(m.modules["a::b"], "ok");
    }
}
