//! The R4 panic-surface baseline: `lint-baseline.toml`.
//!
//! The baseline grandfathers the `unwrap()`/`expect(` sites that existed
//! when the linter was introduced, as a per-file count. New sites fail the
//! gate; removing sites without regenerating the file trips the stale-drift
//! check, so the recorded count ratchets monotonically downward and the
//! file's history *is* the burn-down record.
//!
//! The format is a small, hand-rolled TOML subset (one `[r4]` table of
//! `"path" = count` entries) so the linter stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// Per-file allowed R4 counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub r4: BTreeMap<String, usize>,
}

/// Errors from reading a baseline file.
#[derive(Debug)]
pub enum BaselineError {
    Io(std::io::Error),
    /// Line number and description of the malformed line.
    Parse(usize, String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline i/o error: {e}"),
            BaselineError::Parse(line, what) => {
                write!(f, "baseline parse error on line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses the baseline text format.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut out = Baseline::default();
        let mut in_r4 = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_r4 = line == "[r4]";
                if !in_r4 && line.ends_with(']') {
                    // Unknown tables are ignored (forward compatibility).
                    continue;
                }
                if !line.ends_with(']') {
                    return Err(BaselineError::Parse(
                        lineno,
                        format!("bad table header {line:?}"),
                    ));
                }
                continue;
            }
            if !in_r4 {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError::Parse(
                    lineno,
                    format!("expected `\"path\" = count`, got {line:?}"),
                ));
            };
            let key = key.trim();
            let path = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| {
                    BaselineError::Parse(lineno, format!("path must be double-quoted, got {key:?}"))
                })?;
            let count: usize = value.trim().parse().map_err(|_| {
                BaselineError::Parse(lineno, format!("bad count {:?}", value.trim()))
            })?;
            out.r4.insert(path.to_string(), count);
        }
        Ok(out)
    }

    /// Loads from a file; a missing file is an empty baseline.
    pub fn load(path: &std::path::Path) -> Result<Baseline, BaselineError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(BaselineError::Io(e)),
        }
    }

    /// Renders the canonical file text (sorted, commented header).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# msc-lint panic-surface baseline (rule R4).\n\
             # Grandfathered `unwrap()`/`expect(` sites per library file. The gate\n\
             # fails when a file exceeds its count, and the stale-drift check fails\n\
             # when a count shrinks without regenerating this file — so the numbers\n\
             # below only ever go down. Regenerate with:\n\
             #   cargo run -p msc-lint -- --write-baseline\n\
             \n[r4]\n",
        );
        for (path, count) in &self.r4 {
            out.push_str(&format!("\"{path}\" = {count}\n"));
        }
        out
    }

    /// Total grandfathered sites.
    pub fn total(&self) -> usize {
        self.r4.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.r4.insert("crates/core/src/diagnose.rs".into(), 7);
        b.r4.insert("src/lib.rs".into(), 1);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 8);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(std::path::Path::new("/nonexistent/msc-lint-baseline")).unwrap();
        assert!(b.r4.is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[r4]\nnot a pair\n").is_err());
        assert!(Baseline::parse("[r4]\n\"x.rs\" = lots\n").is_err());
        assert!(Baseline::parse("[r4]\nx.rs = 3\n").is_err());
    }

    #[test]
    fn unknown_tables_are_ignored() {
        let b = Baseline::parse("[future]\n\"x\" = 1\n[r4]\n\"y.rs\" = 2\n").unwrap();
        assert_eq!(b.r4.len(), 1);
        assert_eq!(b.r4["y.rs"], 2);
    }
}
