//! `msc-lint` — the workspace's project-specific static-analysis pass.
//!
//! Rust's own tooling cannot see the invariants this reproduction lives and
//! dies by: clippy is happy with `for (k, v) in &map` even when the float
//! roll-up inside the loop makes the report depend on `HashMap` iteration
//! order (the PR 1 autofocus bug), and with `rx_ts - offset` even when a
//! skew-corrected offset makes the unsigned subtraction wrap (the PR 1 skew
//! bug). `msc-lint` encodes those shipped-and-fixed bug classes as hard
//! `cargo`-time errors:
//!
//! * **R1 order-sensitivity** — unordered-map iteration in output-producing
//!   crates must sort or be annotated order-insensitive.
//! * **R2 saturating time arithmetic** — bare `+`/`-` on timestamps.
//! * **R3 lossy casts** — `as u8`/`as u16`/`as u32` on wire quantities.
//! * **R4 panic surface** — `unwrap`/`expect` in library code, ratcheted
//!   down by `lint-baseline.toml`.
//! * **R5 unsafe audit** — `unsafe` requires a `// SAFETY:` comment.
//! * **R6 ordering justification** — `Ordering::Relaxed` requires a
//!   `// ordering:` comment saying why no synchronization is needed.
//! * **R7 concurrency manifest** — atomics and `unsafe` only in modules
//!   registered (with a reason) in `concurrency-manifest.toml`.
//!
//! The crate is dependency-free: a small comment/string-aware lexer
//! ([`lexer`]) feeds per-rule token-stream visitors ([`rules`]); [`driver`]
//! walks the workspace and applies the [`baseline`] and [`manifest`]. See
//! DESIGN.md "Determinism invariants and how msc-lint enforces them".

#![forbid(unsafe_code)]

pub mod baseline;
pub mod driver;
pub mod findings;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use baseline::Baseline;
pub use driver::{lint_source, module_key, run, DriverError, LintRun};
pub use findings::{to_json, Finding, RuleId};
pub use manifest::Manifest;
pub use rules::{FileCtx, FileKind};
