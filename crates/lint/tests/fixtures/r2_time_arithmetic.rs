//! Fixture: R2 — bare arithmetic on timestamp-suffixed bindings.
//! Expected findings: lines 6 and 12.

/// Dwell time between receive and transmit.
pub fn dwell(rx_ts: u64, tx_ts: u64) -> u64 {
    tx_ts - rx_ts
}

/// Advances a deadline in place.
pub fn advance(deadline_ns: u64, step: u64) -> u64 {
    let mut t_ns = deadline_ns;
    t_ns += step;
    t_ns
}
