//! Lexer edge cases: raw strings, nested block comments, and `//` inside
//! string literals must neither hide real sites nor fabricate phantom ones.
use std::sync::atomic::{AtomicU64, Ordering};

/// `unsafe` and `Ordering::Relaxed` inside a raw string are not code.
pub fn raw_strings() -> &'static str {
    r#"unsafe { Ordering::Relaxed } // ordering: fake"#
}

/// A `//` inside a string literal does not start a comment, so no
/// justification text can be smuggled in through this URL.
pub fn slashes_in_strings() -> String {
    let url = "https://example.invalid/ordering:info";
    url.to_string()
}

/* A nested /* block comment */ still hides everything inside it:
   unsafe { } and Ordering::Relaxed never reach the token stream. */

/// SAFETY-free unsafe after the edge cases: the lexer recovered and R5
/// fires at exactly this declaration's line.
pub unsafe fn no_safety_comment() {}

/// After a multi-line raw string with hashes, tokens resume on the right
/// line — this Relaxed has no justification and gates at its exact line.
pub fn unjustified_after_edges(c: &AtomicU64) -> u64 {
    let marker = r##"multi
line "# raw"##;
    let _ = marker;
    c.load(Ordering::Relaxed)
}
