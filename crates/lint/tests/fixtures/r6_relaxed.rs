//! R6 fixture: `Ordering::Relaxed` requires a `// ordering:` comment on
//! the same line or in the contiguous comment block immediately above;
//! Acquire/Release/AcqRel/SeqCst are exempt.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn justified_same_line(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // ordering: totals-only counter.
}

pub fn unjustified_load(c: &AtomicU64) -> u64 {
    // An ordinary comment does not count as a justification.
    c.load(Ordering::Relaxed)
}

pub fn justified_block_above(c: &AtomicU64) {
    // ordering: increment-only statistics counter; the consumer joins the
    // worker threads before reading, so no publication rides on this.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn exempt_strong_orderings(c: &AtomicU64) -> u64 {
    c.store(1, Ordering::Release);
    c.fetch_add(1, Ordering::SeqCst);
    c.load(Ordering::Relaxed) + c.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_fine() {
        let c = AtomicU64::new(0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
