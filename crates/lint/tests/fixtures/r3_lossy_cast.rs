//! Fixture: R3 — lossy narrowing casts on wire-format quantities.
//! Expected findings: lines 6 and 11.

/// Packs a batch length into the wire byte.
pub fn pack_len(batch_len: usize) -> u8 {
    batch_len as u8
}

/// Truncates an identifier counter to an IPID.
pub fn next_ipid(ipid_counter: u64) -> u16 {
    ipid_counter as u16
}
