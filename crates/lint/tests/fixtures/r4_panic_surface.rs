//! Fixture: R4 — panic surface in library code (baselined, not zero-burn).
//! Expected sites: lines 6 and 11; the test-module unwrap is exempt.

/// Looks up a required entry.
pub fn must_get(v: &[u32], i: usize) -> u32 {
    *v.get(i).unwrap()
}

/// Parses a known-good literal.
pub fn parse_fixed(s: &str) -> u64 {
    s.parse().expect("fixture literal")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::parse_fixed("7"), 7);
        let x: Option<u8> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
