//! Fixture: clean counterpart — every rule's sanctioned form or escape
//! hatch in action. Expected findings: none.

use std::collections::HashMap;

/// R1: collect, then sort in the immediately following statement.
pub fn ranked(scores: &HashMap<String, f64>) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = scores.iter().map(|(k, &v)| (k.clone(), v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// R1: annotated order-insensitive reduction.
pub fn total(counts: &HashMap<String, u64>) -> u64 {
    // lint: order-insensitive(integer summation is commutative and associative)
    counts.values().sum()
}

/// R2: saturating subtraction, the sanctioned form.
pub fn dwell(rx_ts: u64, tx_ts: u64) -> u64 {
    tx_ts.saturating_sub(rx_ts)
}

/// R2: signed-delta idiom — both sides cast to i64 before subtracting.
pub fn skew(rx_ts: u64, tx_ts: u64) -> i64 {
    tx_ts as i64 - rx_ts as i64
}

/// R2: annotated site.
pub fn tick(now_ts: u64) -> u64 {
    // lint: time-arith-ok(fixture exercises the annotation hatch)
    now_ts + 1
}

/// R3: checked narrowing with a typed error.
pub fn pack_len(batch_len: usize) -> Result<u8, std::num::TryFromIntError> {
    u8::try_from(batch_len)
}

/// R3: annotated site.
pub fn small_count(count: u64) -> u32 {
    // lint: lossy-cast-ok(fixture exercises the annotation hatch)
    count as u32
}

/// R5: justified unsafe.
pub fn first_unchecked(v: &[u32]) -> u32 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
