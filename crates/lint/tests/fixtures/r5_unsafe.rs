//! Fixture: R5 — `unsafe` without a `// SAFETY:` justification.
//! Expected finding: line 6.

/// Reads the first element without a bounds check.
pub fn first_unchecked(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
