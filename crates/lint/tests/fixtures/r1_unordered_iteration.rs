//! Fixture: R1 — HashMap/HashSet iteration order leaking into output.
//! Expected findings: lines 8 and 16.

use std::collections::{HashMap, HashSet};

pub fn report(scores: &HashMap<String, f64>) -> Vec<String> {
    let mut out = Vec::new();
    for (name, s) in scores {
        out.push(format!("{name}={s}"));
    }
    out
}

pub fn first_seen(seen: &HashSet<u16>) -> Option<u16> {
    let mut it = Vec::new();
    seen.iter().for_each(|&v| it.push(v));
    it.first().copied()
}
