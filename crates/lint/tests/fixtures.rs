//! Fixture tests: each `tests/fixtures/*.rs` file seeds known violations
//! (or their sanctioned/annotated counterparts) and the assertions here pin
//! the exact (rule, line) sets `msc-lint` must report for them. The fixture
//! files are data, not compiled code — the driver's workspace walk never
//! sees them (it only descends into `src/` trees).

use msc_lint::{lint_source, Baseline, FileKind, RuleId};

/// Lints a fixture as if it lived in an output-producing library crate.
fn lint_fixture(name: &str, source: &str) -> Vec<(RuleId, u32)> {
    lint_source(
        &format!("crates/core/src/{name}"),
        "core",
        FileKind::Lib,
        source,
    )
    .into_iter()
    .map(|f| (f.rule, f.line))
    .collect()
}

#[test]
fn r1_fixture_lines() {
    let got = lint_fixture(
        "r1_unordered_iteration.rs",
        include_str!("fixtures/r1_unordered_iteration.rs"),
    );
    assert_eq!(
        got,
        vec![
            (RuleId::OrderSensitivity, 8),
            (RuleId::OrderSensitivity, 16)
        ]
    );
}

#[test]
fn r2_fixture_lines() {
    let got = lint_fixture(
        "r2_time_arithmetic.rs",
        include_str!("fixtures/r2_time_arithmetic.rs"),
    );
    assert_eq!(
        got,
        vec![(RuleId::TimeArithmetic, 6), (RuleId::TimeArithmetic, 12)]
    );
}

#[test]
fn r3_fixture_lines() {
    let got = lint_fixture(
        "r3_lossy_cast.rs",
        include_str!("fixtures/r3_lossy_cast.rs"),
    );
    assert_eq!(got, vec![(RuleId::LossyCast, 6), (RuleId::LossyCast, 11)]);
}

#[test]
fn r4_fixture_lines_exclude_test_module() {
    let got = lint_fixture(
        "r4_panic_surface.rs",
        include_str!("fixtures/r4_panic_surface.rs"),
    );
    // Lines 6 and 11 gate; the unwrap inside `#[cfg(test)] mod tests` does
    // not appear at all.
    assert_eq!(
        got,
        vec![(RuleId::PanicSurface, 6), (RuleId::PanicSurface, 11)]
    );
}

#[test]
fn r5_fixture_lines() {
    let got = lint_fixture("r5_unsafe.rs", include_str!("fixtures/r5_unsafe.rs"));
    assert_eq!(got, vec![(RuleId::UnsafeAudit, 6)]);
}

#[test]
fn clean_fixture_has_no_findings() {
    let got = lint_fixture("clean.rs", include_str!("fixtures/clean.rs"));
    assert_eq!(got, Vec::new());
}

#[test]
fn violations_vanish_outside_output_crates_for_r1_only() {
    // R1 is scoped to output-producing crates; R2/R3/R5 apply everywhere.
    let r1 = lint_source(
        "crates/sim/src/x.rs",
        "sim",
        FileKind::Lib,
        include_str!("fixtures/r1_unordered_iteration.rs"),
    );
    assert!(r1.is_empty());
    let r2 = lint_source(
        "crates/sim/src/x.rs",
        "sim",
        FileKind::Lib,
        include_str!("fixtures/r2_time_arithmetic.rs"),
    );
    assert_eq!(r2.len(), 2);
}

#[test]
fn r4_does_not_apply_to_binaries() {
    let got = lint_source(
        "crates/cli/src/main.rs",
        "cli",
        FileKind::Bin,
        include_str!("fixtures/r4_panic_surface.rs"),
    );
    assert!(got.is_empty());
}

/// End-to-end ratchet semantics through `msc_lint::run` on a materialized
/// mini-workspace: exact baseline passes, over-baseline gates, and an
/// over-generous (stale) baseline gates too.
#[test]
fn baseline_ratchet_round_trip() {
    let root = std::env::temp_dir().join(format!("msc-lint-fixture-{}", std::process::id()));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("fixture tmp dir");
    // The driver also walks the workspace-root crate's `src/` tree.
    std::fs::create_dir_all(root.join("src")).expect("fixture root src");
    std::fs::write(
        src.join("lib.rs"),
        include_str!("fixtures/r4_panic_surface.rs"),
    )
    .expect("fixture lib.rs");

    let exact = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 2\n").expect("baseline");
    let run = msc_lint::run(&root, &exact).expect("lint run");
    assert_eq!(run.files, 1);
    assert!(
        run.findings.is_empty(),
        "exact baseline must pass: {:?}",
        run.findings
    );
    assert_eq!(run.r4_counts.get("crates/core/src/lib.rs"), Some(&2));

    let tight = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 1\n").expect("baseline");
    let run = msc_lint::run(&root, &tight).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert_eq!(run.findings[0].rule, RuleId::PanicSurface);
    assert!(run.findings[0].message.contains("baseline allows 1"));

    let stale = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 3\n").expect("baseline");
    let run = msc_lint::run(&root, &stale).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert!(run.findings[0].message.contains("stale baseline"));

    std::fs::remove_dir_all(&root).expect("fixture tmp cleanup");
}
