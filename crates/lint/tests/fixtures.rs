//! Fixture tests: each `tests/fixtures/*.rs` file seeds known violations
//! (or their sanctioned/annotated counterparts) and the assertions here pin
//! the exact (rule, line) sets `msc-lint` must report for them. The fixture
//! files are data, not compiled code — the driver's workspace walk never
//! sees them (it only descends into `src/` trees).

use msc_lint::{lint_source, Baseline, FileKind, Manifest, RuleId};

/// Lints a fixture as if it lived in an output-producing library crate.
fn lint_fixture(name: &str, source: &str) -> Vec<(RuleId, u32)> {
    lint_source(
        &format!("crates/core/src/{name}"),
        "core",
        FileKind::Lib,
        source,
    )
    .into_iter()
    .map(|f| (f.rule, f.line))
    .collect()
}

#[test]
fn r1_fixture_lines() {
    let got = lint_fixture(
        "r1_unordered_iteration.rs",
        include_str!("fixtures/r1_unordered_iteration.rs"),
    );
    assert_eq!(
        got,
        vec![
            (RuleId::OrderSensitivity, 8),
            (RuleId::OrderSensitivity, 16)
        ]
    );
}

#[test]
fn r2_fixture_lines() {
    let got = lint_fixture(
        "r2_time_arithmetic.rs",
        include_str!("fixtures/r2_time_arithmetic.rs"),
    );
    assert_eq!(
        got,
        vec![(RuleId::TimeArithmetic, 6), (RuleId::TimeArithmetic, 12)]
    );
}

#[test]
fn r3_fixture_lines() {
    let got = lint_fixture(
        "r3_lossy_cast.rs",
        include_str!("fixtures/r3_lossy_cast.rs"),
    );
    assert_eq!(got, vec![(RuleId::LossyCast, 6), (RuleId::LossyCast, 11)]);
}

#[test]
fn r4_fixture_lines_exclude_test_module() {
    let got = lint_fixture(
        "r4_panic_surface.rs",
        include_str!("fixtures/r4_panic_surface.rs"),
    );
    // Lines 6 and 11 gate; the unwrap inside `#[cfg(test)] mod tests` does
    // not appear at all.
    assert_eq!(
        got,
        vec![(RuleId::PanicSurface, 6), (RuleId::PanicSurface, 11)]
    );
}

#[test]
fn r5_fixture_lines() {
    let got = lint_fixture("r5_unsafe.rs", include_str!("fixtures/r5_unsafe.rs"));
    assert_eq!(got, vec![(RuleId::UnsafeAudit, 6)]);
}

#[test]
fn clean_fixture_has_no_findings() {
    let got = lint_fixture("clean.rs", include_str!("fixtures/clean.rs"));
    assert_eq!(got, Vec::new());
}

#[test]
fn violations_vanish_outside_output_crates_for_r1_only() {
    // R1 is scoped to output-producing crates; R2/R3/R5 apply everywhere.
    let r1 = lint_source(
        "crates/sim/src/x.rs",
        "sim",
        FileKind::Lib,
        include_str!("fixtures/r1_unordered_iteration.rs"),
    );
    assert!(r1.is_empty());
    let r2 = lint_source(
        "crates/sim/src/x.rs",
        "sim",
        FileKind::Lib,
        include_str!("fixtures/r2_time_arithmetic.rs"),
    );
    assert_eq!(r2.len(), 2);
}

#[test]
fn r4_does_not_apply_to_binaries() {
    let got = lint_source(
        "crates/cli/src/main.rs",
        "cli",
        FileKind::Bin,
        include_str!("fixtures/r4_panic_surface.rs"),
    );
    assert!(got.is_empty());
}

/// End-to-end ratchet semantics through `msc_lint::run` on a materialized
/// mini-workspace: exact baseline passes, over-baseline gates, and an
/// over-generous (stale) baseline gates too.
#[test]
fn baseline_ratchet_round_trip() {
    let root = std::env::temp_dir().join(format!("msc-lint-fixture-{}", std::process::id()));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("fixture tmp dir");
    // The driver also walks the workspace-root crate's `src/` tree.
    std::fs::create_dir_all(root.join("src")).expect("fixture root src");
    std::fs::write(
        src.join("lib.rs"),
        include_str!("fixtures/r4_panic_surface.rs"),
    )
    .expect("fixture lib.rs");

    let none = Manifest::default();
    let exact = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 2\n").expect("baseline");
    let run = msc_lint::run(&root, &exact, &none).expect("lint run");
    assert_eq!(run.files, 1);
    assert!(
        run.findings.is_empty(),
        "exact baseline must pass: {:?}",
        run.findings
    );
    assert_eq!(run.r4_counts.get("crates/core/src/lib.rs"), Some(&2));

    let tight = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 1\n").expect("baseline");
    let run = msc_lint::run(&root, &tight, &none).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert_eq!(run.findings[0].rule, RuleId::PanicSurface);
    assert!(run.findings[0].message.contains("baseline allows 1"));

    let stale = Baseline::parse("[r4]\n\"crates/core/src/lib.rs\" = 3\n").expect("baseline");
    let run = msc_lint::run(&root, &stale, &none).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert!(run.findings[0].message.contains("stale baseline"));

    std::fs::remove_dir_all(&root).expect("fixture tmp cleanup");
}

#[test]
fn r6_fixture_lines() {
    let got = lint_fixture("r6_relaxed.rs", include_str!("fixtures/r6_relaxed.rs"));
    // Only the unjustified Relaxed sites gate; same-line and block-above
    // justifications pass, Acquire/Release/SeqCst are exempt, and the
    // `#[cfg(test)]` module is out of scope.
    assert_eq!(
        got,
        vec![
            (RuleId::OrderingJustification, 12),
            (RuleId::OrderingJustification, 24),
        ]
    );
}

#[test]
fn r6_does_not_apply_to_the_model_crate() {
    let got = lint_source(
        "crates/model/src/exec.rs",
        "model",
        FileKind::Lib,
        include_str!("fixtures/r6_relaxed.rs"),
    );
    assert!(got.iter().all(|f| f.rule != RuleId::OrderingJustification));
}

/// End-to-end R7 semantics through `msc_lint::run` on a materialized
/// mini-workspace: a registered module passes, an unregistered one gates,
/// and a registered module with no concurrency use is stale.
#[test]
fn concurrency_manifest_round_trip() {
    let root = std::env::temp_dir().join(format!("msc-lint-manifest-{}", std::process::id()));
    let src = root.join("crates/queue/src");
    std::fs::create_dir_all(&src).expect("fixture tmp dir");
    std::fs::create_dir_all(root.join("src")).expect("fixture root src");
    // A module with atomics + unsafe, fully justified for R5/R6 so only R7
    // is in play.
    std::fs::write(
        src.join("ring.rs"),
        "use std::sync::atomic::{AtomicUsize, Ordering};\n\
         pub struct R(AtomicUsize);\n\
         impl R {\n\
             pub fn get(&self) -> usize {\n\
                 // ordering: test fixture counter, no publication.\n\
                 self.0.load(Ordering::Relaxed)\n\
             }\n\
         }\n",
    )
    .expect("fixture ring.rs");
    std::fs::write(src.join("lib.rs"), "pub mod ring;\n").expect("fixture lib.rs");

    let baseline = Baseline::default();
    let registered =
        Manifest::parse("[modules]\n\"queue::ring\" = \"fixture ring\"\n").expect("manifest");
    let run = msc_lint::run(&root, &baseline, &registered).expect("lint run");
    assert!(
        run.findings.is_empty(),
        "registered module must pass: {:?}",
        run.findings
    );
    assert_eq!(
        run.concurrency_modules.get("queue::ring"),
        Some(&"crates/queue/src/ring.rs".to_string())
    );

    let empty = Manifest::default();
    let run = msc_lint::run(&root, &baseline, &empty).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert_eq!(run.findings[0].rule, RuleId::ConcurrencyManifest);
    assert!(run.findings[0].message.contains("not registered"));

    let stale = Manifest::parse(
        "[modules]\n\"queue::ring\" = \"fixture ring\"\n\"queue::gone\" = \"removed\"\n",
    )
    .expect("manifest");
    let run = msc_lint::run(&root, &baseline, &stale).expect("lint run");
    assert_eq!(run.findings.len(), 1);
    assert!(run.findings[0].message.contains("stale manifest"));

    std::fs::remove_dir_all(&root).expect("fixture tmp cleanup");
}

/// Lexer edge cases flowing through the full rule pipeline: raw strings,
/// nested block comments, and `//` inside string literals must neither
/// hide real sites nor fabricate phantom ones.
#[test]
fn lexer_edges_fixture_lines() {
    let got = lint_fixture("lexer_edges.rs", include_str!("fixtures/lexer_edges.rs"));
    assert_eq!(
        got,
        vec![
            (RuleId::UnsafeAudit, 22),
            (RuleId::OrderingJustification, 30),
        ]
    );
}
