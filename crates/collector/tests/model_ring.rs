//! Exhaustive interleaving checks of the SPSC ring's acquire/release
//! handoff, run with `msc-model` shims in place of `std::sync::atomic`.
//!
//! Every test asserts `stats.complete`: the checker exhausted *all*
//! schedules within bounds, so these are proofs over the modeled semantics,
//! not spot checks. The final test seeds the classic bug (consumer loads
//! `head` with `Relaxed`) into a fixture copy of the ring and demonstrates
//! the checker catches it as a data race.

use msc_collector::SpscRingCore;
use msc_model::prims::{Atomic, Ordering, Prims, RawCell};
use msc_model::shim::{ModelCell, ModelPrims};
use msc_model::{check, model, Config, ViolationKind};
use std::sync::Arc;

type ModelRing = SpscRingCore<u64, ModelPrims>;

/// Producer/consumer handoff: every schedule yields an in-order prefix, no
/// value is ever lost, torn, or observed early.
#[test]
fn spsc_handoff_is_race_free_and_fifo() {
    let stats = model(|| {
        let ring = Arc::new(ModelRing::new(2));
        let producer = {
            let ring = Arc::clone(&ring);
            msc_model::thread::spawn(move || {
                // Capacity 2 and exactly 2 pushes: never full, no retry
                // loop to unbound the schedule space.
                assert!(ring.push(1).is_ok());
                assert!(ring.push(2).is_ok());
            })
        };
        // Concurrent consumer: anything popped must be the FIFO prefix.
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Some(v) = ring.pop() {
                got.push(v);
            }
        }
        producer.join();
        // Drain what the concurrent phase missed.
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2], "every schedule must deliver FIFO");
        assert_eq!(ring.dropped(), 0);
    });
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    assert!(
        stats.interleavings >= 10,
        "2-thread handoff must branch: {stats:?}"
    );
}

/// Wrap-around under concurrency: a capacity-1 ring forces the indexes
/// through the wrap while both sides run, with the full-ring drop path
/// reachable in some schedules.
#[test]
fn wraparound_and_full_ring_are_race_free() {
    let stats = model(|| {
        let ring = Arc::new(ModelRing::new(1));
        let producer = {
            let ring = Arc::clone(&ring);
            msc_model::thread::spawn(move || {
                let mut pushed = Vec::new();
                for v in 1..=3u64 {
                    if ring.push(v).is_ok() {
                        pushed.push(v);
                    }
                }
                pushed
            })
        };
        let mut got = Vec::new();
        for _ in 0..3 {
            if let Some(v) = ring.pop() {
                got.push(v);
            }
        }
        let pushed = producer.join();
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        // Exactly the successfully pushed values come out, in order.
        assert_eq!(got, pushed, "delivered == accepted, in order");
        assert_eq!(
            ring.dropped(),
            3 - pushed.len() as u64,
            "drop counter matches rejected pushes"
        );
    });
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    assert!(stats.interleavings >= 10, "must branch: {stats:?}");
}

/// Full/empty edge cases and repeated wrap, single-threaded under the model
/// shims: pins the functional behaviour the concurrent tests rely on.
#[test]
fn full_empty_edges_wrap_deterministically() {
    let stats = model(|| {
        let ring = ModelRing::new(1);
        assert_eq!(ring.pop(), None, "empty ring pops nothing");
        for round in 10..13 {
            assert!(ring.push(round).is_ok());
            assert_eq!(ring.push(99), Err(99), "capacity-1 ring is full");
            assert_eq!(ring.len(), 1);
            assert_eq!(ring.pop(), Some(round));
            assert!(ring.is_empty());
        }
        assert_eq!(ring.dropped(), 3);
    });
    assert!(stats.complete);
    assert_eq!(
        stats.interleavings, 1,
        "single-threaded run has exactly one schedule"
    );
}

// ---------------------------------------------------------------------------
// Seeded-bug fixture: the ring with the consumer's `head` load downgraded
// from Acquire to Relaxed. The producer's slot write is then not ordered
// before the consumer's slot read, and the model must find the race.
// ---------------------------------------------------------------------------

/// Fixture copy of the ring hot path (u64 slots, capacity 1) with the BUG:
/// `pop` loads `head` with `Relaxed` instead of `Acquire`.
struct BuggyRing {
    buf: Vec<ModelCell<u64>>,
    head: <ModelPrims as Prims>::AUsize,
    tail: <ModelPrims as Prims>::AUsize,
}

// The model run serializes and race-checks all accesses; this mirrors the
// real ring's `unsafe impl Sync` under test.
unsafe impl Sync for BuggyRing {}
unsafe impl Send for BuggyRing {}

impl BuggyRing {
    fn new() -> Self {
        Self {
            buf: (0..2).map(|_| ModelCell::new(0)).collect(),
            head: <ModelPrims as Prims>::AUsize::new(0),
            tail: <ModelPrims as Prims>::AUsize::new(0),
        }
    }

    fn next(i: usize) -> usize {
        (i + 1) % 2
    }

    fn push(&self, v: u64) -> Result<(), u64> {
        let head = self.head.load(Ordering::Relaxed);
        let next = Self::next(head);
        if next == self.tail.load(Ordering::Acquire) {
            return Err(v);
        }
        self.buf[head].with_mut(|slot| unsafe { *slot = v });
        self.head.store(next, Ordering::Release);
        Ok(())
    }

    fn pop(&self) -> Option<u64> {
        let tail = self.tail.load(Ordering::Relaxed);
        // BUG under test: must be Acquire to order the producer's slot
        // write before our slot read.
        if tail == self.head.load(Ordering::Relaxed) {
            return None;
        }
        let v = self.buf[tail].with(|slot| unsafe { *slot });
        self.tail.store(Self::next(tail), Ordering::Release);
        Some(v)
    }
}

#[test]
fn relaxed_head_load_in_pop_is_caught() {
    let res = check(Config::default(), || {
        let ring = Arc::new(BuggyRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            msc_model::thread::spawn(move || {
                let _ = ring.push(7);
            })
        };
        let _ = ring.pop();
        producer.join();
    });
    let v = res.expect_err("relaxed head load must race with the slot write");
    assert!(
        matches!(v.kind, ViolationKind::DataRace(_)),
        "expected a data race, got: {v}"
    );
}
