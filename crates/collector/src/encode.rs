//! Compact binary encoding of collector logs.
//!
//! §5 of the paper: "Directly collecting the data incurs a high overhead
//! because we need more than 15 bytes per packet. We compress the data down
//! to around two bytes per packet." The trick is that interior NFs store only
//! the 2-byte IPID per packet; timestamps are per *batch* and delta-encoded
//! as LEB128 varints; five-tuples appear once per packet only at flow-info
//! points (exit NFs / source).
//!
//! The format is versioned and self-contained so the dumper can write it to
//! disk and the offline analysis can read it back without shared state.

use crate::collector::NfLog;
use crate::records::{FlowRecord, RxBatch, TxBatch};
use nf_types::{FiveTuple, NfId, Proto};
use std::fmt;

/// Format version tag (first byte of every encoded log).
const VERSION: u8 = 1;
/// Marker for "batch left the NF graph" in the tx target field.
const TO_EXIT: u16 = u16::MAX;

/// Errors from [`encode_nf_log`] / [`decode_nf_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Input ended in the middle of a field.
    Truncated,
    /// Unknown format version byte.
    BadVersion(u8),
    /// A varint ran past 10 bytes.
    BadVarint,
    /// A batch holds more packets than the one-byte wire length can carry.
    BatchTooLarge(usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Truncated => write!(f, "truncated log"),
            EncodeError::BadVersion(v) => write!(f, "unknown log version {v}"),
            EncodeError::BadVarint => write!(f, "malformed varint"),
            EncodeError::BatchTooLarge(n) => {
                write!(f, "batch of {n} packets exceeds the 255-packet wire limit")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, EncodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(EncodeError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(EncodeError::BadVarint);
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16, EncodeError> {
    let b = buf.get(*pos..*pos + 2).ok_or(EncodeError::Truncated)?;
    *pos += 2;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, EncodeError> {
    let b = buf.get(*pos..*pos + 4).ok_or(EncodeError::Truncated)?;
    *pos += 4;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn put_tuple(out: &mut Vec<u8>, t: &FiveTuple) {
    put_u32(out, t.src_ip);
    put_u32(out, t.dst_ip);
    put_u16(out, t.src_port);
    put_u16(out, t.dst_port);
    out.push(t.proto.0);
}

fn get_tuple(buf: &[u8], pos: &mut usize) -> Result<FiveTuple, EncodeError> {
    let src_ip = get_u32(buf, pos)?;
    let dst_ip = get_u32(buf, pos)?;
    let src_port = get_u16(buf, pos)?;
    let dst_port = get_u16(buf, pos)?;
    let proto = *buf.get(*pos).ok_or(EncodeError::Truncated)?;
    *pos += 1;
    Ok(FiveTuple::new(
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        Proto(proto),
    ))
}

/// Encodes one NF's log. Returns the byte buffer, or
/// [`EncodeError::BatchTooLarge`] if a batch cannot fit its one-byte wire
/// length (the collector's `MAX_BATCH` invariant keeps real logs far below
/// it; the check turns a corrupted log into a typed error instead of a
/// silently truncated length byte).
pub fn encode_nf_log(log: &NfLog) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(
        8 + log.rx.iter().map(|b| 4 + 2 * b.len()).sum::<usize>()
            + log.tx.iter().map(|b| 7 + 2 * b.len()).sum::<usize>()
            + log.flows.len() * 17,
    );
    let batch_len = |n: usize| u8::try_from(n).map_err(|_| EncodeError::BatchTooLarge(n));
    out.push(VERSION);
    put_u16(&mut out, log.nf.0);

    put_varint(&mut out, log.rx.len() as u64);
    let mut prev_ts = 0u64;
    for b in &log.rx {
        put_varint(&mut out, b.ts.wrapping_sub(prev_ts));
        prev_ts = b.ts;
        out.push(batch_len(b.len())?);
        for &ipid in &b.ipids {
            put_u16(&mut out, ipid);
        }
    }

    put_varint(&mut out, log.tx.len() as u64);
    let mut prev_ts = 0u64;
    for b in &log.tx {
        put_varint(&mut out, b.ts.wrapping_sub(prev_ts));
        prev_ts = b.ts;
        put_u16(&mut out, b.to.map_or(TO_EXIT, |n| n.0));
        out.push(batch_len(b.len())?);
        for &ipid in &b.ipids {
            put_u16(&mut out, ipid);
        }
    }

    put_varint(&mut out, log.flows.len() as u64);
    let mut prev_ts = 0u64;
    for f in &log.flows {
        put_varint(&mut out, f.ts.wrapping_sub(prev_ts));
        prev_ts = f.ts;
        put_u16(&mut out, f.ipid);
        put_tuple(&mut out, &f.flow);
    }
    Ok(out)
}

/// Decodes a log produced by [`encode_nf_log`].
pub fn decode_nf_log(buf: &[u8]) -> Result<NfLog, EncodeError> {
    let mut pos = 0usize;
    let version = *buf.get(pos).ok_or(EncodeError::Truncated)?;
    pos += 1;
    if version != VERSION {
        return Err(EncodeError::BadVersion(version));
    }
    let nf = NfId(get_u16(buf, &mut pos)?);

    let n_rx = get_varint(buf, &mut pos)? as usize;
    let mut rx = Vec::with_capacity(n_rx);
    let mut ts = 0u64;
    for _ in 0..n_rx {
        ts = ts.wrapping_add(get_varint(buf, &mut pos)?);
        let len = *buf.get(pos).ok_or(EncodeError::Truncated)? as usize;
        pos += 1;
        let mut ipids = Vec::with_capacity(len);
        for _ in 0..len {
            ipids.push(get_u16(buf, &mut pos)?);
        }
        rx.push(RxBatch { ts, ipids });
    }

    let n_tx = get_varint(buf, &mut pos)? as usize;
    let mut tx = Vec::with_capacity(n_tx);
    let mut ts = 0u64;
    for _ in 0..n_tx {
        ts = ts.wrapping_add(get_varint(buf, &mut pos)?);
        let to = match get_u16(buf, &mut pos)? {
            TO_EXIT => None,
            id => Some(NfId(id)),
        };
        let len = *buf.get(pos).ok_or(EncodeError::Truncated)? as usize;
        pos += 1;
        let mut ipids = Vec::with_capacity(len);
        for _ in 0..len {
            ipids.push(get_u16(buf, &mut pos)?);
        }
        tx.push(TxBatch { ts, to, ipids });
    }

    let n_fl = get_varint(buf, &mut pos)? as usize;
    let mut flows = Vec::with_capacity(n_fl);
    let mut ts = 0u64;
    for _ in 0..n_fl {
        ts = ts.wrapping_add(get_varint(buf, &mut pos)?);
        let ipid = get_u16(buf, &mut pos)?;
        let flow = get_tuple(buf, &mut pos)?;
        flows.push(FlowRecord { ipid, flow, ts });
    }

    Ok(NfLog { nf, rx, tx, flows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::MAX_BATCH;

    fn sample_log() -> NfLog {
        let flow = FiveTuple::new(0x64000001, 0x20000001, 2004, 6004, Proto::TCP);
        NfLog {
            nf: NfId(3),
            rx: vec![
                RxBatch {
                    ts: 1_000,
                    ipids: (0..MAX_BATCH as u16).collect(),
                },
                RxBatch {
                    ts: 2_500,
                    ipids: vec![40, 41],
                },
            ],
            tx: vec![
                TxBatch {
                    ts: 1_800,
                    to: Some(NfId(4)),
                    ipids: vec![0, 1, 2],
                },
                TxBatch {
                    ts: 2_900,
                    to: None,
                    ipids: vec![40],
                },
            ],
            flows: vec![FlowRecord {
                ipid: 40,
                flow,
                ts: 2_900,
            }],
        }
    }

    #[test]
    fn round_trip() {
        let log = sample_log();
        let bytes = encode_nf_log(&log).unwrap();
        let back = decode_nf_log(&bytes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn empty_log_round_trips() {
        let log = NfLog {
            nf: NfId(0),
            rx: vec![],
            tx: vec![],
            flows: vec![],
        };
        assert_eq!(decode_nf_log(&encode_nf_log(&log).unwrap()).unwrap(), log);
    }

    #[test]
    fn oversized_batch_rejected() {
        let log = NfLog {
            nf: NfId(0),
            rx: vec![RxBatch {
                ts: 1_000,
                ipids: (0..300u16).collect(),
            }],
            tx: vec![],
            flows: vec![],
        };
        assert_eq!(encode_nf_log(&log), Err(EncodeError::BatchTooLarge(300)));
    }

    #[test]
    fn interior_nf_is_near_two_bytes_per_packet() {
        // A realistic interior log: full batches, delta timestamps of a few
        // microseconds. Count rx+tx record bytes per packet *appearance*.
        let mut rx = Vec::new();
        let mut tx = Vec::new();
        let mut ts = 0u64;
        let mut ipid = 0u16;
        for _ in 0..1_000 {
            ts += 17_000; // ~17 µs per 32-batch at 1.9 Mpps
            let ipids: Vec<u16> = (0..MAX_BATCH as u16)
                .map(|i| ipid.wrapping_add(i))
                .collect();
            ipid = ipid.wrapping_add(MAX_BATCH as u16);
            rx.push(RxBatch {
                ts,
                ipids: ipids.clone(),
            });
            tx.push(TxBatch {
                ts: ts + 9_000,
                to: Some(NfId(1)),
                ipids,
            });
        }
        let log = NfLog {
            nf: NfId(0),
            rx,
            tx,
            flows: vec![],
        };
        let bytes = encode_nf_log(&log).unwrap().len();
        let appearances = 2 * 1_000 * MAX_BATCH; // each packet in one rx and one tx
        let per_packet = bytes as f64 / appearances as f64;
        assert!(
            per_packet < 2.5,
            "interior encoding is {per_packet:.2} B/packet-appearance"
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode_nf_log(&sample_log()).unwrap();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_nf_log(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_nf_log(&sample_log()).unwrap();
        bytes[0] = 99;
        assert_eq!(decode_nf_log(&bytes), Err(EncodeError::BadVersion(99)));
    }

    #[test]
    fn varint_boundaries() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn malformed_varint_rejected() {
        // 11 continuation bytes: shift overflows.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Err(EncodeError::BadVarint));
    }
}
