//! A lock-free single-producer / single-consumer ring buffer.
//!
//! Models the paper's shared-memory channel between the in-NF collector hook
//! (producer, on the packet-processing core) and the standalone dumper
//! process (consumer). The hot-path `push` is wait-free: one relaxed load,
//! one acquire load, one release store. When the ring is full the record is
//! dropped and counted — exactly the behaviour you want on a data plane
//! (never block the NF for telemetry).
//!
//! The core is generic over [`msc_model::prims::Prims`]: production code
//! uses the [`SpscRing`] alias (real `std::sync::atomic`, zero overhead),
//! while `tests/model_ring.rs` instantiates [`SpscRingCore`] with
//! `ModelPrims` and exhaustively model-checks the acquire/release handoff
//! (see DESIGN.md §7). Every memory-ordering choice below carries its
//! justification; `msc-lint` R6 enforces that for the `Relaxed` sites.

use msc_model::prims::{Atomic, Prims, RawCell, StdPrims};
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

/// The production ring: [`SpscRingCore`] over real `std::sync` primitives.
pub type SpscRing<T> = SpscRingCore<T, StdPrims>;

/// Fixed-capacity SPSC ring. `T` moves through the ring by value.
///
/// Safety contract: at most one thread calls [`push`](SpscRingCore::push)
/// and at most one (other) thread calls [`pop`](SpscRingCore::pop)
/// concurrently. The type is `Sync` so it can be shared via `Arc`.
pub struct SpscRingCore<T, P: Prims> {
    buf: Box<[P::Cell<MaybeUninit<T>>]>,
    /// Next slot to write (only advanced by the producer).
    head: P::AUsize,
    /// Next slot to read (only advanced by the consumer).
    tail: P::AUsize,
    /// Records dropped because the ring was full.
    dropped: P::AU64,
    capacity: usize,
}

// SAFETY: access to each slot is handed off between producer and consumer
// through the head/tail acquire/release protocol below; the model tests
// check exactly this handoff for races under `ModelPrims`.
unsafe impl<T: Send, P: Prims> Sync for SpscRingCore<T, P> {}
// SAFETY: the ring exclusively owns its slots; moving the whole ring to
// another thread moves the buffered `T` values with it, which `T: Send`
// permits (no thread-affine state is held).
unsafe impl<T: Send, P: Prims> Send for SpscRingCore<T, P> {}

impl<T, P: Prims> SpscRingCore<T, P> {
    /// Creates a ring that can hold `capacity` elements. Panics if
    /// `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let buf: Vec<P::Cell<MaybeUninit<T>>> = (0..capacity + 1)
            .map(|_| {
                <P::Cell<MaybeUninit<T>> as RawCell<MaybeUninit<T>>>::new(MaybeUninit::uninit())
            })
            .collect();
        Self {
            buf: buf.into_boxed_slice(),
            head: P::AUsize::new(0),
            tail: P::AUsize::new(0),
            dropped: P::AU64::new(0),
            capacity: capacity + 1,
        }
    }

    #[inline]
    fn next(&self, i: usize) -> usize {
        let n = i + 1;
        if n == self.capacity {
            0
        } else {
            n
        }
    }

    /// Producer side: enqueue `v`. Returns `Err(v)` (and bumps the drop
    /// counter) when the ring is full. Wait-free.
    pub fn push(&self, v: T) -> Result<(), T> {
        // ordering: head is written only by this thread (single producer),
        // so a relaxed load always observes its own latest value.
        let head = self.head.load(Ordering::Relaxed);
        let next = self.next(head);
        // The Acquire pairs with the consumer's Release store of tail:
        // observing the advanced tail proves the consumer has finished
        // reading the slot we are about to overwrite.
        if next == self.tail.load(Ordering::Acquire) {
            // ordering: pure event counter; no data is published through it
            // and only the eventual total is read.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(v);
        }
        self.buf[head].with_mut(|slot| {
            // SAFETY: slot `head` is owned by the producer until the
            // Release store below publishes it; the model race detector
            // verifies this handoff under `ModelPrims`.
            unsafe {
                (*slot).write(v);
            }
        });
        // The Release publishes the slot write above to the consumer's
        // Acquire load of head.
        self.head.store(next, Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeue one element if available. Wait-free.
    pub fn pop(&self) -> Option<T> {
        // ordering: tail is written only by this thread (single consumer),
        // so a relaxed load always observes its own latest value.
        let tail = self.tail.load(Ordering::Relaxed);
        // The Acquire pairs with the producer's Release store of head: it
        // makes the slot write visible before we read the slot.
        if tail == self.head.load(Ordering::Acquire) {
            return None;
        }
        let v = self.buf[tail].with(|slot| {
            // SAFETY: the producer's Release store of head made this slot's
            // initialization visible to the Acquire load above, and the
            // producer will not touch the slot again until tail advances.
            unsafe { (*slot).assume_init_read() }
        });
        // The Release hands the emptied slot back to the producer's
        // Acquire load of tail.
        self.tail.store(self.next(tail), Ordering::Release);
        Some(v)
    }

    /// Number of elements currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        // ordering: `len` is documented as approximate; both indexes are
        // single-writer and individually monotone (mod wrap), so stale
        // values only shift the estimate — no edge needs ordering here.
        let head = self.head.load(Ordering::Relaxed);
        // ordering: same as head above; approximate read of a
        // single-writer index.
        let tail = self.tail.load(Ordering::Relaxed);
        if head >= tail {
            head - tail
        } else {
            head + self.capacity - tail
        }
    }

    /// True when no elements are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many records were dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        // ordering: counter total only; reading it races with nothing it
        // is meant to order.
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<T, P: Prims> Drop for SpscRingCore<T, P> {
    fn drop(&mut self) {
        // Drain remaining initialised slots so `T`'s destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let r = SpscRing::new(8);
        for i in 0..5 {
            r.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = SpscRing::new(2);
        assert!(r.push(1).is_ok());
        assert!(r.push(2).is_ok());
        assert_eq!(r.push(3), Err(3));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(3).is_ok());
    }

    #[test]
    fn len_tracks_occupancy() {
        let r = SpscRing::new(4);
        assert!(r.is_empty());
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.len(), 2);
        r.pop().unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn wraps_around() {
        let r = SpscRing::new(3);
        for round in 0..10 {
            r.push(round * 2).unwrap();
            r.push(round * 2 + 1).unwrap();
            assert_eq!(r.pop(), Some(round * 2));
            assert_eq!(r.pop(), Some(round * 2 + 1));
        }
    }

    #[test]
    fn drops_run_destructors() {
        let token = Arc::new(());
        let r = SpscRing::new(4);
        r.push(token.clone()).unwrap();
        r.push(token.clone()).unwrap();
        assert_eq!(Arc::strong_count(&token), 3);
        drop(r);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn cross_thread_stream() {
        let r = Arc::new(SpscRing::new(64));
        let n = 20_000u64;
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                let mut i = 0u64;
                while i < n {
                    if r.push(i).is_ok() {
                        sent += 1;
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                sent
            })
        };
        let mut got = Vec::new();
        while got.len() < n as usize {
            if let Some(v) = r.pop() {
                got.push(v);
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(producer.join().unwrap(), n);
        // Strict FIFO: the stream must be exactly 0..n.
        assert!(got.iter().copied().eq(0..n));
    }
}

/// The standalone dumper of §5: a thread that drains an [`SpscRing`] into a
/// sink while the NF's hot path keeps pushing.
///
/// The paper's collector "writes the data to shared memory where it is
/// picked up by a standalone dumper for storing on the disk"; here the
/// shared memory is the ring and the sink is any `FnMut(T)` (tests collect
/// into a vector, a real deployment would write `bundle_io` chunks).
pub struct Dumper<T: Send + 'static> {
    ring: std::sync::Arc<SpscRing<T>>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl<T: Send + 'static> Dumper<T> {
    /// Spawns the dumper thread. `sink` is called once per drained record;
    /// it runs on the dumper thread, never on the producer's.
    pub fn spawn<F>(ring: std::sync::Arc<SpscRing<T>>, mut sink: F) -> Self
    where
        F: FnMut(T) + Send + 'static,
    {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handle = {
            let ring = std::sync::Arc::clone(&ring);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut drained = 0u64;
                loop {
                    match ring.pop() {
                        Some(v) => {
                            sink(v);
                            drained += 1;
                        }
                        None => {
                            // The Acquire pairs with the Release store in
                            // `finish`/`Drop`: seeing `stop` set guarantees
                            // every push that happened before the stop
                            // request is visible to the final drain below.
                            // Relaxed would let the drain miss records.
                            if stop.load(std::sync::atomic::Ordering::Acquire) {
                                // Final drain: the producer has stopped.
                                while let Some(v) = ring.pop() {
                                    sink(v);
                                    drained += 1;
                                }
                                return drained;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };
        Self {
            ring,
            stop,
            handle: Some(handle),
        }
    }

    /// The shared ring (for the producer side).
    pub fn ring(&self) -> &std::sync::Arc<SpscRing<T>> {
        &self.ring
    }

    /// Stops the dumper after a final drain and returns how many records it
    /// wrote.
    pub fn finish(mut self) -> u64 {
        // The Release orders all of the caller's prior pushes before the
        // flag flip; paired with the dumper's Acquire load above.
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        let Some(handle) = self.handle.take() else {
            // `finish` consumes self, and `Drop` only runs afterwards, so
            // the handle is always still present here.
            unreachable!("dumper handle already taken");
        };
        match handle.join() {
            Ok(drained) => drained,
            // Propagate a dumper-thread panic (e.g. a panicking sink) into
            // the caller instead of inventing a count.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<T: Send + 'static> Drop for Dumper<T> {
    fn drop(&mut self) {
        // Same pairing as in `finish`; see the comment there.
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod dumper_tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn dumper_drains_everything_in_order() {
        let ring = Arc::new(SpscRing::new(128));
        let sink: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink2 = Arc::clone(&sink);
        let dumper = Dumper::spawn(Arc::clone(&ring), move |v| sink2.lock().push(v));
        let n = 20_000u64;
        let mut i = 0;
        while i < n {
            if ring.push(i).is_ok() {
                i += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        let drained = dumper.finish();
        assert_eq!(drained, n);
        let got = sink.lock();
        assert!(got.iter().copied().eq(0..n), "order preserved");
    }

    #[test]
    fn drop_without_finish_still_joins() {
        let ring: Arc<SpscRing<u32>> = Arc::new(SpscRing::new(8));
        let dumper = Dumper::spawn(Arc::clone(&ring), |_| {});
        ring.push(1).unwrap();
        drop(dumper); // must not hang or leak the thread
    }

    #[test]
    fn final_drain_catches_records_pushed_before_stop() {
        let ring = Arc::new(SpscRing::new(1024));
        let sink: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let sink2 = Arc::clone(&sink);
        let dumper = Dumper::spawn(Arc::clone(&ring), move |v| sink2.lock().push(v));
        for i in 0..100u32 {
            ring.push(i).unwrap();
        }
        assert_eq!(dumper.finish(), 100);
        assert_eq!(sink.lock().len(), 100);
    }
}
