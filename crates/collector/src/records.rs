//! Record formats — the runtime data of Table 1 of the paper.

use nf_types::{FiveTuple, Ipid, Nanos, NfId};
use serde::{Deserialize, Serialize};

/// The DPDK maximum receive batch size. A received batch smaller than this
/// means the input queue was drained empty — the signal the offline analysis
/// uses to segment queuing periods (§5).
pub const MAX_BATCH: usize = 32;

/// What the collector knows about one packet on the hot path.
///
/// The full five-tuple is available in the packet header but is *recorded*
/// only where [`crate::Collector`] is configured to keep flow info (exit NFs
/// and the source); everywhere else only the IPID is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketMeta {
    /// IP identification field.
    pub ipid: Ipid,
    /// Exact flow key (recorded only at flow-info points).
    pub flow: FiveTuple,
}

/// Identifies one queue endpoint: either an NF's input queue or the wire
/// from an NF towards one downstream NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueRef {
    /// The single input queue of an NF.
    Input(NfId),
    /// The output towards a specific downstream NF.
    Output { from: NfId, to: NfId },
}

/// One batch read from an input queue: "timestamps when an NF reads a batch
/// of packets" plus "the batch size" (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RxBatch {
    /// Time the NF read the batch.
    pub ts: Nanos,
    /// IPIDs of the packets in the batch, in queue order.
    pub ipids: Vec<Ipid>,
}

impl RxBatch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.ipids.len()
    }

    /// True for a zero-size poll (we do not record those, but decoding can
    /// produce them defensively).
    pub fn is_empty(&self) -> bool {
        self.ipids.is_empty()
    }

    /// Did this read drain the queue? (§5: batch < max ⇒ queue cleared.)
    pub fn drained_queue(&self) -> bool {
        self.ipids.len() < MAX_BATCH
    }
}

/// One batch written towards a downstream NF.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxBatch {
    /// Time the NF wrote the batch.
    pub ts: Nanos,
    /// The downstream NF the batch was sent to, or `None` when the packets
    /// leave the NF graph (exit NF output).
    pub to: Option<NfId>,
    /// IPIDs of the packets in the batch, in wire order.
    pub ipids: Vec<Ipid>,
}

impl TxBatch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.ipids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ipids.is_empty()
    }
}

/// Five-tuple record kept at flow-info points (exit NFs / source), in
/// emission order so it can be zipped with the IPID stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// IPID of the packet.
    pub ipid: Ipid,
    /// Its exact flow key.
    pub flow: FiveTuple,
    /// When it was seen at the flow-info point.
    pub ts: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_batch_drained_signal() {
        let full = RxBatch {
            ts: 0,
            ipids: vec![0; MAX_BATCH],
        };
        let partial = RxBatch {
            ts: 0,
            ipids: vec![0; MAX_BATCH - 1],
        };
        assert!(!full.drained_queue());
        assert!(partial.drained_queue());
    }

    #[test]
    fn batch_lengths() {
        let b = TxBatch {
            ts: 1,
            to: Some(NfId(2)),
            ipids: vec![1, 2, 3],
        };
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
