//! On-disk format for collector bundles — what the dumper writes and the
//! offline tools read.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  "MSCB"            4 bytes
//! version u8               currently 1
//! n_logs  u32              number of NF logs
//! n_logs × { len u32, encoded NF log (see `encode`) }
//! n_src   u32              number of source flow records
//! n_src × { ts varint-delta u64? — no: fixed 8 bytes ts, ipid u16, tuple 13 }
//! ```
//!
//! The per-NF logs reuse the compact wire encoding of [`crate::encode`];
//! the source section keeps fixed-width records (it is a small fraction of
//! the data and this keeps seeking trivial).
//!
//! ## Chunked bundles (`"MSCS"`)
//!
//! The streaming pipeline never wants the whole run in memory, so a second
//! container splits the same data into time-windowed chunks:
//!
//! ```text
//! magic  "MSCS"            4 bytes
//! version u8               currently 1
//! repeated until EOF:
//!   until  u64             exclusive upper time bound of the chunk
//!   bundle body            same framing as "MSCB" minus magic/version
//! ```
//!
//! Every record with timestamp `< until` (and `>=` the previous chunk's
//! `until`) lives in the chunk; per-NF batch order is preserved, so the
//! concatenation of all chunks reproduces the original bundle record for
//! record ([`chunk_bundle`] + [`concat_chunks`] round-trip, tested below).
//! [`BundleChunkReader`] iterates a chunked file holding one chunk in
//! memory at a time.

use crate::collector::{NfLog, TraceBundle};
use crate::encode::{decode_nf_log, encode_nf_log, EncodeError};
use crate::records::FlowRecord;
use nf_types::{FiveTuple, Nanos, Proto};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MSCB";
const CHUNKED_MAGIC: &[u8; 4] = b"MSCS";
const VERSION: u8 = 1;

/// Errors from bundle (de)serialisation.
#[derive(Debug)]
pub enum BundleIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the bundle magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// An embedded NF log failed to encode or decode.
    Log(EncodeError),
    /// The file ended prematurely.
    Truncated,
    /// A section has more entries (or bytes) than its u32 length field can
    /// describe; `what` names the section.
    SectionTooLarge { what: &'static str, len: usize },
}

impl fmt::Display for BundleIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleIoError::Io(e) => write!(f, "i/o error: {e}"),
            BundleIoError::BadMagic => write!(f, "not a Microscope bundle (bad magic)"),
            BundleIoError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleIoError::Log(e) => write!(f, "corrupt NF log: {e}"),
            BundleIoError::Truncated => write!(f, "truncated bundle"),
            BundleIoError::SectionTooLarge { what, len } => {
                write!(
                    f,
                    "{what} section ({len} entries/bytes) overflows its u32 length field"
                )
            }
        }
    }
}

impl std::error::Error for BundleIoError {}

impl From<io::Error> for BundleIoError {
    fn from(e: io::Error) -> Self {
        BundleIoError::Io(e)
    }
}

/// Serialises a bundle to any writer.
pub fn write_bundle<W: Write>(mut w: W, bundle: &TraceBundle) -> Result<(), BundleIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_bundle_body(&mut w, bundle)
}

/// The shared body of both containers: NF log section + source section.
fn write_bundle_body<W: Write>(w: &mut W, bundle: &TraceBundle) -> Result<(), BundleIoError> {
    let sec_len = |what: &'static str, len: usize| {
        u32::try_from(len).map_err(|_| BundleIoError::SectionTooLarge { what, len })
    };
    w.write_all(&sec_len("NF logs", bundle.logs.len())?.to_le_bytes())?;
    for log in &bundle.logs {
        let enc = encode_nf_log(log).map_err(BundleIoError::Log)?;
        w.write_all(&sec_len("NF log bytes", enc.len())?.to_le_bytes())?;
        w.write_all(&enc)?;
    }
    w.write_all(&sec_len("source flows", bundle.source_flows.len())?.to_le_bytes())?;
    for f in &bundle.source_flows {
        w.write_all(&f.ts.to_le_bytes())?;
        w.write_all(&f.ipid.to_le_bytes())?;
        w.write_all(&f.flow.src_ip.to_le_bytes())?;
        w.write_all(&f.flow.dst_ip.to_le_bytes())?;
        w.write_all(&f.flow.src_port.to_le_bytes())?;
        w.write_all(&f.flow.dst_port.to_le_bytes())?;
        w.write_all(&[f.flow.proto.0])?;
    }
    Ok(())
}

/// Deserialises a bundle from any reader.
pub fn read_bundle<R: Read>(mut r: R) -> Result<TraceBundle, BundleIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(eof)?;
    if &magic != MAGIC {
        return Err(BundleIoError::BadMagic);
    }
    let mut v = [0u8; 1];
    r.read_exact(&mut v).map_err(eof)?;
    if v[0] != VERSION {
        return Err(BundleIoError::BadVersion(v[0]));
    }
    read_bundle_body(&mut r)
}

/// The shared body of both containers: NF log section + source section.
fn read_bundle_body<R: Read>(mut r: R) -> Result<TraceBundle, BundleIoError> {
    let n_logs = read_u32(&mut r)? as usize;
    let mut logs = Vec::with_capacity(n_logs.min(4096));
    for _ in 0..n_logs {
        let len = read_u32(&mut r)? as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf).map_err(eof)?;
        logs.push(decode_nf_log(&buf).map_err(BundleIoError::Log)?);
    }
    let n_src = read_u32(&mut r)? as usize;
    let mut source_flows = Vec::with_capacity(n_src.min(1 << 20));
    for _ in 0..n_src {
        let ts = read_u64(&mut r)?;
        let ipid = read_u16(&mut r)?;
        let src_ip = read_u32(&mut r)?;
        let dst_ip = read_u32(&mut r)?;
        let src_port = read_u16(&mut r)?;
        let dst_port = read_u16(&mut r)?;
        let mut p = [0u8; 1];
        r.read_exact(&mut p).map_err(eof)?;
        source_flows.push(FlowRecord {
            ts,
            ipid,
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, Proto(p[0])),
        });
    }
    Ok(TraceBundle { logs, source_flows })
}

/// Writes a bundle to a file path.
pub fn save_bundle(path: &Path, bundle: &TraceBundle) -> Result<(), BundleIoError> {
    let f = std::fs::File::create(path)?;
    write_bundle(io::BufWriter::new(f), bundle)
}

/// Reads a bundle from a file path.
pub fn load_bundle(path: &Path) -> Result<TraceBundle, BundleIoError> {
    let f = std::fs::File::open(path)?;
    read_bundle(io::BufReader::new(f))
}

/// The container a file starts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleFormat {
    /// Whole-run `"MSCB"` bundle.
    Whole,
    /// Time-chunked `"MSCS"` stream.
    Chunked,
}

/// Reads the magic of a bundle file without loading it.
pub fn peek_format(path: &Path) -> Result<BundleFormat, BundleIoError> {
    let mut f = std::fs::File::open(path)?;
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic).map_err(eof)?;
    match &magic {
        m if m == MAGIC => Ok(BundleFormat::Whole),
        m if m == CHUNKED_MAGIC => Ok(BundleFormat::Chunked),
        _ => Err(BundleIoError::BadMagic),
    }
}

/// One time window of a chunked bundle: every record with
/// `previous until <= ts < until`, per-NF batch order preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleChunk {
    /// Exclusive upper time bound of the records in this chunk.
    pub until: Nanos,
    /// The records of the window, in the same per-log layout as a full
    /// bundle (one log per NF even when empty, so `NfId` indexing holds).
    pub bundle: TraceBundle,
}

/// Splits a whole-run bundle into fixed-duration chunks.
///
/// Batches are assigned by their batch timestamp and source/flow records by
/// their record timestamp; relative order within every log is preserved, so
/// [`concat_chunks`] reproduces the input exactly. A `chunk_ns` of zero is
/// treated as one chunk covering the whole run.
pub fn chunk_bundle(bundle: &TraceBundle, chunk_ns: Nanos) -> Vec<BundleChunk> {
    let chunk_ns = chunk_ns.max(1);
    let max_ts = bundle
        .logs
        .iter()
        .flat_map(|l| {
            l.rx.iter()
                .map(|b| b.ts)
                .chain(l.tx.iter().map(|b| b.ts))
                .chain(l.flows.iter().map(|f| f.ts))
        })
        .chain(bundle.source_flows.iter().map(|f| f.ts))
        .max();
    let n_chunks = match max_ts {
        // Empty run: one empty chunk keeps downstream loops uniform.
        None => 1,
        // lint: time-arith-ok(chunk count, not a timestamp; t/chunk_ns is far from u64::MAX)
        Some(t) => (t / chunk_ns + 1) as usize,
    };
    let empty_logs = || -> Vec<NfLog> {
        bundle
            .logs
            .iter()
            .map(|l| NfLog {
                nf: l.nf,
                rx: Vec::new(),
                tx: Vec::new(),
                flows: Vec::new(),
            })
            .collect()
    };
    let mut chunks: Vec<BundleChunk> = (1..=n_chunks as u64)
        .map(|i| BundleChunk {
            until: i * chunk_ns,
            bundle: TraceBundle {
                logs: empty_logs(),
                source_flows: Vec::new(),
            },
        })
        .collect();
    let slot = |ts: Nanos| ((ts / chunk_ns) as usize).min(n_chunks - 1);
    for (i, log) in bundle.logs.iter().enumerate() {
        for b in &log.rx {
            chunks[slot(b.ts)].bundle.logs[i].rx.push(b.clone());
        }
        for b in &log.tx {
            chunks[slot(b.ts)].bundle.logs[i].tx.push(b.clone());
        }
        for f in &log.flows {
            chunks[slot(f.ts)].bundle.logs[i].flows.push(*f);
        }
    }
    for f in &bundle.source_flows {
        chunks[slot(f.ts)].bundle.source_flows.push(*f);
    }
    chunks
}

/// Re-joins chunks into a whole-run bundle (the inverse of
/// [`chunk_bundle`] for chunks in time order).
pub fn concat_chunks(chunks: &[BundleChunk]) -> TraceBundle {
    let Some(first) = chunks.first() else {
        return TraceBundle {
            logs: Vec::new(),
            source_flows: Vec::new(),
        };
    };
    let mut out = first.bundle.clone();
    for c in &chunks[1..] {
        for (log, part) in out.logs.iter_mut().zip(&c.bundle.logs) {
            log.rx.extend(part.rx.iter().cloned());
            log.tx.extend(part.tx.iter().cloned());
            log.flows.extend(part.flows.iter().copied());
        }
        out.source_flows
            .extend(c.bundle.source_flows.iter().copied());
    }
    out
}

/// Serialises a chunk sequence to any writer in the `"MSCS"` container.
pub fn write_bundle_chunked<W: Write>(
    mut w: W,
    chunks: &[BundleChunk],
) -> Result<(), BundleIoError> {
    w.write_all(CHUNKED_MAGIC)?;
    w.write_all(&[VERSION])?;
    for c in chunks {
        w.write_all(&c.until.to_le_bytes())?;
        write_bundle_body(&mut w, &c.bundle)?;
    }
    Ok(())
}

/// Writes a chunked bundle to a file path.
pub fn save_bundle_chunked(path: &Path, chunks: &[BundleChunk]) -> Result<(), BundleIoError> {
    let f = std::fs::File::create(path)?;
    write_bundle_chunked(io::BufWriter::new(f), chunks)
}

/// Streaming reader over a `"MSCS"` file: one chunk in memory at a time.
#[derive(Debug)]
pub struct BundleChunkReader<R: Read> {
    r: R,
    failed: bool,
}

impl BundleChunkReader<io::BufReader<std::fs::File>> {
    /// Opens a chunked bundle file.
    pub fn open(path: &Path) -> Result<Self, BundleIoError> {
        let f = std::fs::File::open(path)?;
        Self::new(io::BufReader::new(f))
    }
}

impl<R: Read> BundleChunkReader<R> {
    /// Wraps any reader positioned at the start of a chunked bundle.
    pub fn new(mut r: R) -> Result<Self, BundleIoError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(eof)?;
        if &magic != CHUNKED_MAGIC {
            return Err(BundleIoError::BadMagic);
        }
        let mut v = [0u8; 1];
        r.read_exact(&mut v).map_err(eof)?;
        if v[0] != VERSION {
            return Err(BundleIoError::BadVersion(v[0]));
        }
        Ok(Self { r, failed: false })
    }

    /// Reads the next chunk; `Ok(None)` at a clean end of file.
    pub fn next_chunk(&mut self) -> Result<Option<BundleChunk>, BundleIoError> {
        if self.failed {
            return Ok(None);
        }
        // A clean EOF is only legal exactly at a chunk boundary: read the
        // `until` field byte-wise so zero-bytes-read means "done" while a
        // partial header still reports truncation.
        let mut until = [0u8; 8];
        let mut got = 0usize;
        while got < 8 {
            let n = self.r.read(&mut until[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                self.failed = true;
                return Err(BundleIoError::Truncated);
            }
            got += n;
        }
        match read_bundle_body(&mut self.r) {
            Ok(bundle) => Ok(Some(BundleChunk {
                until: u64::from_le_bytes(until),
                bundle,
            })),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }
}

impl<R: Read> Iterator for BundleChunkReader<R> {
    type Item = Result<BundleChunk, BundleIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk().transpose()
    }
}

fn eof(e: io::Error) -> BundleIoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        BundleIoError::Truncated
    } else {
        BundleIoError::Io(e)
    }
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, BundleIoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, BundleIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, BundleIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, CollectorConfig};
    use crate::records::PacketMeta;
    use nf_types::{NfId, NfKind, Topology};

    fn sample_bundle() -> TraceBundle {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        let topo = b.build().unwrap();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        for i in 0..50u16 {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
            };
            let t = i as u64 * 1_000;
            c.record_source(t, &m);
            c.record_rx(NfId(0), t + 100, &[m]);
            c.record_tx(NfId(0), t + 600, Some(NfId(1)), &[m]);
            c.record_rx(NfId(1), t + 700, &[m]);
            c.record_tx(NfId(1), t + 1_500, None, &[m]);
        }
        c.into_bundle()
    }

    #[test]
    fn round_trip_in_memory() {
        let bundle = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &bundle).unwrap();
        let back = read_bundle(&buf[..]).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn round_trip_on_disk() {
        let bundle = sample_bundle();
        let dir = std::env::temp_dir().join("msc_bundle_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("run.msc");
        save_bundle(&p, &bundle).unwrap();
        let back = load_bundle(&p).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn chunk_concat_reproduces_original() {
        let bundle = sample_bundle();
        for chunk_ns in [1u64, 500, 5_000, 100_000] {
            let chunks = chunk_bundle(&bundle, chunk_ns);
            assert!(!chunks.is_empty());
            // Chunks respect their time bounds and tile the run.
            let mut prev = 0u64;
            for c in &chunks {
                assert!(c.until > prev, "until must be increasing");
                for log in &c.bundle.logs {
                    for b in &log.rx {
                        assert!(b.ts >= prev && b.ts < c.until);
                    }
                    for b in &log.tx {
                        assert!(b.ts >= prev && b.ts < c.until);
                    }
                }
                for f in &c.bundle.source_flows {
                    assert!(f.ts >= prev && f.ts < c.until);
                }
                prev = c.until;
            }
            assert_eq!(concat_chunks(&chunks), bundle, "chunk_ns={chunk_ns}");
        }
    }

    #[test]
    fn empty_bundle_chunks_to_one_empty_chunk() {
        let bundle = TraceBundle {
            logs: sample_bundle()
                .logs
                .iter()
                .map(|l| NfLog {
                    nf: l.nf,
                    rx: Vec::new(),
                    tx: Vec::new(),
                    flows: Vec::new(),
                })
                .collect(),
            source_flows: Vec::new(),
        };
        let chunks = chunk_bundle(&bundle, 1_000);
        assert_eq!(chunks.len(), 1);
        assert_eq!(concat_chunks(&chunks), bundle);
    }

    #[test]
    fn chunked_round_trip_on_disk() {
        let bundle = sample_bundle();
        let chunks = chunk_bundle(&bundle, 7_000);
        let dir = std::env::temp_dir().join("msc_bundle_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("run.mscs");
        save_bundle_chunked(&p, &chunks).unwrap();
        assert_eq!(peek_format(&p).unwrap(), BundleFormat::Chunked);
        let back: Vec<BundleChunk> = BundleChunkReader::open(&p)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, chunks);
        // The whole-run file still reports Whole.
        let pw = dir.join("run.msc");
        save_bundle(&pw, &bundle).unwrap();
        assert_eq!(peek_format(&pw).unwrap(), BundleFormat::Whole);
    }

    #[test]
    fn chunked_reader_detects_truncation() {
        let chunks = chunk_bundle(&sample_bundle(), 7_000);
        let mut buf = Vec::new();
        write_bundle_chunked(&mut buf, &chunks).unwrap();
        // Whole-bundle magic is rejected.
        assert!(matches!(
            BundleChunkReader::new(&b"MSCB\x01"[..]),
            Err(BundleIoError::BadMagic)
        ));
        // Cutting mid-chunk surfaces Truncated from the iterator.
        let cut = buf.len() - 3;
        let r = BundleChunkReader::new(&buf[..cut]).unwrap();
        assert!(
            r.into_iter().any(|item| item.is_err()),
            "truncation must not pass silently"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_bundle(&b"NOPE"[..]),
            Err(BundleIoError::BadMagic) | Err(BundleIoError::Truncated)
        ));
        let mut buf = Vec::new();
        write_bundle(&mut buf, &sample_bundle()).unwrap();
        buf[4] = 99; // version
        assert!(matches!(
            read_bundle(&buf[..]),
            Err(BundleIoError::BadVersion(99))
        ));
        // Truncation at every section boundary is detected.
        for cut in [3usize, 6, 12, buf.len() / 2, buf.len() - 1] {
            assert!(read_bundle(&buf[..cut]).is_err(), "cut {cut}");
        }
    }
}
