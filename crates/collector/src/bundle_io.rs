//! On-disk format for collector bundles — what the dumper writes and the
//! offline tools read.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  "MSCB"            4 bytes
//! version u8               currently 1
//! n_logs  u32              number of NF logs
//! n_logs × { len u32, encoded NF log (see `encode`) }
//! n_src   u32              number of source flow records
//! n_src × { ts varint-delta u64? — no: fixed 8 bytes ts, ipid u16, tuple 13 }
//! ```
//!
//! The per-NF logs reuse the compact wire encoding of [`crate::encode`];
//! the source section keeps fixed-width records (it is a small fraction of
//! the data and this keeps seeking trivial).

use crate::collector::TraceBundle;
use crate::encode::{decode_nf_log, encode_nf_log, EncodeError};
use crate::records::FlowRecord;
use nf_types::{FiveTuple, Proto};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MSCB";
const VERSION: u8 = 1;

/// Errors from bundle (de)serialisation.
#[derive(Debug)]
pub enum BundleIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the bundle magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// An embedded NF log failed to encode or decode.
    Log(EncodeError),
    /// The file ended prematurely.
    Truncated,
    /// A section has more entries (or bytes) than its u32 length field can
    /// describe; `what` names the section.
    SectionTooLarge { what: &'static str, len: usize },
}

impl fmt::Display for BundleIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleIoError::Io(e) => write!(f, "i/o error: {e}"),
            BundleIoError::BadMagic => write!(f, "not a Microscope bundle (bad magic)"),
            BundleIoError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleIoError::Log(e) => write!(f, "corrupt NF log: {e}"),
            BundleIoError::Truncated => write!(f, "truncated bundle"),
            BundleIoError::SectionTooLarge { what, len } => {
                write!(
                    f,
                    "{what} section ({len} entries/bytes) overflows its u32 length field"
                )
            }
        }
    }
}

impl std::error::Error for BundleIoError {}

impl From<io::Error> for BundleIoError {
    fn from(e: io::Error) -> Self {
        BundleIoError::Io(e)
    }
}

/// Serialises a bundle to any writer.
pub fn write_bundle<W: Write>(mut w: W, bundle: &TraceBundle) -> Result<(), BundleIoError> {
    let sec_len = |what: &'static str, len: usize| {
        u32::try_from(len).map_err(|_| BundleIoError::SectionTooLarge { what, len })
    };
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&sec_len("NF logs", bundle.logs.len())?.to_le_bytes())?;
    for log in &bundle.logs {
        let enc = encode_nf_log(log).map_err(BundleIoError::Log)?;
        w.write_all(&sec_len("NF log bytes", enc.len())?.to_le_bytes())?;
        w.write_all(&enc)?;
    }
    w.write_all(&sec_len("source flows", bundle.source_flows.len())?.to_le_bytes())?;
    for f in &bundle.source_flows {
        w.write_all(&f.ts.to_le_bytes())?;
        w.write_all(&f.ipid.to_le_bytes())?;
        w.write_all(&f.flow.src_ip.to_le_bytes())?;
        w.write_all(&f.flow.dst_ip.to_le_bytes())?;
        w.write_all(&f.flow.src_port.to_le_bytes())?;
        w.write_all(&f.flow.dst_port.to_le_bytes())?;
        w.write_all(&[f.flow.proto.0])?;
    }
    Ok(())
}

/// Deserialises a bundle from any reader.
pub fn read_bundle<R: Read>(mut r: R) -> Result<TraceBundle, BundleIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(eof)?;
    if &magic != MAGIC {
        return Err(BundleIoError::BadMagic);
    }
    let mut v = [0u8; 1];
    r.read_exact(&mut v).map_err(eof)?;
    if v[0] != VERSION {
        return Err(BundleIoError::BadVersion(v[0]));
    }
    let n_logs = read_u32(&mut r)? as usize;
    let mut logs = Vec::with_capacity(n_logs.min(4096));
    for _ in 0..n_logs {
        let len = read_u32(&mut r)? as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf).map_err(eof)?;
        logs.push(decode_nf_log(&buf).map_err(BundleIoError::Log)?);
    }
    let n_src = read_u32(&mut r)? as usize;
    let mut source_flows = Vec::with_capacity(n_src.min(1 << 20));
    for _ in 0..n_src {
        let ts = read_u64(&mut r)?;
        let ipid = read_u16(&mut r)?;
        let src_ip = read_u32(&mut r)?;
        let dst_ip = read_u32(&mut r)?;
        let src_port = read_u16(&mut r)?;
        let dst_port = read_u16(&mut r)?;
        let mut p = [0u8; 1];
        r.read_exact(&mut p).map_err(eof)?;
        source_flows.push(FlowRecord {
            ts,
            ipid,
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, Proto(p[0])),
        });
    }
    Ok(TraceBundle { logs, source_flows })
}

/// Writes a bundle to a file path.
pub fn save_bundle(path: &Path, bundle: &TraceBundle) -> Result<(), BundleIoError> {
    let f = std::fs::File::create(path)?;
    write_bundle(io::BufWriter::new(f), bundle)
}

/// Reads a bundle from a file path.
pub fn load_bundle(path: &Path) -> Result<TraceBundle, BundleIoError> {
    let f = std::fs::File::open(path)?;
    read_bundle(io::BufReader::new(f))
}

fn eof(e: io::Error) -> BundleIoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        BundleIoError::Truncated
    } else {
        BundleIoError::Io(e)
    }
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, BundleIoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, BundleIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, BundleIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(eof)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, CollectorConfig};
    use crate::records::PacketMeta;
    use nf_types::{NfId, NfKind, Topology};

    fn sample_bundle() -> TraceBundle {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        let topo = b.build().unwrap();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        for i in 0..50u16 {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
            };
            let t = i as u64 * 1_000;
            c.record_source(t, &m);
            c.record_rx(NfId(0), t + 100, &[m]);
            c.record_tx(NfId(0), t + 600, Some(NfId(1)), &[m]);
            c.record_rx(NfId(1), t + 700, &[m]);
            c.record_tx(NfId(1), t + 1_500, None, &[m]);
        }
        c.into_bundle()
    }

    #[test]
    fn round_trip_in_memory() {
        let bundle = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &bundle).unwrap();
        let back = read_bundle(&buf[..]).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn round_trip_on_disk() {
        let bundle = sample_bundle();
        let dir = std::env::temp_dir().join("msc_bundle_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("run.msc");
        save_bundle(&p, &bundle).unwrap();
        let back = load_bundle(&p).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_bundle(&b"NOPE"[..]),
            Err(BundleIoError::BadMagic) | Err(BundleIoError::Truncated)
        ));
        let mut buf = Vec::new();
        write_bundle(&mut buf, &sample_bundle()).unwrap();
        buf[4] = 99; // version
        assert!(matches!(
            read_bundle(&buf[..]),
            Err(BundleIoError::BadVersion(99))
        ));
        // Truncation at every section boundary is detected.
        for cut in [3usize, 6, 12, buf.len() / 2, buf.len() - 1] {
            assert!(read_bundle(&buf[..cut]).is_err(), "cut {cut}");
        }
    }
}
