//! The collector facade the simulator instruments its rx/tx paths with.

use crate::encode::encode_nf_log;
use crate::records::{FlowRecord, PacketMeta, RxBatch, TxBatch};
use nf_types::{Nanos, NfId, Topology};
use serde::{Deserialize, Serialize};

/// Everything recorded at one NF during a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfLog {
    /// The NF these records belong to.
    pub nf: NfId,
    /// Input-queue read batches, in time order.
    pub rx: Vec<RxBatch>,
    /// Output write batches, in time order.
    pub tx: Vec<TxBatch>,
    /// Five-tuple records (non-empty only at flow-info points).
    pub flows: Vec<FlowRecord>,
}

impl NfLog {
    fn new(nf: NfId) -> Self {
        Self {
            nf,
            rx: Vec::new(),
            tx: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Total packet appearances recorded (rx + tx).
    pub fn packet_appearances(&self) -> usize {
        self.rx.iter().map(|b| b.len()).sum::<usize>()
            + self.tx.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Master switch; when off, `record_*` is a no-op and the overhead is 0.
    pub enabled: bool,
    /// Hot-path cost charged per recorded packet, in nanoseconds. The
    /// simulator adds this to NF service time, which is what makes the §6.2
    /// overhead experiment (0.88%–2.33% of peak throughput) reproducible.
    pub per_packet_cost_ns: f64,
    /// Record five-tuples at exit NFs (the paper's "end of the NF graph").
    pub flow_info_at_exits: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            per_packet_cost_ns: 8.0,
            flow_info_at_exits: true,
        }
    }
}

/// Runtime data collector for a whole NF deployment.
///
/// One instance serves every NF in the topology (the simulator is
/// single-threaded; in the paper each NF has its own hook and ring — see
/// [`crate::ring`] for that component).
#[derive(Debug)]
pub struct Collector {
    cfg: CollectorConfig,
    logs: Vec<NfLog>,
    source_flows: Vec<FlowRecord>,
    exit_nfs: Vec<bool>,
}

impl Collector {
    /// Creates a collector for `topology`.
    pub fn new(topology: &Topology, cfg: CollectorConfig) -> Self {
        let logs = topology.nfs().iter().map(|n| NfLog::new(n.id)).collect();
        let mut exit_nfs = vec![false; topology.len()];
        for &e in topology.exits() {
            exit_nfs[e.0 as usize] = true;
        }
        Self {
            cfg,
            logs,
            source_flows: Vec::new(),
            exit_nfs,
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Service-time surcharge for a batch of `n` packets, in nanoseconds.
    pub fn batch_overhead_ns(&self, n: usize) -> Nanos {
        if self.cfg.enabled {
            (self.cfg.per_packet_cost_ns * n as f64).round() as Nanos
        } else {
            0
        }
    }

    /// Per-packet overhead in nanoseconds (0 when disabled).
    pub fn per_packet_overhead_ns(&self) -> f64 {
        if self.cfg.enabled {
            self.cfg.per_packet_cost_ns
        } else {
            0.0
        }
    }

    /// Hook: the source emitted `meta` at `ts`. The source always keeps flow
    /// info (the operator knows the traffic they offered — MoonGen's replay
    /// log in the paper's setup).
    pub fn record_source(&mut self, ts: Nanos, meta: &PacketMeta) {
        if !self.cfg.enabled {
            return;
        }
        self.source_flows.push(FlowRecord {
            ipid: meta.ipid,
            flow: meta.flow,
            ts,
        });
    }

    /// Hook: NF `nf` read a batch from its input queue at `ts`.
    pub fn record_rx(&mut self, nf: NfId, ts: Nanos, batch: &[PacketMeta]) {
        if !self.cfg.enabled || batch.is_empty() {
            return;
        }
        self.logs[nf.0 as usize].rx.push(RxBatch {
            ts,
            ipids: batch.iter().map(|m| m.ipid).collect(),
        });
    }

    /// Hook: NF `nf` wrote a batch towards `to` at `ts` (`None` = leaves the
    /// graph). At exit NFs this also records five-tuples.
    pub fn record_tx(&mut self, nf: NfId, ts: Nanos, to: Option<NfId>, batch: &[PacketMeta]) {
        if !self.cfg.enabled || batch.is_empty() {
            return;
        }
        let log = &mut self.logs[nf.0 as usize];
        log.tx.push(TxBatch {
            ts,
            to,
            ipids: batch.iter().map(|m| m.ipid).collect(),
        });
        if self.cfg.flow_info_at_exits && self.exit_nfs[nf.0 as usize] && to.is_none() {
            for m in batch {
                log.flows.push(FlowRecord {
                    ipid: m.ipid,
                    flow: m.flow,
                    ts,
                });
            }
        }
    }

    /// Finishes the run and hands the recorded data to the offline pipeline.
    pub fn into_bundle(self) -> TraceBundle {
        TraceBundle {
            logs: self.logs,
            source_flows: self.source_flows,
        }
    }
}

/// The output of a run: everything the offline reconstruction gets to see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// One log per NF, indexed by `NfId`.
    pub logs: Vec<NfLog>,
    /// Five-tuple records of everything the source offered, in time order.
    pub source_flows: Vec<FlowRecord>,
}

impl TraceBundle {
    /// The log of one NF.
    pub fn log(&self, nf: NfId) -> &NfLog {
        &self.logs[nf.0 as usize]
    }

    /// Encoded size of the whole bundle in bytes (what the dumper would
    /// write to disk; the paper reports ~12.5 MB for a 5 s run).
    pub fn encoded_size(&self) -> usize {
        self.logs
            .iter()
            .map(|l| encode_nf_log(l).map_or(0, |enc| enc.len()))
            .sum::<usize>()
            + self.source_flows.len() * 17
    }

    /// Total packet appearances across all NF logs.
    pub fn packet_appearances(&self) -> usize {
        self.logs.iter().map(|l| l.packet_appearances()).sum()
    }

    /// Mean encoded bytes per packet appearance — the paper's
    /// "~two bytes per packet" claim, checked in tests.
    pub fn bytes_per_packet(&self) -> f64 {
        let apps = self.packet_appearances();
        if apps == 0 {
            0.0
        } else {
            self.logs
                .iter()
                .map(|l| encode_nf_log(l).map_or(0, |enc| enc.len()))
                .sum::<usize>() as f64
                / apps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{FiveTuple, NfKind, Proto};

    fn topo() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        b.build().unwrap()
    }

    fn meta(ipid: u16) -> PacketMeta {
        PacketMeta {
            ipid,
            flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
        }
    }

    #[test]
    fn records_rx_and_tx() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_rx(NfId(0), 100, &[meta(1), meta(2)]);
        c.record_tx(NfId(0), 150, Some(NfId(1)), &[meta(1), meta(2)]);
        let b = c.into_bundle();
        assert_eq!(b.log(NfId(0)).rx.len(), 1);
        assert_eq!(b.log(NfId(0)).rx[0].ipids, vec![1, 2]);
        assert_eq!(b.log(NfId(0)).tx[0].to, Some(NfId(1)));
        // Interior NF keeps no flow info.
        assert!(b.log(NfId(0)).flows.is_empty());
    }

    #[test]
    fn flow_info_only_at_exit_output() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // vpn1 (NfId 1) is the exit.
        c.record_tx(NfId(1), 200, None, &[meta(7)]);
        c.record_tx(NfId(0), 210, Some(NfId(1)), &[meta(8)]);
        let b = c.into_bundle();
        assert_eq!(b.log(NfId(1)).flows.len(), 1);
        assert_eq!(b.log(NfId(1)).flows[0].ipid, 7);
        assert!(b.log(NfId(0)).flows.is_empty());
    }

    #[test]
    fn disabled_collector_records_nothing_and_costs_nothing() {
        let t = topo();
        let mut c = Collector::new(
            &t,
            CollectorConfig {
                enabled: false,
                ..Default::default()
            },
        );
        c.record_rx(NfId(0), 100, &[meta(1)]);
        c.record_source(0, &meta(1));
        assert_eq!(c.batch_overhead_ns(32), 0);
        assert_eq!(c.per_packet_overhead_ns(), 0.0);
        let b = c.into_bundle();
        assert_eq!(b.packet_appearances(), 0);
        assert!(b.source_flows.is_empty());
    }

    #[test]
    fn overhead_scales_with_batch() {
        let t = topo();
        let c = Collector::new(&t, CollectorConfig::default());
        assert_eq!(c.batch_overhead_ns(32), 256); // 32 × 8 ns
        assert_eq!(c.batch_overhead_ns(0), 0);
    }

    #[test]
    fn empty_batches_not_recorded() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_rx(NfId(0), 100, &[]);
        c.record_tx(NfId(0), 100, None, &[]);
        let b = c.into_bundle();
        assert_eq!(b.log(NfId(0)).rx.len(), 0);
        assert_eq!(b.log(NfId(0)).tx.len(), 0);
    }

    #[test]
    fn source_flows_recorded_in_order() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_source(5, &meta(1));
        c.record_source(9, &meta(2));
        let b = c.into_bundle();
        assert_eq!(b.source_flows.len(), 2);
        assert!(b.source_flows[0].ts < b.source_flows[1].ts);
    }

    #[test]
    fn bundle_size_accounting() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        for i in 0..100u16 {
            c.record_rx(NfId(0), 100 + i as u64 * 10, &[meta(i)]);
        }
        let b = c.into_bundle();
        assert_eq!(b.packet_appearances(), 100);
        assert!(b.encoded_size() > 0);
        assert!(b.bytes_per_packet() > 0.0);
    }
}
