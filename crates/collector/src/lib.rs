//! The Microscope runtime data collector.
//!
//! This is the reproduction of the ~200-LoC DPDK instrumentation of §5 of the
//! paper: hooks on the receive and transmit functions of every NF record,
//! per batch, a timestamp, the batch size and the IPIDs of the packets in the
//! batch ([`records`]). Only the *last* NF of the graph (and the traffic
//! source, which knows what it offered) records full five-tuples; interior
//! NFs record two-byte IPIDs, which is what makes the ~2-byte/packet
//! footprint possible ([`encode`]) and what forces the offline
//! reconstruction to disambiguate IPID collisions.
//!
//! To keep the hot path short, records are pushed into a lock-free SPSC ring
//! ([`ring`]) drained by a standalone dumper thread — the paper's
//! shared-memory + dumper design. The simulator charges the collector's
//! per-packet cost to NF service time so the §6.2 overhead experiment is
//! meaningful ([`Collector::per_packet_overhead_ns`]).

pub mod bundle_io;
pub mod collector;
pub mod encode;
pub mod records;
pub mod ring;

pub use bundle_io::{
    chunk_bundle, concat_chunks, load_bundle, peek_format, read_bundle, save_bundle,
    save_bundle_chunked, write_bundle, write_bundle_chunked, BundleChunk, BundleChunkReader,
    BundleFormat, BundleIoError,
};
pub use collector::{Collector, CollectorConfig, NfLog, TraceBundle};
pub use encode::{decode_nf_log, encode_nf_log, EncodeError};
pub use records::{FlowRecord, PacketMeta, QueueRef, RxBatch, TxBatch, MAX_BATCH};
pub use ring::{Dumper, SpscRing, SpscRingCore};
