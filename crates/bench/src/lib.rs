//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the performance claims of the paper that are about
//! *our* machinery rather than the testbed: collector hot-path cost and
//! encoding (§5, §6.2), reconstruction and diagnosis speed (offline
//! pipeline), pattern-aggregation runtime (§6.4), plus simulator and
//! baseline throughput for context.

#![forbid(unsafe_code)]

use msc_trace::{reconstruct, Reconstruction, ReconstructionConfig, Timelines};
use nf_sim::{paper_nf_configs, SimConfig, SimOutput, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, Nanos, Topology};

/// A canned paper-topology run used by several benches.
pub struct Fixture {
    /// The topology.
    pub topology: Topology,
    /// Peak rates per NF.
    pub peak_rates: Vec<f64>,
    /// The simulator output.
    pub out: SimOutput,
    /// The reconstruction.
    pub recon: Reconstruction,
    /// The timelines.
    pub timelines: Timelines,
}

/// Runs the paper topology for `millis` at `rate_pps` and reconstructs.
pub fn fixture(rate_pps: f64, millis: u64, seed: u64) -> Fixture {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let peak_rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * nf_types::MILLIS).finalize(0);
    let sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    let out = sim.run(&packets);
    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    Fixture {
        topology,
        peak_rates,
        out,
        recon,
        timelines,
    }
}

/// Generates a packet vector without running anything.
pub fn packets(rate_pps: f64, millis: u64, seed: u64) -> Vec<nf_types::Packet> {
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    gen.generate(0, millis * nf_types::MILLIS).finalize(0)
}

/// Nanoseconds of simulated time per run at the given settings.
pub fn sim_span(millis: u64) -> Nanos {
    millis * nf_types::MILLIS
}
