//! Experiment-pipeline benchmarks: one per paper table/figure family,
//! measuring the offline analysis cost of regenerating it (the shapes
//! themselves are produced by the `msc-experiments` binaries; see
//! EXPERIMENTS.md).
//!
//! * `fig11/…` — the full offline diagnosis pass (reconstruction +
//!   victim selection + recursive diagnosis) behind Figs. 11–13.
//! * `fig14/…` — §6.4 pattern aggregation runtime (the paper reports
//!   ~3 minutes for 84K relations; we aggregate tens of thousands of
//!   relations in well under a second).
//! * `fig15/…` — queuing-period extraction behind the wild-run analyses
//!   (Fig. 15, Tables 2–3).
//! * `netmedic/…` — the baseline's per-victim ranking cost (Figs. 11–13).
//! * `overhead/…` — the §6.2 collector on/off simulator runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use microscope::{diagnoses_to_relations, DiagnosisConfig, Microscope};
use msc_bench::fixture;
use msc_collector::CollectorConfig;
use msc_experiments::build_history;
use msc_trace::{reconstruct, ReconstructionConfig, Timelines};
use netmedic::{NetMedic, NetMedicConfig};
use nf_sim::{single_nf_topology, Fault, SimConfig, Simulation};
use nf_types::{NfKind, MICROS, MILLIS};

fn bench_fig11_diagnosis(c: &mut Criterion) {
    // A run with an interrupt so there are real victims to diagnose.
    let topo = nf_types::paper_topology();
    let cfgs = nf_sim::paper_nf_configs(&topo);
    let rates: Vec<f64> = cfgs.iter().map(|x| x.service.peak_rate_pps()).collect();
    let mut gen = nf_traffic::CaidaLike::new(
        nf_traffic::CaidaLikeConfig {
            rate_pps: 1_200_000.0,
            ..Default::default()
        },
        3,
    );
    let packets = gen.generate(0, 20 * MILLIS).finalize(0);
    let mut sim = Simulation::new(topo.clone(), cfgs, SimConfig::default());
    sim.add_fault(Fault::Interrupt {
        nf: topo.by_name("nat1").expect("paper topo"),
        at: 8 * MILLIS,
        duration: 800 * MICROS,
    });
    let out = sim.run(&packets);

    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.throughput(Throughput::Elements(out.bundle.source_flows.len() as u64));
    g.bench_function("reconstruct_20ms_run", |b| {
        b.iter(|| reconstruct(&topo, &out.bundle, &ReconstructionConfig::default()));
    });

    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let mut cfg = DiagnosisConfig::default();
    cfg.victims.max_victims = Some(300);
    let engine = Microscope::new(topo.clone(), rates.clone(), cfg);
    g.bench_function("diagnose_all_300_victims", |b| {
        b.iter(|| engine.diagnose_all(&recon, &timelines));
    });
    g.finish();

    // NetMedic per-victim ranking (Figs. 11–13 baseline).
    let nm = NetMedic::new(topo.clone(), NetMedicConfig::default());
    let hist = build_history(&out, topo.len(), &rates, nm.window_ns());
    let vpn = topo.by_name("vpn1").expect("paper topo");
    let mut g = c.benchmark_group("netmedic");
    g.bench_function("diagnose_one_victim", |b| {
        b.iter(|| nm.diagnose(&hist, vpn, 9 * MILLIS));
    });
    g.finish();
}

fn bench_fig14_aggregation(c: &mut Criterion) {
    let fx = fixture(1_600_000.0, 20, 11);
    let mut cfg = DiagnosisConfig::default();
    cfg.victims.max_victims = Some(500);
    let engine = Microscope::new(fx.topology.clone(), fx.peak_rates.clone(), cfg);
    let diagnoses = engine.diagnose_all(&fx.recon, &fx.timelines);
    let relations = diagnoses_to_relations(&fx.recon, &diagnoses);
    let kind_of = |id: nf_types::NfId| fx.topology.nf(id).kind;

    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.throughput(Throughput::Elements(relations.len() as u64));
    g.bench_function("aggregate_patterns_th1pct", |b| {
        b.iter(|| {
            autofocus::aggregate_patterns(
                &relations,
                &autofocus::PatternConfig::default(),
                &kind_of,
            )
        });
    });
    g.finish();
}

fn bench_fig15_queuing_periods(c: &mut Criterion) {
    let fx = fixture(1_900_000.0, 15, 5);
    let vpn = fx.topology.by_name("vpn1").expect("paper topo");
    let tl = fx.timelines.nf(vpn);
    let probes: Vec<u64> = (1..100).map(|i| i * 150 * MICROS).collect();
    let mut g = c.benchmark_group("fig15");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("queuing_period_lookup", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&t| tl.queuing_period(t).queue_len())
                .sum::<i64>()
        });
    });
    g.finish();
}

fn bench_overhead_runs(c: &mut Criterion) {
    // §6.2: the same saturated single-NF run with the collector on vs off.
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);
    for (name, enabled) in [("collector_on", true), ("collector_off", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (topo, cfgs) = single_nf_topology(NfKind::Firewall);
                    let sim = Simulation::new(
                        topo,
                        cfgs,
                        SimConfig {
                            collector: CollectorConfig {
                                enabled,
                                ..Default::default()
                            },
                            record_fates: false,
                            ..Default::default()
                        },
                    );
                    let mut gen = nf_traffic::CaidaLike::new(
                        nf_traffic::CaidaLikeConfig {
                            rate_pps: 2_200_000.0,
                            ..Default::default()
                        },
                        13,
                    );
                    (sim, gen.generate(0, 5 * MILLIS).finalize(0))
                },
                |(sim, p)| sim.run(&p),
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig11_diagnosis,
    bench_fig14_aggregation,
    bench_fig15_queuing_periods,
    bench_overhead_runs
);
criterion_main!(benches);
