//! Parallel-pipeline benchmark: 1-thread vs N-thread wall time for the
//! offline path (trace reconstruction + victim diagnosis) on the paper's
//! 16-NF deployment, with an injected interrupt so the diagnosis layer has
//! real queue build-ups to walk.
//!
//! Runs standalone (`harness = false`): `cargo bench --bench diagnose`
//! measures a full-size scenario and writes a trajectory entry to
//! `results/BENCH_diagnose.json` at the workspace root; without `--bench`
//! in the arguments it runs a quick smoke configuration and skips the file.
//!
//! Two correctness gates run before anything is timed:
//! * the parallel pipeline merges shards in stable input order, so every
//!   thread count must yield output identical to the sequential run;
//! * the period-keyed step cache must be invisible — the cached pipeline's
//!   diagnoses must be bit-identical to a cache-disabled run.
//!
//! The JSON records `baseline_diagnose_ms` (cache off, one thread) next to
//! the cached timings plus the cache hit rate, so the perf trajectory
//! stays comparable across PRs.

use microscope::{CacheStats, Diagnosis, DiagnosisConfig, LatencyThreshold, Microscope};
use msc_trace::{
    assemble, match_all, reconstruct, EdgeStreams, Reconstruction, ReconstructionConfig, Timelines,
};
use nf_sim::{paper_nf_configs, Fault, SimConfig, SimOutput, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, Topology, MILLIS};
use std::time::Instant;

/// Sequential reconstruction wall time recorded before the flat-index /
/// hop-arena rewrite (same scenario, same machine class). Kept as a
/// constant so the trajectory in `results/BENCH_diagnose.json` stays
/// comparable now that the old implementation is gone.
const BASELINE_RECONSTRUCT_MS: f64 = 454.019;

struct Scenario {
    topology: Topology,
    peak_rates: Vec<f64>,
    out: SimOutput,
}

fn scenario(rate_pps: f64, millis: u64, seed: u64) -> Scenario {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let peak_rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    // A 1 ms interrupt mid-run produces a burst of genuine victims.
    let nat2 = topology.by_name("nat2").expect("paper topology has nat2");
    sim.add_fault(Fault::Interrupt {
        nf: nat2,
        at: (millis / 2) * MILLIS,
        duration: MILLIS,
    });
    let out = sim.run(&packets);
    Scenario {
        topology,
        peak_rates,
        out,
    }
}

fn diagnosis_config(threads: usize, cache: bool) -> DiagnosisConfig {
    let mut dc = DiagnosisConfig {
        threads,
        cache,
        ..Default::default()
    };
    dc.victims.latency = LatencyThreshold::Quantile(0.95);
    dc
}

fn run_reconstruct(sc: &Scenario, threads: usize) -> Reconstruction {
    let cfg = ReconstructionConfig {
        threads,
        ..Default::default()
    };
    reconstruct(&sc.topology, &sc.out.bundle, &cfg)
}

fn run_diagnose(
    sc: &Scenario,
    recon: &Reconstruction,
    threads: usize,
    cache: bool,
) -> (Vec<Diagnosis>, CacheStats) {
    let timelines = Timelines::build(recon);
    let engine = Microscope::new(
        sc.topology.clone(),
        sc.peak_rates.clone(),
        diagnosis_config(threads, cache),
    );
    engine.diagnose_all_stats(recon, &timelines)
}

/// Minimum wall time over `reps` runs, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let (rate_pps, millis, seed, reps) = if measure {
        (1_400_000.0, 120, 42, 9)
    } else {
        (1_000_000.0, 10, 42, 1)
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let thread_counts: &[usize] = &[1, 2, 4];

    eprintln!(
        "scenario: paper 16-NF topology, {rate_pps:.0} pps for {millis} ms (seed {seed}), \
         {cpus} CPU(s) available"
    );
    let sc = scenario(rate_pps, millis, seed);
    eprintln!(
        "simulated {} source packets",
        sc.out.bundle.source_flows.len()
    );

    // Correctness gates: every thread count must reproduce the sequential
    // output exactly, and the step cache must not change a single bit of
    // it, before any configuration is worth timing.
    let seq_recon = run_reconstruct(&sc, 1);
    let (seq_diag, seq_stats) = run_diagnose(&sc, &seq_recon, 1, true);
    assert!(!seq_diag.is_empty(), "scenario produced no victims");
    let (nocache_diag, nocache_stats) = run_diagnose(&sc, &seq_recon, 1, false);
    assert_eq!(nocache_diag, seq_diag, "cache changed the diagnosis output");
    assert_eq!(nocache_stats, CacheStats::default());
    for &t in thread_counts {
        let r = run_reconstruct(&sc, t);
        assert_eq!(
            r.traces, seq_recon.traces,
            "reconstruct diverged at {t} threads"
        );
        assert_eq!(
            run_diagnose(&sc, &r, t, true).0,
            seq_diag,
            "diagnosis diverged at {t} threads"
        );
        assert_eq!(
            run_diagnose(&sc, &r, t, false).0,
            seq_diag,
            "uncached diagnosis diverged at {t} threads"
        );
    }
    eprintln!(
        "output identical across thread counts and cache on/off \
         ({} traces, {} diagnoses, {:.1}% step-cache hit rate)",
        seq_recon.traces.len(),
        seq_diag.len(),
        seq_stats.hit_rate() * 100.0
    );

    // The trajectory baseline: the unshared (cache-off) sequential path.
    let baseline_s = time_best(reps, || run_diagnose(&sc, &seq_recon, 1, false));

    // Per-stage breakdown of the sequential reconstruction: min over reps
    // of each stage, measured in a single staged pass so every stage sees
    // the same inputs as the fused `reconstruct` call.
    let cfg1 = ReconstructionConfig {
        threads: 1,
        ..Default::default()
    };
    let mut stage_s = [f64::INFINITY; 3];
    for _ in 0..reps {
        let t0 = Instant::now();
        let streams = EdgeStreams::build(&sc.topology, &sc.out.bundle);
        let t1 = Instant::now();
        let matches = match_all(&streams, &sc.topology, &cfg1);
        let t2 = Instant::now();
        std::hint::black_box(assemble(&sc.topology, &sc.out.bundle, streams, &matches));
        let t3 = Instant::now();
        stage_s[0] = stage_s[0].min((t1 - t0).as_secs_f64());
        stage_s[1] = stage_s[1].min((t2 - t1).as_secs_f64());
        stage_s[2] = stage_s[2].min((t3 - t2).as_secs_f64());
    }
    eprintln!(
        "reconstruct stages (1 thread): streams {:.1} ms, matching {:.1} ms, \
         assemble {:.1} ms (pre-rewrite baseline {BASELINE_RECONSTRUCT_MS:.1} ms)",
        stage_s[0] * 1e3,
        stage_s[1] * 1e3,
        stage_s[2] * 1e3
    );

    // Interleave the repetitions across thread counts (round-robin rather
    // than per-config blocks) so a slow system phase — page cache pressure,
    // a noisy neighbour on shared hardware — penalises every configuration
    // equally instead of skewing whichever block it landed in.
    let mut recon_best = vec![f64::INFINITY; thread_counts.len()];
    let mut diag_best = vec![f64::INFINITY; thread_counts.len()];
    let recons: Vec<Reconstruction> = thread_counts
        .iter()
        .map(|&t| run_reconstruct(&sc, t))
        .collect();
    for _ in 0..reps {
        for (i, &t) in thread_counts.iter().enumerate() {
            let t0 = Instant::now();
            std::hint::black_box(run_reconstruct(&sc, t));
            recon_best[i] = recon_best[i].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            std::hint::black_box(run_diagnose(&sc, &recons[i], t, true));
            diag_best[i] = diag_best[i].min(t0.elapsed().as_secs_f64());
        }
    }
    let mut rows = Vec::new();
    for (i, &t) in thread_counts.iter().enumerate() {
        eprintln!(
            "threads={t}: reconstruct {:.1} ms, diagnose {:.1} ms \
             (uncached baseline {:.1} ms)",
            recon_best[i] * 1e3,
            diag_best[i] * 1e3,
            baseline_s * 1e3
        );
        rows.push((t, recon_best[i], diag_best[i]));
    }

    let base = rows[0];
    let json_rows: Vec<String> = rows
        .iter()
        .map(|&(t, r, d)| {
            format!(
                "    {{\"threads\": {t}, \"reconstruct_ms\": {:.3}, \"diagnose_ms\": {:.3}, \
                 \"speedup_reconstruct\": {:.3}, \"speedup_diagnose\": {:.3}}}",
                r * 1e3,
                d * 1e3,
                base.1 / r,
                base.2 / d
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"diagnose\",\n  \"scenario\": {{\"topology\": \"paper-16nf\", \
         \"rate_pps\": {rate_pps:.0}, \"millis\": {millis}, \"seed\": {seed}, \
         \"source_packets\": {}, \"victims\": {}}},\n  \
         \"hardware\": {{\"available_parallelism\": {cpus}}},\n  \
         \"identical_output\": true,\n  \
         \"cache_hit_rate\": {:.4},\n  \"baseline_diagnose_ms\": {:.3},\n  \
         \"baseline_reconstruct_ms\": {BASELINE_RECONSTRUCT_MS:.3},\n  \
         \"reconstruct_stage_ms\": {{\"streams_build\": {:.3}, \"matching\": {:.3}, \
         \"assemble\": {:.3}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        sc.out.bundle.source_flows.len(),
        seq_diag.len(),
        seq_stats.hit_rate(),
        baseline_s * 1e3,
        stage_s[0] * 1e3,
        stage_s[1] * 1e3,
        stage_s[2] * 1e3,
        json_rows.join(",\n")
    );

    if measure {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_diagnose.json");
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir results/");
        std::fs::write(&path, &json).expect("write BENCH_diagnose.json");
        eprintln!("wrote {}", path.display());
    } else {
        eprintln!("smoke mode (no --bench): skipping results/BENCH_diagnose.json");
    }
    print!("{json}");
}
