//! Model-checker cost trajectory: how much state-space the `msc-model`
//! interleaving checks explore, how hard the state-hash pruning works, and
//! how long the exhaustive runs take on this machine.
//!
//! Runs standalone (`harness = false`): `cargo bench --bench model` writes
//! `results/BENCH_model.json` at the workspace root; without `--bench` in
//! the arguments it prints the same JSON and skips the file. Every
//! scenario mirrors one of the checked-in model tests (see
//! `crates/collector/tests/model_ring.rs` and
//! `crates/core/tests/model_cache.rs`), so these numbers track the cost of
//! exactly the proofs CI runs — a regression here means the concurrency
//! surface grew or the pruning degraded, both worth noticing in review.

use microscope::{DiagnosisCacheCore, DiagnosisStep};
use msc_collector::SpscRingCore;
use msc_model::shim::ModelPrims;
use msc_model::{check, Config, Stats};
use msc_trace::QueuingPeriod;
use nf_types::{Interval, NfId};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

type ModelRing = SpscRingCore<u64, ModelPrims>;
type ModelCache = DiagnosisCacheCore<ModelPrims>;

fn dummy_step(n: u64) -> DiagnosisStep {
    DiagnosisStep {
        qp: QueuingPeriod {
            interval: Interval::new(0, n),
            preset: 0..0,
            n_arrived: n,
            n_processed: 0,
        },
        scores: microscope::LocalScores { si: 0.0, sp: 0.0 },
        preset_flows: Vec::new(),
        shares: OnceLock::new(),
    }
}

fn ring_handoff() {
    let ring = Arc::new(ModelRing::new(2));
    let producer = {
        let ring = Arc::clone(&ring);
        msc_model::thread::spawn(move || {
            assert!(ring.push(1).is_ok());
            assert!(ring.push(2).is_ok());
        })
    };
    let mut got = Vec::new();
    for _ in 0..2 {
        if let Some(v) = ring.pop() {
            got.push(v);
        }
    }
    producer.join();
    while let Some(v) = ring.pop() {
        got.push(v);
    }
    assert_eq!(got, vec![1, 2]);
}

fn ring_wraparound() {
    let ring = Arc::new(ModelRing::new(1));
    let producer = {
        let ring = Arc::clone(&ring);
        msc_model::thread::spawn(move || {
            let mut pushed = Vec::new();
            for v in 1..=3u64 {
                if ring.push(v).is_ok() {
                    pushed.push(v);
                }
            }
            pushed
        })
    };
    let mut got = Vec::new();
    for _ in 0..3 {
        if let Some(v) = ring.pop() {
            got.push(v);
        }
    }
    let pushed = producer.join();
    while let Some(v) = ring.pop() {
        got.push(v);
    }
    assert_eq!(got, pushed);
}

fn cache_same_key() {
    let cache = Arc::new(ModelCache::with_shards(1));
    let key = (NfId(7), 1_000, 0);
    let racer = {
        let cache = Arc::clone(&cache);
        msc_model::thread::spawn(move || cache.step(key, || dummy_step(7)).qp.n_arrived)
    };
    let mine = cache.step(key, || dummy_step(7)).qp.n_arrived;
    assert_eq!((mine, racer.join()), (7, 7));
    assert_eq!(cache.stats().entries, 1);
}

/// One exhaustive exploration, timed. Returns the stats and wall seconds.
fn explore(f: impl Fn() + Send + Sync + 'static) -> (Stats, f64) {
    let t0 = Instant::now();
    let stats = match check(Config::default(), f) {
        Ok(s) => s,
        Err(v) => panic!("model scenario must verify, found: {v}"),
    };
    let wall = t0.elapsed().as_secs_f64();
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    (stats, wall)
}

fn row(name: &str, stats: &Stats, wall_s: f64) -> String {
    format!(
        "    {{\"scenario\": \"{name}\", \"interleavings\": {}, \"pruned\": {}, \
         \"prune_rate\": {:.4}, \"decision_points\": {}, \"distinct_states\": {}, \
         \"max_depth\": {}, \"complete\": {}, \"wall_ms\": {:.3}}}",
        stats.interleavings,
        stats.pruned,
        stats.prune_rate(),
        stats.decision_points,
        stats.distinct_states,
        stats.max_depth,
        stats.complete,
        wall_s * 1e3
    )
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let scenarios: Vec<(&str, fn())> = vec![
        ("ring_spsc_handoff", ring_handoff),
        ("ring_wraparound_full", ring_wraparound),
        ("cache_same_key_race", cache_same_key),
    ];
    let mut rows = Vec::new();
    for (name, f) in scenarios {
        let (stats, wall) = explore(f);
        eprintln!(
            "{name}: {} interleavings, {} pruned ({:.1}%), depth {}, {:.1} ms",
            stats.interleavings,
            stats.pruned,
            stats.prune_rate() * 100.0,
            stats.max_depth,
            wall * 1e3
        );
        rows.push(row(name, &stats, wall));
    }

    let json = format!(
        "{{\n  \"bench\": \"model\",\n  \
         \"hardware\": {{\"available_parallelism\": {cpus}}},\n  \
         \"all_complete\": true,\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    if measure {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_model.json");
        match path.parent() {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    panic!("mkdir {}: {e}", dir.display());
                }
            }
            None => unreachable!("bench result path always has a parent"),
        }
        if let Err(e) = std::fs::write(&path, &json) {
            panic!("write {}: {e}", path.display());
        }
        eprintln!("wrote {}", path.display());
    } else {
        eprintln!("smoke mode (no --bench): skipping results/BENCH_model.json");
    }
    print!("{json}");
}
