//! Component benchmarks: the building blocks' costs.
//!
//! * `collector/*` — the runtime hot path (§5's "200 LoC in DPDK" whose
//!   cost is the §6.2 overhead) and the 2-byte/packet codec.
//! * `ring/*` — the SPSC shared-memory ring between the hot path and the
//!   dumper.
//! * `simulator/*` — DES throughput (packets simulated per second).
//! * `traffic/*` — workload synthesis rate.
//! * `matching/*` — cross-NF IPID matching speed.
//! * `reconstruct/*` — offline trace reconstruction, full and per stage.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use msc_bench::{fixture, packets};
use msc_collector::{
    decode_nf_log, encode_nf_log, Collector, CollectorConfig, PacketMeta, SpscRing,
};
use msc_trace::{
    assemble, match_all, match_downstream, reconstruct, EdgeStreams, MatchConfig, PathTrie,
    ReconstructionConfig,
};
use nf_sim::{paper_nf_configs, SimConfig, Simulation};
use nf_types::{paper_topology, FiveTuple, NfId, Proto};

fn bench_collector(c: &mut Criterion) {
    let topo = paper_topology();
    let metas: Vec<PacketMeta> = (0..32u16)
        .map(|i| PacketMeta {
            ipid: i,
            flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
        })
        .collect();

    let mut g = c.benchmark_group("collector");
    g.throughput(Throughput::Elements(32));
    g.bench_function("record_rx_batch32", |b| {
        let mut col = Collector::new(&topo, CollectorConfig::default());
        let mut ts = 0u64;
        b.iter(|| {
            ts += 17_000;
            col.record_rx(NfId(0), ts, &metas);
        });
    });
    g.bench_function("record_tx_batch32", |b| {
        let mut col = Collector::new(&topo, CollectorConfig::default());
        let mut ts = 0u64;
        b.iter(|| {
            ts += 17_000;
            col.record_tx(NfId(0), ts, Some(NfId(5)), &metas);
        });
    });
    g.finish();

    // Encoding: bytes/packet and speed on a realistic interior log.
    let fx = fixture(1_600_000.0, 10, 42);
    let log = fx.out.bundle.log(NfId(0)).clone();
    let apps = log.packet_appearances() as u64;
    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(apps));
    g.bench_function("encode_nf_log", |b| b.iter(|| encode_nf_log(&log)));
    let bytes = encode_nf_log(&log).expect("encodable");
    g.bench_function("decode_nf_log", |b| {
        b.iter(|| decode_nf_log(&bytes).expect("decodes"))
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("spsc_push_pop", |b| {
        let ring: SpscRing<u64> = SpscRing::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.push(i).expect("never full in lockstep");
            ring.pop().expect("just pushed")
        });
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let pkts = packets(1_200_000.0, 10, 7);
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("paper_topology_10ms_1.2mpps", |b| {
        b.iter_batched(
            || {
                let topo = paper_topology();
                let cfgs = paper_nf_configs(&topo);
                (
                    Simulation::new(topo, cfgs, SimConfig::default()),
                    pkts.clone(),
                )
            },
            |(sim, p)| sim.run(&p),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_traffic(c: &mut Criterion) {
    use nf_traffic::{CaidaLike, CaidaLikeConfig};
    let mut g = c.benchmark_group("traffic");
    g.sample_size(20);
    g.bench_function("caida_like_10ms_1.2mpps", |b| {
        b.iter(|| {
            let mut gen = CaidaLike::new(
                CaidaLikeConfig {
                    rate_pps: 1_200_000.0,
                    ..Default::default()
                },
                9,
            );
            gen.generate(0, 10 * nf_types::MILLIS)
        });
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let fx = fixture(1_600_000.0, 10, 42);
    let streams = EdgeStreams::build(&fx.topology, &fx.out.bundle);
    let vpn = fx.topology.by_name("vpn1").expect("paper topology");
    let n = streams.nfs[vpn.0 as usize].rx.len() as u64;
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    g.bench_function("match_downstream_vpn", |b| {
        b.iter(|| match_downstream(&streams, &fx.topology, vpn, &MatchConfig::default()));
    });
    g.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    // The full offline reconstruction plus its individual stages, so a
    // regression in any one stage shows up in isolation: edge-stream
    // building (counting-sort IPID index), per-NF matching, trace assembly
    // into the hop arena, and the PathTrie index over the finished arena.
    let fx = fixture(1_600_000.0, 10, 42);
    let cfg = ReconstructionConfig {
        threads: 1,
        ..Default::default()
    };
    let n = fx.recon.traces.len() as u64;

    let mut g = c.benchmark_group("reconstruct");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    g.bench_function("full_1thread", |b| {
        b.iter(|| reconstruct(&fx.topology, &fx.out.bundle, &cfg));
    });
    g.bench_function("streams_build", |b| {
        b.iter(|| EdgeStreams::build(&fx.topology, &fx.out.bundle));
    });
    let streams = EdgeStreams::build(&fx.topology, &fx.out.bundle);
    g.bench_function("match_all_1thread", |b| {
        b.iter(|| match_all(&streams, &fx.topology, &cfg));
    });
    let matches = match_all(&streams, &fx.topology, &cfg);
    g.bench_function("assemble", |b| {
        // `assemble` consumes the streams, so each iteration gets a fresh
        // copy from the setup closure (its cost is excluded from the
        // measurement by `iter_batched`).
        b.iter_batched(
            || EdgeStreams::build(&fx.topology, &fx.out.bundle),
            |s| assemble(&fx.topology, &fx.out.bundle, s, &matches),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("path_trie_index", |b| {
        b.iter(|| PathTrie::index(&fx.recon.traces, &fx.recon.hops));
    });
    g.finish();
}

fn bench_diagnosis_components(c: &mut Criterion) {
    use microscope::credit_walk_into;

    let fx = fixture(1_600_000.0, 10, 42);
    // The busiest NF timeline gives the indexed period lookup a realistic
    // arrival density; probe anchors stride across its arrivals.
    let tl = (0..fx.topology.len() as u16)
        .map(|i| fx.timelines.nf(NfId(i)))
        .max_by_key(|tl| tl.arrivals.len())
        .expect("paper topology has NFs");
    let probes: Vec<u64> = tl
        .arrivals
        .iter()
        .step_by((tl.arrivals.len() / 256).max(1))
        .map(|a| a.ts)
        .collect();

    let mut g = c.benchmark_group("diagnosis");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("queuing_period_above_t0", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&t| tl.queuing_period_above(t, 0).n_arrived)
                .sum::<u64>()
        });
    });
    g.bench_function("queuing_period_above_t32", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&t| tl.queuing_period_above(t, 32).n_arrived)
                .sum::<u64>()
        });
    });

    // A realistic §4.2 walk: paper-depth chains with mixed squeezes and
    // stretches, through the reusable scratch buffers.
    let walks: Vec<Vec<u64>> = (0..256u64)
        .map(|i| {
            (0..6)
                .map(|j| 1_000_000 / (1 + (i * 7 + j * 13) % 97))
                .collect()
        })
        .collect();
    g.throughput(Throughput::Elements(walks.len() as u64));
    g.bench_function("credit_walk_depth6", |b| {
        let mut credits = Vec::new();
        let mut stack = Vec::new();
        b.iter(|| {
            walks
                .iter()
                .map(|w| {
                    credit_walk_into(2_000_000, w, &mut credits, &mut stack);
                    credits.iter().sum::<u64>()
                })
                .sum::<u64>()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_collector,
    bench_ring,
    bench_simulator,
    bench_traffic,
    bench_matching,
    bench_reconstruct,
    bench_diagnosis_components
);
criterion_main!(benches);
