//! Streaming-engine benchmark: equality gate, O(window) working-set check,
//! and peak-memory / throughput comparison against the offline pipeline at
//! 1x and 10x run lengths.
//!
//! Runs standalone (`harness = false`): `cargo bench --bench stream`
//! measures the full-size scenario and writes `results/BENCH_stream.json`
//! at the workspace root; without `--bench` in the arguments it runs a
//! quick smoke configuration and skips the file and the scale phases.
//!
//! Peak RSS (`VmHWM`) is a per-process high-water mark, so the offline and
//! streamed pipelines at each scale run in *separate child processes*: the
//! binary re-invokes itself with `--phase offline|stream --millis N` and
//! parses one result line from each child's stdout. The precise O(window)
//! claim is carried by `StreamEngine::working_set_peak()` (evictable
//! frontier bytes), which a 10x longer run must not inflate; `VmHWM`
//! corroborates it end to end (and includes the simulator, which both
//! phases pay equally).

use microscope::{DiagnosisConfig, LatencyThreshold, Microscope};
use msc_collector::{chunk_bundle, TraceBundle};
use msc_stream::{StreamConfig, StreamEngine};
use msc_trace::{reconstruct, ReconstructionConfig, Timelines};
use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, Topology, MILLIS};
use std::time::Instant;

const RATE_PPS: f64 = 1_400_000.0;
const SEED: u64 = 42;
const CHUNK_MS: u64 = 50;

fn scenario(millis: u64) -> (Topology, Vec<f64>, TraceBundle) {
    let topology = paper_topology();
    let cfgs = paper_nf_configs(&topology);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: RATE_PPS,
            ..Default::default()
        },
        SEED,
    );
    let packets = gen.generate(0, millis * MILLIS).finalize(0);
    let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
    let nat2 = topology.by_name("nat2").expect("paper topology has nat2");
    sim.add_fault(Fault::Interrupt {
        nf: nat2,
        at: (millis / 2) * MILLIS,
        duration: MILLIS,
    });
    (topology, rates, sim.run(&packets).bundle)
}

/// Peak resident set of this process in KiB, from `/proc/self/status`.
fn vmhwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn arg_after(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .map(|i| args[i + 1].clone())
}

/// Child-process entry: run one pipeline and print a single parseable
/// result line. The simulation happens in the child too, so both phases
/// pay the same baseline and `VmHWM` differences isolate the pipelines.
fn run_phase(phase: &str, millis: u64) {
    let (topology, _, bundle) = scenario(millis);
    let packets = bundle.source_flows.len();
    let (elapsed_s, ws_peak, delivered) = match phase {
        "offline" => {
            let t0 = Instant::now();
            let recon = reconstruct(&topology, &bundle, &ReconstructionConfig::default());
            let tl = Timelines::build(&recon);
            let e = t0.elapsed().as_secs_f64();
            std::hint::black_box(&tl);
            (e, 0usize, recon.report.delivered)
        }
        "stream" => {
            // Chunking stands in for the collector's file reader; it is not
            // part of the engine, so it stays outside the timed region.
            let chunks = chunk_bundle(&bundle, CHUNK_MS * MILLIS);
            drop(bundle);
            let t0 = Instant::now();
            let mut engine = StreamEngine::new(&topology, StreamConfig::default());
            for c in &chunks {
                engine.push_chunk(c).expect("chunk fits topology");
            }
            let ws = engine.working_set_peak();
            let (recon, tl) = engine.finish();
            let e = t0.elapsed().as_secs_f64();
            std::hint::black_box(&tl);
            (e, ws, recon.report.delivered)
        }
        other => panic!("unknown phase {other:?}"),
    };
    println!(
        "phase_result packets={packets} elapsed_s={elapsed_s:.6} vmhwm_kb={} \
         ws_peak={ws_peak} delivered={delivered}",
        vmhwm_kb()
    );
}

#[derive(Debug, Default, Clone)]
struct PhaseResult {
    packets: u64,
    elapsed_s: f64,
    vmhwm_kb: u64,
    ws_peak: u64,
    delivered: u64,
}

/// Spawn this binary as `--phase <phase> --millis <millis>` and parse its
/// result line.
fn spawn_phase(phase: &str, millis: u64) -> PhaseResult {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(["--phase", phase, "--millis", &millis.to_string()])
        .output()
        .expect("spawn phase");
    assert!(
        out.status.success(),
        "phase {phase} millis {millis} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("phase_result"))
        .unwrap_or_else(|| panic!("phase {phase}: no result line in {stdout:?}"));
    let mut r = PhaseResult::default();
    for kv in line.split_whitespace().skip(1) {
        let (k, v) = kv.split_once('=').expect("key=value");
        match k {
            "packets" => r.packets = v.parse().expect("packets"),
            "elapsed_s" => r.elapsed_s = v.parse().expect("elapsed_s"),
            "vmhwm_kb" => r.vmhwm_kb = v.parse().expect("vmhwm_kb"),
            "ws_peak" => r.ws_peak = v.parse().expect("ws_peak"),
            "delivered" => r.delivered = v.parse().expect("delivered"),
            _ => {}
        }
    }
    r
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(phase) = arg_after(&args, "--phase") {
        let millis: u64 = arg_after(&args, "--millis")
            .expect("--phase needs --millis")
            .parse()
            .expect("millis");
        run_phase(&phase, millis);
        return;
    }

    let measure = args.iter().any(|a| a == "--bench");
    let gate_millis: u64 = if measure { 120 } else { 10 };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Equality gate: the streamed pipeline must be a bit-exact replay of
    // the offline oracle at every chunk size before anything is measured.
    eprintln!(
        "gate: paper 16-NF, {RATE_PPS:.0} pps for {gate_millis} ms (seed {SEED}), {cpus} CPU(s)"
    );
    let (topology, rates, bundle) = scenario(gate_millis);
    let offline = reconstruct(&topology, &bundle, &ReconstructionConfig::default());
    let off_tl = Timelines::build(&offline);
    let mut dc = DiagnosisConfig::default();
    dc.victims.latency = LatencyThreshold::Quantile(0.99);
    dc.victims.max_victims = Some(5_000);
    let oracle = Microscope::new(topology.clone(), rates.clone(), dc.clone());
    let (off_diag, _) = oracle.diagnose_all_stats(&offline, &off_tl);

    let gate_chunks_ms: &[u64] = &[10, CHUNK_MS];
    let mut working_set = Vec::new();
    for &chunk_ms in gate_chunks_ms {
        let mut engine = StreamEngine::new(&topology, StreamConfig::default());
        for c in chunk_bundle(&bundle, chunk_ms * MILLIS) {
            engine.push_chunk(&c).expect("chunk fits topology");
        }
        let ws = engine.working_set_peak();
        let out = engine.finish_and_diagnose(rates.clone(), dc.clone());
        assert_eq!(
            out.recon.traces, offline.traces,
            "chunk {chunk_ms} ms: traces"
        );
        assert_eq!(
            out.recon.report, offline.report,
            "chunk {chunk_ms} ms: report"
        );
        assert_eq!(out.timelines, off_tl, "chunk {chunk_ms} ms: timelines");
        assert_eq!(out.diagnoses, off_diag, "chunk {chunk_ms} ms: diagnoses");
        eprintln!(
            "chunk {chunk_ms:>3} ms: identical output, peak working set {} KiB",
            ws / 1024
        );
        working_set.push((chunk_ms, ws));
    }

    // Scale phases: offline vs streamed at 1x and 10x, each in its own
    // child process for an uncontaminated VmHWM.
    let mut scale_rows = Vec::new();
    if measure {
        for (label, millis) in [("1x", 120u64), ("10x", 1_200)] {
            let off = spawn_phase("offline", millis);
            let st = spawn_phase("stream", millis);
            assert_eq!(off.delivered, st.delivered, "{label}: delivered diverged");
            let pps = st.packets as f64 / st.elapsed_s;
            eprintln!(
                "{label:>3} ({millis} ms, {} pkts): offline {:.1} ms / {} MiB peak, \
                 stream {:.1} ms / {} MiB peak, frontier {} KiB, {:.2} Mpps",
                st.packets,
                off.elapsed_s * 1e3,
                off.vmhwm_kb / 1024,
                st.elapsed_s * 1e3,
                st.vmhwm_kb / 1024,
                st.ws_peak / 1024,
                pps / 1e6
            );
            scale_rows.push((label, millis, off, st, pps));
        }
        let (small, large) = (scale_rows[0].3.ws_peak, scale_rows[1].3.ws_peak);
        assert!(
            large < small.max(1) * 3,
            "peak frontier grew with run length: {small} -> {large} bytes"
        );
    } else {
        eprintln!("smoke mode (no --bench): skipping scale phases");
    }

    let ws_rows: Vec<String> = working_set
        .iter()
        .map(|&(ms, ws)| format!("    {{\"chunk_ms\": {ms}, \"peak_frontier_bytes\": {ws}}}"))
        .collect();
    let scale_json: Vec<String> = scale_rows
        .iter()
        .map(|(label, millis, off, st, pps)| {
            format!(
                "    {{\"scale\": \"{label}\", \"millis\": {millis}, \"packets\": {}, \
                 \"offline\": {{\"elapsed_ms\": {:.3}, \"vmhwm_kb\": {}}}, \
                 \"stream\": {{\"elapsed_ms\": {:.3}, \"vmhwm_kb\": {}, \
                 \"peak_frontier_bytes\": {}, \"throughput_pps\": {:.0}}}}}",
                st.packets,
                off.elapsed_s * 1e3,
                off.vmhwm_kb,
                st.elapsed_s * 1e3,
                st.vmhwm_kb,
                st.ws_peak,
                pps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"scenario\": {{\"topology\": \"paper-16nf\", \
         \"rate_pps\": {RATE_PPS:.0}, \"gate_millis\": {gate_millis}, \"seed\": {SEED}, \
         \"chunk_ms\": {CHUNK_MS}}},\n  \
         \"hardware\": {{\"available_parallelism\": {cpus}}},\n  \
         \"identical_output\": true,\n  \
         \"working_set\": [\n{}\n  ],\n  \
         \"scale\": [\n{}\n  ]\n}}\n",
        ws_rows.join(",\n"),
        scale_json.join(",\n")
    );

    if measure {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_stream.json");
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir results/");
        std::fs::write(&path, &json).expect("write BENCH_stream.json");
        eprintln!("wrote {}", path.display());
    } else {
        eprintln!("smoke mode (no --bench): skipping results/BENCH_stream.json");
    }
    print!("{json}");
}
