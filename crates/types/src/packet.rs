//! Packets as the simulator and collector see them.
//!
//! Two identities coexist on purpose:
//!
//! * [`PacketId`] — a globally unique 64-bit id assigned by the traffic
//!   source. It exists **only** for ground truth: the simulator journals which
//!   packets were part of an injected fault, and accuracy scoring compares
//!   diagnosis output against that journal. The collector and the offline
//!   diagnosis never use it.
//! * [`Ipid`] — the 16-bit IP identification field, the only per-packet id the
//!   runtime collector records at interior NFs (§5 of the paper). It is *not*
//!   unique; the trace-reconstruction crate resolves collisions with the
//!   paper's three side channels.

use crate::flow::FiveTuple;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet id (ground truth only; see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// The 16-bit IP identification field.
pub type Ipid = u16;

/// A packet travelling through the simulated NF DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Ground-truth unique id (never consulted by diagnosis).
    pub id: PacketId,
    /// Exact flow key.
    pub flow: FiveTuple,
    /// IP identification field; what interior NFs record.
    pub ipid: Ipid,
    /// Wire size in bytes (the evaluation uses 64-byte packets).
    pub size: u16,
    /// Timestamp at which the traffic source emitted the packet.
    pub created_at: Nanos,
}

impl Packet {
    /// Builds a packet, deriving the IPID from the unique id the way a host
    /// IP stack derives it from a per-destination counter: low 16 bits. This
    /// reproduces the paper's collision setting — 65,536 possible IPIDs, many
    /// concurrent packets.
    pub fn new(id: u64, flow: FiveTuple, size: u16, created_at: Nanos) -> Self {
        Self {
            id: PacketId(id),
            flow,
            ipid: (id & 0xffff) as Ipid,
            size,
            created_at,
        }
    }

    /// Same, but with an explicit IPID (used by tests that need engineered
    /// collisions).
    pub fn with_ipid(id: u64, flow: FiveTuple, ipid: Ipid, size: u16, created_at: Nanos) -> Self {
        Self {
            id: PacketId(id),
            flow,
            ipid,
            size,
            created_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Proto;

    fn flow() -> FiveTuple {
        FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, Proto::TCP)
    }

    #[test]
    fn ipid_is_low_16_bits_of_id() {
        let p = Packet::new(0x1_0005, flow(), 64, 0);
        assert_eq!(p.ipid, 0x0005);
        assert_eq!(p.id, PacketId(0x1_0005));
    }

    #[test]
    fn ipid_wraps_at_65536() {
        let a = Packet::new(7, flow(), 64, 0);
        let b = Packet::new(7 + 65_536, flow(), 64, 0);
        assert_eq!(a.ipid, b.ipid);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn explicit_ipid_is_preserved() {
        let p = Packet::with_ipid(1, flow(), 0xbeef, 64, 5);
        assert_eq!(p.ipid, 0xbeef);
        assert_eq!(p.created_at, 5);
    }
}
