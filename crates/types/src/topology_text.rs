//! A plain-text deployment description format for the CLI tools.
//!
//! One declaration per line; `#` starts a comment. The operator describes
//! the NF instances (with the offline-measured peak rate `r_i`, §4.1),
//! which NFs the load balancer feeds, and the DAG edges:
//!
//! ```text
//! # name   kind      peak rate (pps)
//! nf  nat1  nat      1923000
//! nf  fw1   firewall 1639000
//! nf  vpn1  vpn       633000
//! entry nat1
//! edge  nat1 fw1
//! edge  fw1  vpn1
//! ```
//!
//! Kinds: `nat`, `firewall`/`fw`, `monitor`/`mon`, `vpn`, or `custom<N>`.

use crate::nf::NfKind;
use crate::topology::{Topology, TopologyError};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse_topology`].
#[derive(Debug)]
pub enum TopologyTextError {
    /// Syntax error at a line (1-based) with a message.
    Syntax(usize, String),
    /// A declaration referenced an undefined NF name.
    UnknownName(usize, String),
    /// The resulting graph failed validation.
    Invalid(TopologyError),
}

impl fmt::Display for TopologyTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyTextError::Syntax(l, m) => write!(f, "line {l}: {m}"),
            TopologyTextError::UnknownName(l, n) => write!(f, "line {l}: unknown NF {n:?}"),
            TopologyTextError::Invalid(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for TopologyTextError {}

fn parse_kind(s: &str) -> Option<NfKind> {
    match s.to_ascii_lowercase().as_str() {
        "nat" => Some(NfKind::Nat),
        "firewall" | "fw" => Some(NfKind::Firewall),
        "monitor" | "mon" => Some(NfKind::Monitor),
        "vpn" => Some(NfKind::Vpn),
        other => other
            .strip_prefix("custom")
            .and_then(|d| d.parse().ok())
            .map(NfKind::Custom),
    }
}

fn kind_str(k: NfKind) -> String {
    match k {
        NfKind::Nat => "nat".into(),
        NfKind::Firewall => "firewall".into(),
        NfKind::Monitor => "monitor".into(),
        NfKind::Vpn => "vpn".into(),
        NfKind::Custom(d) => format!("custom{d}"),
    }
}

/// Parses the text format. Returns the topology and the per-NF peak rates
/// (`r_i`, in `NfId` order).
pub fn parse_topology(text: &str) -> Result<(Topology, Vec<f64>), TopologyTextError> {
    let mut builder = Topology::builder();
    let mut rates: Vec<f64> = Vec::new();
    let mut names: HashMap<String, crate::nf::NfId> = HashMap::new();
    let mut entries: Vec<(usize, String)> = Vec::new();
    let mut edges: Vec<(usize, String, String)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        match tok[0] {
            "nf" => {
                if tok.len() != 4 {
                    return Err(TopologyTextError::Syntax(
                        lineno,
                        "expected: nf <name> <kind> <peak_pps>".into(),
                    ));
                }
                let kind = parse_kind(tok[2]).ok_or_else(|| {
                    TopologyTextError::Syntax(lineno, format!("unknown NF kind {:?}", tok[2]))
                })?;
                let rate: f64 = tok[3].parse().map_err(|_| {
                    TopologyTextError::Syntax(lineno, format!("bad peak rate {:?}", tok[3]))
                })?;
                if rate <= 0.0 {
                    return Err(TopologyTextError::Syntax(
                        lineno,
                        "peak rate must be positive".into(),
                    ));
                }
                let id = builder.add_nf(kind, tok[1]);
                names.insert(tok[1].to_string(), id);
                rates.push(rate);
            }
            "entry" => {
                if tok.len() != 2 {
                    return Err(TopologyTextError::Syntax(
                        lineno,
                        "expected: entry <name>".into(),
                    ));
                }
                entries.push((lineno, tok[1].to_string()));
            }
            "edge" => {
                if tok.len() != 3 {
                    return Err(TopologyTextError::Syntax(
                        lineno,
                        "expected: edge <from> <to>".into(),
                    ));
                }
                edges.push((lineno, tok[1].to_string(), tok[2].to_string()));
            }
            other => {
                return Err(TopologyTextError::Syntax(
                    lineno,
                    format!("unknown declaration {other:?}"),
                ));
            }
        }
    }

    for (lineno, name) in entries {
        let id = *names
            .get(&name)
            .ok_or(TopologyTextError::UnknownName(lineno, name))?;
        builder.add_entry(id);
    }
    for (lineno, from, to) in edges {
        let f = *names
            .get(&from)
            .ok_or_else(|| TopologyTextError::UnknownName(lineno, from.clone()))?;
        let t = *names
            .get(&to)
            .ok_or(TopologyTextError::UnknownName(lineno, to))?;
        builder.add_edge(f, t);
    }
    let topo = builder.build().map_err(TopologyTextError::Invalid)?;
    Ok((topo, rates))
}

/// Emits the text format for a topology and its peak rates.
pub fn emit_topology(topology: &Topology, rates: &[f64]) -> String {
    let mut out =
        String::from("# Microscope deployment description\n# nf <name> <kind> <peak_pps>\n");
    for (nf, &r) in topology.nfs().iter().zip(rates) {
        out.push_str(&format!(
            "nf {} {} {}\n",
            nf.name,
            kind_str(nf.kind),
            r.round()
        ));
    }
    for &e in topology.entries() {
        out.push_str(&format!("entry {}\n", topology.nf(e).name));
    }
    for nf in topology.nfs() {
        for &d in topology.downstream(nf.id) {
            out.push_str(&format!("edge {} {}\n", nf.name, topology.nf(d).name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_topology;

    #[test]
    fn round_trip_paper_topology() {
        let topo = paper_topology();
        let rates: Vec<f64> = topo
            .nfs()
            .iter()
            .enumerate()
            .map(|(i, _)| 1_000_000.0 + i as f64)
            .collect();
        let text = emit_topology(&topo, &rates);
        let (back, back_rates) = parse_topology(&text).unwrap();
        assert_eq!(back.len(), topo.len());
        for (a, b) in topo.nfs().iter().zip(back.nfs()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
        assert_eq!(back.entries(), topo.entries());
        for nf in topo.nfs() {
            assert_eq!(topo.downstream(nf.id), back.downstream(nf.id));
        }
        assert_eq!(rates, back_rates);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (t, r) =
            parse_topology("# hello\n\nnf a nat 1000000 # inline comment\nentry a\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(r, vec![1_000_000.0]);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_topology("nf a nat\n").unwrap_err();
        assert!(matches!(err, TopologyTextError::Syntax(1, _)), "{err}");
        let err = parse_topology("nf a nat 1e6\nedge a b\n").unwrap_err();
        assert!(matches!(err, TopologyTextError::UnknownName(2, _)), "{err}");
        let err = parse_topology("bogus\n").unwrap_err();
        assert!(matches!(err, TopologyTextError::Syntax(1, _)));
    }

    #[test]
    fn kind_aliases() {
        assert_eq!(parse_kind("fw"), Some(NfKind::Firewall));
        assert_eq!(parse_kind("mon"), Some(NfKind::Monitor));
        assert_eq!(parse_kind("custom7"), Some(NfKind::Custom(7)));
        assert_eq!(parse_kind("router"), None);
    }

    #[test]
    fn invalid_graph_reported() {
        let err = parse_topology("nf a nat 1e6\nnf b vpn 1e6\nedge a b\nedge b a\n").unwrap_err();
        assert!(matches!(
            err,
            TopologyTextError::Invalid(TopologyError::Cycle)
        ));
    }

    #[test]
    fn negative_rate_rejected() {
        assert!(parse_topology("nf a nat -5\n").is_err());
        assert!(parse_topology("nf a nat 0\n").is_err());
    }
}
