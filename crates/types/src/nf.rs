//! Identities of network functions and topology nodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind (type) of a network function.
///
/// The paper's evaluation chain (Fig. 10) uses four kinds; `Custom` lets
/// examples and tests define additional ones without touching this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NfKind {
    /// Network address translator.
    Nat,
    /// Rule-matching firewall (routes matched flows to the Monitor).
    Firewall,
    /// Traffic monitor.
    Monitor,
    /// VPN endpoint (encrypting gateway).
    Vpn,
    /// Anything else, tagged with a small discriminator.
    Custom(u8),
}

impl NfKind {
    /// Short lowercase label used in reports (`fw2`, `nat1`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            NfKind::Nat => "nat",
            NfKind::Firewall => "fw",
            NfKind::Monitor => "mon",
            NfKind::Vpn => "vpn",
            NfKind::Custom(_) => "nf",
        }
    }
}

impl fmt::Display for NfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfKind::Custom(d) => write!(f, "nf{d}"),
            other => write!(f, "{}", other.label()),
        }
    }
}

/// Identifier of one NF *instance* (the paper's "NF" means instance).
///
/// Indexes into [`crate::topology::Topology`] node tables; dense and cheap to
/// use as an array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NfId(pub u16);

impl fmt::Display for NfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nf{}", self.0)
    }
}

/// A node in the diagnosis graph: either the traffic source or an NF
/// instance.
///
/// The propagation analysis (§4.2) attributes scores to NFs *and* to the
/// traffic source, so the source is a first-class node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// The (aggregate) traffic source.
    Source,
    /// An NF instance.
    Nf(NfId),
}

/// Convenience constant for the traffic source node.
pub const SOURCE_NODE: NodeId = NodeId::Source;

impl NodeId {
    /// The NF id if this is an NF node.
    pub fn nf(&self) -> Option<NfId> {
        match self {
            NodeId::Source => None,
            NodeId::Nf(id) => Some(*id),
        }
    }

    /// True for the traffic source.
    pub fn is_source(&self) -> bool {
        matches!(self, NodeId::Source)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Source => write!(f, "source"),
            NodeId::Nf(id) => write!(f, "{id}"),
        }
    }
}

impl From<NfId> for NodeId {
    fn from(id: NfId) -> Self {
        NodeId::Nf(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(NfKind::Firewall.to_string(), "fw");
        assert_eq!(NfKind::Custom(3).to_string(), "nf3");
    }

    #[test]
    fn node_id_accessors() {
        assert!(SOURCE_NODE.is_source());
        assert_eq!(SOURCE_NODE.nf(), None);
        let n: NodeId = NfId(4).into();
        assert_eq!(n.nf(), Some(NfId(4)));
        assert!(!n.is_source());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::Source.to_string(), "source");
        assert_eq!(NodeId::Nf(NfId(2)).to_string(), "nf2");
    }
}
