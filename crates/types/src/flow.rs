//! Flow identification: exact five-tuples and hierarchical flow aggregates.
//!
//! Microscope's pattern-aggregation stage (§4.4 of the paper) reports culprit
//! and victim *flow aggregates*: five-tuples generalised along each dimension
//! (IPv4 prefixes for addresses, ranges for ports, wildcard for protocol).
//! [`FiveTuple`] is the exact key carried by every packet; [`FlowAggregate`]
//! is a point in the generalisation lattice that AutoFocus climbs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Transport protocol number (IANA). Only the value matters to Microscope;
/// the simulator uses TCP/UDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Proto(pub u8);

impl Proto {
    /// TCP (6).
    pub const TCP: Proto = Proto(6);
    /// UDP (17).
    pub const UDP: Proto = Proto(17);
    /// ICMP (1).
    pub const ICMP: Proto = Proto(1);
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An exact five-tuple flow key.
///
/// IPv4 addresses are stored as host-order `u32` so that prefix arithmetic is
/// cheap; [`fmt::Display`] renders dotted-quad form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address (host byte order).
    pub src_ip: u32,
    /// Destination IPv4 address (host byte order).
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

/// Renders a host-order IPv4 address as dotted quad.
pub fn fmt_ip(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

/// Parses a dotted-quad IPv4 address into host order. Returns `None` on any
/// syntax error.
pub fn parse_ip(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

impl FiveTuple {
    /// Convenience constructor.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: Proto) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// A stable, cheap hash used by the simulator's flow-level load balancer.
    ///
    /// FNV-1a over the tuple bytes: deterministic across runs (unlike
    /// `DefaultHasher`, which is seeded per-process), which the reproducible
    /// experiments require.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in self.src_ip.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_ip.to_be_bytes() {
            eat(b);
        }
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(self.proto.0);
        h
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            fmt_ip(self.src_ip),
            self.src_port,
            fmt_ip(self.dst_ip),
            self.dst_port,
            self.proto
        )
    }
}

/// An IPv4 prefix `addr/len`, the generalisation of an address dimension.
///
/// `len == 32` is an exact host; `len == 0` matches everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// The wildcard prefix `0.0.0.0/0`.
    pub const ANY: Prefix = Prefix { addr: 0, len: 0 };

    /// Creates a prefix, masking `addr` down to `len` bits. Panics if
    /// `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Self {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// An exact /32 host prefix.
    pub fn host(addr: u32) -> Self {
        Self { addr, len: 32 }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address (already masked).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length in bits (a /0 wildcard has length 0 — see
    /// [`Self::is_any`] — so a container-style `is_empty` has no meaning
    /// here).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the /0 wildcard.
    pub fn is_any(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, ip: u32) -> bool {
        (ip & Self::mask(self.len)) == self.addr
    }

    /// Does this prefix contain (or equal) the other prefix?
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// The parent prefix one bit shorter, or `None` at /0.
    ///
    /// This single-bit step is the generalisation ladder AutoFocus climbs.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            write!(f, "*")
        } else {
            write!(f, "{}/{}", fmt_ip(self.addr), self.len)
        }
    }
}

/// A port dimension value: an exact port or a closed range.
///
/// The paper's raw hierarchy (§6.4) is two-level — an exact port or the
/// registered/ephemeral split (`0-1023`, `1024-65535`) and the full wildcard.
/// Adaptive multi-port ranges (the paper's suggested optimisation) are
/// represented by arbitrary `lo..=hi` ranges produced by
/// `autofocus`' adaptive mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortRange {
    /// Lowest port in the range (inclusive).
    pub lo: u16,
    /// Highest port in the range (inclusive).
    pub hi: u16,
}

impl PortRange {
    /// The full wildcard `0-65535`.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };
    /// Well-known ports `0-1023`.
    pub const WELL_KNOWN: PortRange = PortRange { lo: 0, hi: 1023 };
    /// Registered + ephemeral ports `1024-65535`, the static range the
    /// paper's implementation reports (Fig. 14).
    pub const HIGH: PortRange = PortRange {
        lo: 1024,
        hi: u16::MAX,
    };

    /// An exact single-port range.
    pub fn exact(p: u16) -> Self {
        Self { lo: p, hi: p }
    }

    /// A closed range `lo..=hi`. Panics if reversed.
    pub fn new(lo: u16, hi: u16) -> Self {
        assert!(lo <= hi, "reversed port range {lo}-{hi}");
        Self { lo, hi }
    }

    /// True if this is a single port.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// True if this is the full wildcard.
    pub fn is_any(&self) -> bool {
        *self == Self::ANY
    }

    /// Does the range contain the port?
    pub fn contains(&self, p: u16) -> bool {
        p >= self.lo && p <= self.hi
    }

    /// Does this range contain (or equal) the other range?
    pub fn covers(&self, other: &PortRange) -> bool {
        self.lo <= other.lo && self.hi >= other.hi
    }

    /// The static two-level parent: exact port -> its half of the
    /// well-known/high split -> wildcard.
    pub fn static_parent(&self) -> Option<PortRange> {
        if self.is_any() {
            None
        } else if self.is_exact() {
            Some(if self.lo < 1024 {
                Self::WELL_KNOWN
            } else {
                Self::HIGH
            })
        } else {
            Some(Self::ANY)
        }
    }

    /// Number of ports covered.
    pub fn width(&self) -> u32 {
        (self.hi as u32) - (self.lo as u32) + 1
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            write!(f, "*")
        } else if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi)
        }
    }
}

/// A protocol dimension value: exact protocol or wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtoMatch {
    /// Any protocol.
    Any,
    /// One exact protocol.
    Exact(Proto),
}

impl ProtoMatch {
    /// Does this value match the protocol?
    pub fn contains(&self, p: Proto) -> bool {
        match self {
            ProtoMatch::Any => true,
            ProtoMatch::Exact(q) => *q == p,
        }
    }

    /// Does this value cover (or equal) the other value?
    pub fn covers(&self, other: &ProtoMatch) -> bool {
        match (self, other) {
            (ProtoMatch::Any, _) => true,
            (ProtoMatch::Exact(a), ProtoMatch::Exact(b)) => a == b,
            (ProtoMatch::Exact(_), ProtoMatch::Any) => false,
        }
    }
}

impl fmt::Display for ProtoMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoMatch::Any => write!(f, "*"),
            ProtoMatch::Exact(p) => write!(f, "{p}"),
        }
    }
}

/// A flow aggregate: one node in the five-dimensional generalisation lattice.
///
/// Printed in the paper's Fig. 14 layout:
/// `<src prefix> <dst prefix> <proto> <sport> <dport>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowAggregate {
    /// Source address generalisation.
    pub src: Prefix,
    /// Destination address generalisation.
    pub dst: Prefix,
    /// Protocol generalisation.
    pub proto: ProtoMatch,
    /// Source port generalisation.
    pub src_port: PortRange,
    /// Destination port generalisation.
    pub dst_port: PortRange,
}

impl FlowAggregate {
    /// The everything-wildcard aggregate.
    pub const ANY: FlowAggregate = FlowAggregate {
        src: Prefix::ANY,
        dst: Prefix::ANY,
        proto: ProtoMatch::Any,
        src_port: PortRange::ANY,
        dst_port: PortRange::ANY,
    };

    /// The most specific aggregate: exactly one five-tuple.
    pub fn exact(ft: &FiveTuple) -> Self {
        Self {
            src: Prefix::host(ft.src_ip),
            dst: Prefix::host(ft.dst_ip),
            proto: ProtoMatch::Exact(ft.proto),
            src_port: PortRange::exact(ft.src_port),
            dst_port: PortRange::exact(ft.dst_port),
        }
    }

    /// Does the aggregate match the exact flow?
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        self.src.contains(ft.src_ip)
            && self.dst.contains(ft.dst_ip)
            && self.proto.contains(ft.proto)
            && self.src_port.contains(ft.src_port)
            && self.dst_port.contains(ft.dst_port)
    }

    /// Does this aggregate cover (dominate) the other in every dimension?
    pub fn covers(&self, other: &FlowAggregate) -> bool {
        self.src.covers(&other.src)
            && self.dst.covers(&other.dst)
            && self.proto.covers(&other.proto)
            && self.src_port.covers(&other.src_port)
            && self.dst_port.covers(&other.dst_port)
    }

    /// A rough specificity measure: total number of constrained bits. Used
    /// only for ordering reports (more specific first).
    pub fn specificity(&self) -> u32 {
        let port_bits = |r: &PortRange| -> u32 {
            if r.is_any() {
                0
            } else if r.is_exact() {
                16
            } else {
                16u32.saturating_sub(32 - r.width().leading_zeros())
            }
        };
        // lint: lossy-cast-ok(prefix lengths are 0..=32 bits by construction)
        self.src.len() as u32
            // lint: lossy-cast-ok(prefix lengths are 0..=32 bits by construction)
            + self.dst.len() as u32
            + match self.proto {
                ProtoMatch::Any => 0,
                ProtoMatch::Exact(_) => 8,
            }
            + port_bits(&self.src_port)
            + port_bits(&self.dst_port)
    }
}

impl fmt::Display for FlowAggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.src, self.dst, self.proto, self.src_port, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple::new(
            parse_ip("100.0.0.1").unwrap(),
            parse_ip("32.0.0.1").unwrap(),
            2004,
            6004,
            Proto::TCP,
        )
    }

    #[test]
    fn ip_round_trip() {
        for s in ["0.0.0.0", "255.255.255.255", "100.0.0.1", "10.1.2.3"] {
            assert_eq!(fmt_ip(parse_ip(s).unwrap()), s);
        }
    }

    #[test]
    fn ip_parse_rejects_garbage() {
        assert!(parse_ip("1.2.3").is_none());
        assert!(parse_ip("1.2.3.4.5").is_none());
        assert!(parse_ip("1.2.3.256").is_none());
        assert!(parse_ip("a.b.c.d").is_none());
    }

    #[test]
    fn stable_hash_is_stable_and_spreads() {
        let a = ft();
        let mut b = ft();
        b.src_port = 2005;
        assert_eq!(a.stable_hash(), ft().stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p24 = Prefix::new(parse_ip("10.0.0.0").unwrap(), 24);
        assert!(p24.contains(parse_ip("10.0.0.200").unwrap()));
        assert!(!p24.contains(parse_ip("10.0.1.0").unwrap()));
        let p16 = Prefix::new(parse_ip("10.0.0.0").unwrap(), 16);
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p24.covers(&p24));
    }

    #[test]
    fn prefix_masks_constructor_input() {
        let p = Prefix::new(parse_ip("10.0.0.255").unwrap(), 24);
        assert_eq!(p.addr(), parse_ip("10.0.0.0").unwrap());
    }

    #[test]
    fn prefix_parent_chain_reaches_any() {
        let mut p = Prefix::host(parse_ip("1.2.3.4").unwrap());
        let mut steps = 0;
        while let Some(q) = p.parent() {
            assert!(q.covers(&p));
            p = q;
            steps += 1;
        }
        assert_eq!(steps, 32);
        assert!(p.is_any());
    }

    #[test]
    fn port_range_static_parent() {
        assert_eq!(
            PortRange::exact(80).static_parent(),
            Some(PortRange::WELL_KNOWN)
        );
        assert_eq!(
            PortRange::exact(2004).static_parent(),
            Some(PortRange::HIGH)
        );
        assert_eq!(PortRange::WELL_KNOWN.static_parent(), Some(PortRange::ANY));
        assert_eq!(PortRange::ANY.static_parent(), None);
    }

    #[test]
    fn port_range_covers() {
        assert!(PortRange::ANY.covers(&PortRange::exact(80)));
        assert!(PortRange::new(2000, 2008).covers(&PortRange::exact(2004)));
        assert!(!PortRange::new(2000, 2008).covers(&PortRange::exact(1999)));
    }

    #[test]
    fn aggregate_exact_matches_only_itself() {
        let a = FlowAggregate::exact(&ft());
        assert!(a.matches(&ft()));
        let mut other = ft();
        other.dst_port = 6005;
        assert!(!a.matches(&other));
    }

    #[test]
    fn aggregate_any_matches_everything_and_covers_exact() {
        let a = FlowAggregate::ANY;
        assert!(a.matches(&ft()));
        assert!(a.covers(&FlowAggregate::exact(&ft())));
        assert!(!FlowAggregate::exact(&ft()).covers(&a));
    }

    #[test]
    fn aggregate_display_matches_paper_layout() {
        let a = FlowAggregate {
            src: Prefix::host(parse_ip("100.0.0.1").unwrap()),
            dst: Prefix::ANY,
            proto: ProtoMatch::Exact(Proto::TCP),
            src_port: PortRange::HIGH,
            dst_port: PortRange::exact(80),
        };
        assert_eq!(a.to_string(), "100.0.0.1/32 * 6 1024-65535 80");
    }

    #[test]
    fn specificity_orders_exact_above_any() {
        let exact = FlowAggregate::exact(&ft());
        assert!(exact.specificity() > FlowAggregate::ANY.specificity());
        assert_eq!(FlowAggregate::ANY.specificity(), 0);
    }
}
