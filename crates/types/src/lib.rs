//! Shared vocabulary types for the Microscope reproduction.
//!
//! Everything downstream — the simulator, the runtime collector, the offline
//! trace reconstruction and the diagnosis core — speaks in terms of the types
//! defined here: nanosecond timestamps ([`Nanos`]), packets and their
//! [`FiveTuple`] flow keys, NF identities ([`NfId`], [`NfKind`]) and the
//! [`Topology`] DAG that connects traffic sources to NF instances.
//!
//! The crate is deliberately dependency-light (only `serde`) so that every
//! other crate in the workspace can depend on it without cycles.

#![forbid(unsafe_code)]

pub mod flow;
pub mod nf;
pub mod packet;
pub mod par;
pub mod time;
pub mod topology;
pub mod topology_text;

pub use flow::{fmt_ip, parse_ip, FiveTuple, FlowAggregate, PortRange, Prefix, Proto, ProtoMatch};
pub use nf::{NfId, NfKind, NodeId, SOURCE_NODE};
pub use packet::{Ipid, Packet, PacketId};
pub use par::{chunk_ranges, effective_threads, par_map};
pub use time::{
    ns_per_packet_to_pps, pps_to_ns_per_packet, Interval, Nanos, TimeDelta, MICROS, MILLIS, SECONDS,
};
pub use topology::{paper_topology, NfInfo, Topology, TopologyBuilder, TopologyError};
pub use topology_text::{emit_topology, parse_topology, TopologyTextError};
