//! Simulation time.
//!
//! The whole system uses a single monotonically increasing nanosecond clock.
//! Nanosecond resolution comfortably covers the paper's regime: packet
//! service times are hundreds of nanoseconds to a few microseconds, interrupts
//! are hundreds of microseconds, and experiments run for seconds. A `u64`
//! nanosecond counter wraps after ~584 years of simulated time, so wrapping is
//! not a concern.

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the start of the run.
pub type Nanos = u64;

/// A (signed) difference between two [`Nanos`] timestamps.
pub type TimeDelta = i64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECONDS: Nanos = 1_000_000_000;

/// A half-open time interval `[start, end)`.
///
/// Used for queuing periods, injected-fault windows and victim windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start of the interval.
    pub start: Nanos,
    /// Exclusive end of the interval.
    pub end: Nanos,
}

impl Interval {
    /// Creates `[start, end)`. Panics if `end < start`.
    pub fn new(start: Nanos, end: Nanos) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Self { start, end }
    }

    /// Length of the interval in nanoseconds.
    pub fn len(&self) -> Nanos {
        self.end - self.start
    }

    /// True if the interval contains no time at all.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// True if `t` falls inside `[start, end)`.
    pub fn contains(&self, t: Nanos) -> bool {
        t >= self.start && t < self.end
    }

    /// True if the two intervals share any instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection of two intervals, if non-empty.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// The smallest interval covering both inputs.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Converts a packets-per-second rate into the per-packet service time in
/// nanoseconds, rounding to the nearest nanosecond.
///
/// This is how NF peak processing rates (the paper's `r_i`, measured in pps)
/// are turned into simulator service costs and vice versa.
pub fn pps_to_ns_per_packet(pps: f64) -> Nanos {
    assert!(pps > 0.0, "rate must be positive");
    (1e9 / pps).round() as Nanos
}

/// Converts a per-packet service time in nanoseconds into packets per second.
pub fn ns_per_packet_to_pps(ns: Nanos) -> f64 {
    assert!(ns > 0, "service time must be positive");
    1e9 / ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = Interval::new(10, 20);
        assert_eq!(i.len(), 10);
        assert!(!i.is_empty());
        assert!(i.contains(10));
        assert!(i.contains(19));
        assert!(!i.contains(20));
        assert!(!i.contains(9));
    }

    #[test]
    fn empty_interval() {
        let i = Interval::new(5, 5);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert!(!i.contains(5));
    }

    #[test]
    #[should_panic(expected = "interval end")]
    fn reversed_interval_panics() {
        let _ = Interval::new(20, 10);
    }

    #[test]
    fn interval_overlap() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // Half-open: touching at a point is not overlap.
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn interval_hull() {
        let a = Interval::new(0, 10);
        let c = Interval::new(30, 40);
        assert_eq!(a.hull(&c), Interval::new(0, 40));
    }

    #[test]
    fn rate_conversions_round_trip() {
        // 1 Mpps -> 1000 ns/pkt -> 1 Mpps.
        let ns = pps_to_ns_per_packet(1_000_000.0);
        assert_eq!(ns, 1000);
        let pps = ns_per_packet_to_pps(ns);
        assert!((pps - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn rate_conversion_rounds() {
        // 3 Mpps -> 333.33 ns, rounds to 333.
        assert_eq!(pps_to_ns_per_packet(3_000_000.0), 333);
    }

    #[test]
    fn unit_constants() {
        assert_eq!(MICROS * 1000, MILLIS);
        assert_eq!(MILLIS * 1000, SECONDS);
    }
}
