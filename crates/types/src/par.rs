//! Deterministic fork-join helpers for the offline pipeline.
//!
//! Microscope's offline analysis is embarrassingly parallel by construction:
//! each victim's queuing-period diagnosis is independent, as is each NF's
//! per-edge record matching. These helpers shard such work across scoped
//! worker threads while keeping the result *bit-identical* to the sequential
//! path: every item's result is tagged with its index and the output is
//! merged back in input order, so callers observe the same `Vec` no matter
//! how many workers ran (or in what order they finished).
//!
//! Convention used across the workspace for thread counts:
//! * `0` — auto: one worker per available CPU;
//! * `1` — sequential (no threads spawned);
//! * `n` — `n` workers, clamped to the available CPUs.

/// Resolves a configured thread count (`0` = auto) to a concrete worker
/// count, never less than 1 and never more than the host's available
/// parallelism: extra workers on an oversubscribed host only add scheduling
/// overhead (measured as *negative* scaling on single-CPU machines), so
/// `--threads 4` on a 1-CPU host degrades to sequential.
pub fn effective_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if requested == 0 {
        hw
    } else {
        requested.min(hw)
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Items are striped across workers (worker `w` takes items `w`, `w + T`,
/// `w + 2T`, ...) for load balance; each result is merged back by its item
/// index, so the output is identical to `items.iter().map(f).collect()`
/// regardless of the worker count. With `threads <= 1` (after resolving
/// `0` = auto) no threads are spawned at all.
///
/// `f` receives `(index, &item)` so callers can reach sibling state without
/// threading it through the item type.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = effective_threads(threads).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        for h in handles {
            for (i, u) in h.join().expect("par_map worker panicked") {
                slots[i] = Some(u);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

/// Splits `0..len` into at most `effective_threads(threads)` contiguous
/// chunks of near-equal size, in order. Used when per-shard accumulation
/// must preserve input order inside each shard (concatenating the shard
/// results in chunk order then reproduces the sequential order exactly).
pub fn chunk_ranges(threads: usize, len: usize) -> Vec<std::ops::Range<usize>> {
    let workers = effective_threads(threads).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 4, 7, 16, 200] {
            let got = par_map(threads, &items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(3, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for threads in [1, 2, 3, 4, 5, 8] {
            for len in [0usize, 1, 2, 7, 64, 100] {
                let ranges = chunk_ranges(threads, len);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len, "threads={threads} len={len}");
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps_to_host() {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(effective_threads(0), hw);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(6), 6.min(hw));
        // Requesting more workers than CPUs never oversubscribes.
        assert_eq!(effective_threads(usize::MAX), hw);
    }
}
