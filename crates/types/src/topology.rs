//! The NF DAG: which NF instances exist and who feeds whom.
//!
//! The topology is shared by the simulator (to route packets), the trace
//! reconstruction (the path side channel of §5) and the diagnosis core
//! (upstream walks in the propagation analysis of §4.2). Nodes are NF
//! instances; the traffic source is an implicit extra node that feeds every
//! entry NF.

use crate::nf::{NfId, NfKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from [`TopologyBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced an NF id that was never added.
    UnknownNf(NfId),
    /// A self-loop or duplicate edge was added.
    BadEdge(NfId, NfId),
    /// The directed graph has a cycle (the system requires a DAG).
    Cycle,
    /// Two NFs share a name; names must be unique for reporting.
    DuplicateName(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNf(id) => write!(f, "edge references unknown NF {id}"),
            TopologyError::BadEdge(a, b) => write!(f, "bad edge {a} -> {b}"),
            TopologyError::Cycle => write!(f, "topology contains a cycle"),
            TopologyError::DuplicateName(n) => write!(f, "duplicate NF name {n:?}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Static description of one NF instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfInfo {
    /// Dense instance id.
    pub id: NfId,
    /// The NF type.
    pub kind: NfKind,
    /// Unique human-readable name (`"nat1"`, `"fw2"`, ...).
    pub name: String,
}

/// An immutable, validated DAG of NF instances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nfs: Vec<NfInfo>,
    /// `downstream[i]` = NFs fed by NF i.
    downstream: Vec<Vec<NfId>>,
    /// `upstream[i]` = NFs feeding NF i.
    upstream: Vec<Vec<NfId>>,
    /// NFs fed directly by the traffic source.
    entries: Vec<NfId>,
    /// NFs with no downstream (traffic exits here).
    exits: Vec<NfId>,
    /// Topological order over NF ids.
    topo_order: Vec<NfId>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of NF instances.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True if the topology has no NFs.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// Info for an NF id. Panics on out-of-range ids (they cannot be created
    /// legitimately).
    pub fn nf(&self, id: NfId) -> &NfInfo {
        &self.nfs[id.0 as usize]
    }

    /// All NFs in id order.
    pub fn nfs(&self) -> &[NfInfo] {
        &self.nfs
    }

    /// Looks an NF up by name.
    pub fn by_name(&self, name: &str) -> Option<NfId> {
        self.nfs.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// NFs directly downstream of `id`.
    pub fn downstream(&self, id: NfId) -> &[NfId] {
        &self.downstream[id.0 as usize]
    }

    /// NFs directly upstream of `id` (not including the source).
    pub fn upstream(&self, id: NfId) -> &[NfId] {
        &self.upstream[id.0 as usize]
    }

    /// Upstream *nodes* of `id`: its upstream NFs, plus the source if `id` is
    /// an entry NF. This is the neighbourhood the propagation analysis walks.
    pub fn upstream_nodes(&self, id: NfId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.upstream(id).iter().map(|&u| u.into()).collect();
        if self.entries.contains(&id) {
            nodes.push(NodeId::Source);
        }
        nodes
    }

    /// Entry NFs (fed by the source).
    pub fn entries(&self) -> &[NfId] {
        &self.entries
    }

    /// Exit NFs (no downstream; the collector records five-tuples here).
    pub fn exits(&self) -> &[NfId] {
        &self.exits
    }

    /// A topological order (upstream before downstream).
    pub fn topo_order(&self) -> &[NfId] {
        &self.topo_order
    }

    /// Is `a` an ancestor of (or equal to) `b` in the DAG?
    pub fn reaches(&self, a: NfId, b: NfId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![a];
        while let Some(n) = stack.pop() {
            for &d in self.downstream(n) {
                if d == b {
                    return true;
                }
                if seen.insert(d) {
                    stack.push(d);
                }
            }
        }
        false
    }

    /// The entry NF the flow-level load balancer sends `flow` to (§6.1:
    /// "Incoming traffic is load balanced at flow level based on the hash of
    /// packet header fields"). Both the simulator and the offline trace
    /// reconstruction use this one definition — the LB configuration is
    /// operator-known, which is what makes the path side channel of §5 work
    /// at the source hop.
    pub fn entry_for(&self, flow: &crate::flow::FiveTuple) -> NfId {
        assert!(!self.entries.is_empty(), "topology has no entry NFs");
        self.entries[(flow.stable_hash() % self.entries.len() as u64) as usize]
    }

    /// Sum over all NFs of their upstream-NF count — the paper's theoretical
    /// bound on the number of recursions (§5, "Offline diagnosis").
    pub fn recursion_bound(&self) -> usize {
        self.upstream.iter().map(|u| u.len()).sum::<usize>() + self.entries.len()
    }

    /// All source-to-`nf` paths (each a Vec of NF ids ending at `nf`,
    /// beginning at an entry NF). Used by tests and by the DAG propagation
    /// analysis. Paths are returned in a deterministic order.
    pub fn paths_to(&self, nf: NfId) -> Vec<Vec<NfId>> {
        let mut out = Vec::new();
        let mut current = vec![nf];
        self.walk_paths(nf, &mut current, &mut out);
        out
    }

    fn walk_paths(&self, nf: NfId, current: &mut Vec<NfId>, out: &mut Vec<Vec<NfId>>) {
        let ups = self.upstream(nf);
        if self.entries.contains(&nf) {
            let mut p = current.clone();
            p.reverse();
            out.push(p);
        }
        for &u in ups {
            current.push(u);
            self.walk_paths(u, current, out);
            current.pop();
        }
    }
}

/// Builder for [`Topology`]. Add NFs, then edges, then [`build`].
///
/// [`build`]: TopologyBuilder::build
#[derive(Default)]
pub struct TopologyBuilder {
    nfs: Vec<NfInfo>,
    edges: Vec<(NfId, NfId)>,
    entries: Vec<NfId>,
}

impl TopologyBuilder {
    /// Adds an NF instance and returns its id.
    pub fn add_nf(&mut self, kind: NfKind, name: impl Into<String>) -> NfId {
        // lint: lossy-cast-ok(topologies hold tens of NFs; NfId is u16 by wire-format design)
        let id = NfId(self.nfs.len() as u16);
        self.nfs.push(NfInfo {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Declares that the traffic source feeds `nf` directly.
    pub fn add_entry(&mut self, nf: NfId) -> &mut Self {
        if !self.entries.contains(&nf) {
            self.entries.push(nf);
        }
        self
    }

    /// Adds a directed edge `from -> to`.
    pub fn add_edge(&mut self, from: NfId, to: NfId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Validates and freezes the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let n = self.nfs.len();
        let valid = |id: NfId| (id.0 as usize) < n;

        let mut names = BTreeSet::new();
        for nf in &self.nfs {
            if !names.insert(nf.name.clone()) {
                return Err(TopologyError::DuplicateName(nf.name.clone()));
            }
        }

        let mut downstream = vec![Vec::new(); n];
        let mut upstream = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if !valid(a) {
                return Err(TopologyError::UnknownNf(a));
            }
            if !valid(b) {
                return Err(TopologyError::UnknownNf(b));
            }
            if a == b || downstream[a.0 as usize].contains(&b) {
                return Err(TopologyError::BadEdge(a, b));
            }
            downstream[a.0 as usize].push(b);
            upstream[b.0 as usize].push(a);
        }
        for e in &self.entries {
            if !valid(*e) {
                return Err(TopologyError::UnknownNf(*e));
            }
        }

        // Kahn's algorithm for a topological order; leftover nodes => cycle.
        let mut indeg: Vec<usize> = upstream.iter().map(|u| u.len()).collect();
        let mut queue: Vec<NfId> = (0..n as u16)
            .map(NfId)
            .filter(|i| indeg[i.0 as usize] == 0)
            .collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            topo_order.push(id);
            for &d in &downstream[id.0 as usize] {
                indeg[d.0 as usize] -= 1;
                if indeg[d.0 as usize] == 0 {
                    queue.push(d);
                }
            }
        }
        if topo_order.len() != n {
            return Err(TopologyError::Cycle);
        }
        topo_order.sort_by_key(|id| {
            // Stable deterministic order: longest distance from an entry,
            // then id. Compute distance by relaxation over the Kahn order.
            id.0
        });
        // Recompute a genuine topological order deterministically (the sort
        // above was only for tie-breaking within levels).
        let mut level = vec![0usize; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &d in &downstream[i] {
                    if level[d.0 as usize] < level[i] + 1 {
                        level[d.0 as usize] = level[i] + 1;
                        changed = true;
                    }
                }
            }
        }
        let mut topo_order: Vec<NfId> = (0..n as u16).map(NfId).collect();
        topo_order.sort_by_key(|id| (level[id.0 as usize], id.0));

        let exits: Vec<NfId> = (0..n as u16)
            .map(NfId)
            .filter(|id| downstream[id.0 as usize].is_empty())
            .collect();

        Ok(Topology {
            nfs: self.nfs,
            downstream,
            upstream,
            entries: self.entries,
            exits,
            topo_order,
        })
    }
}

/// Builds the paper's evaluation topology (Fig. 10): 4 NATs, 5 Firewalls,
/// 3 Monitors and 4 VPNs — 16 NF instances. Traffic is load-balanced over the
/// NATs; every NAT feeds every Firewall; Firewalls send rule-matched flows to
/// the Monitors and the rest to the VPNs; Monitors feed the VPNs.
pub fn paper_topology() -> Topology {
    let mut b = Topology::builder();
    let nats: Vec<NfId> = (1..=4)
        .map(|i| b.add_nf(NfKind::Nat, format!("nat{i}")))
        .collect();
    let fws: Vec<NfId> = (1..=5)
        .map(|i| b.add_nf(NfKind::Firewall, format!("fw{i}")))
        .collect();
    let mons: Vec<NfId> = (1..=3)
        .map(|i| b.add_nf(NfKind::Monitor, format!("mon{i}")))
        .collect();
    let vpns: Vec<NfId> = (1..=4)
        .map(|i| b.add_nf(NfKind::Vpn, format!("vpn{i}")))
        .collect();
    for &n in &nats {
        b.add_entry(n);
        for &f in &fws {
            b.add_edge(n, f);
        }
    }
    for &f in &fws {
        for &m in &mons {
            b.add_edge(f, m);
        }
        for &v in &vpns {
            b.add_edge(f, v);
        }
    }
    for &m in &mons {
        for &v in &vpns {
            b.add_edge(m, v);
        }
    }
    b.build().expect("paper topology is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let f = b.add_nf(NfKind::Firewall, "fw1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, f);
        b.add_edge(f, v);
        b.build().unwrap()
    }

    #[test]
    fn chain_structure() {
        let t = chain3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries(), &[NfId(0)]);
        assert_eq!(t.exits(), &[NfId(2)]);
        assert_eq!(t.downstream(NfId(0)), &[NfId(1)]);
        assert_eq!(t.upstream(NfId(2)), &[NfId(1)]);
        assert_eq!(t.topo_order(), &[NfId(0), NfId(1), NfId(2)]);
    }

    #[test]
    fn upstream_nodes_include_source_at_entry() {
        let t = chain3();
        assert_eq!(t.upstream_nodes(NfId(0)), vec![NodeId::Source]);
        assert_eq!(t.upstream_nodes(NfId(1)), vec![NodeId::Nf(NfId(0))]);
    }

    #[test]
    fn reaches_is_transitive_and_directed() {
        let t = chain3();
        assert!(t.reaches(NfId(0), NfId(2)));
        assert!(!t.reaches(NfId(2), NfId(0)));
        assert!(t.reaches(NfId(1), NfId(1)));
    }

    #[test]
    fn cycle_detection() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "a");
        let c = b.add_nf(NfKind::Vpn, "c");
        b.add_edge(a, c);
        b.add_edge(c, a);
        assert_eq!(b.build().unwrap_err(), TopologyError::Cycle);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "a");
        b.add_edge(a, a);
        assert_eq!(b.build().unwrap_err(), TopologyError::BadEdge(a, a));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "a");
        let c = b.add_nf(NfKind::Vpn, "c");
        b.add_edge(a, c);
        b.add_edge(a, c);
        assert_eq!(b.build().unwrap_err(), TopologyError::BadEdge(a, c));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = Topology::builder();
        b.add_nf(NfKind::Nat, "x");
        b.add_nf(NfKind::Vpn, "x");
        assert!(matches!(b.build(), Err(TopologyError::DuplicateName(_))));
    }

    #[test]
    fn unknown_nf_in_edge_rejected() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "a");
        b.add_edge(a, NfId(9));
        assert_eq!(b.build().unwrap_err(), TopologyError::UnknownNf(NfId(9)));
    }

    #[test]
    fn paper_topology_shape() {
        let t = paper_topology();
        assert_eq!(t.len(), 16);
        assert_eq!(t.entries().len(), 4);
        // VPNs are the exits.
        assert_eq!(t.exits().len(), 4);
        for &e in t.exits() {
            assert_eq!(t.nf(e).kind, NfKind::Vpn);
        }
        // Each firewall is fed by all 4 NATs.
        let fw1 = t.by_name("fw1").unwrap();
        assert_eq!(t.upstream(fw1).len(), 4);
        // Monitors sit between firewalls and VPNs.
        let mon1 = t.by_name("mon1").unwrap();
        assert_eq!(t.upstream(mon1).len(), 5);
        assert_eq!(t.downstream(mon1).len(), 4);
    }

    #[test]
    fn paper_topology_paths() {
        let t = paper_topology();
        let vpn1 = t.by_name("vpn1").unwrap();
        let paths = t.paths_to(vpn1);
        // 4 NATs × 5 FWs × (direct + via each of 3 monitors) = 80 paths.
        assert_eq!(paths.len(), 4 * 5 * 4);
        for p in &paths {
            assert_eq!(*p.last().unwrap(), vpn1);
            assert_eq!(t.nf(p[0]).kind, NfKind::Nat);
        }
    }

    #[test]
    fn recursion_bound_matches_paper_formula() {
        let t = paper_topology();
        // Σ_f N_upstream(f) + entry count.
        let expected: usize = t
            .nfs()
            .iter()
            .map(|n| t.upstream(n.id).len())
            .sum::<usize>()
            + t.entries().len();
        assert_eq!(t.recursion_bound(), expected);
    }

    #[test]
    fn topo_order_respects_edges() {
        let t = paper_topology();
        let pos: std::collections::HashMap<_, _> = t
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for nf in t.nfs() {
            for &d in t.downstream(nf.id) {
                assert!(pos[&nf.id] < pos[&d], "{} before {}", nf.id, d);
            }
        }
    }
}
