//! Smoke test of the full §6.2 accuracy pipeline on a short run: inject
//! known problems, diagnose with both tools, and check that Microscope
//! ranks the true culprit first for the clear majority of victims while
//! clearly beating NetMedic.

use msc_experiments::runner::candidate_flows;
use msc_experiments::scoring::{correct_rate, score_run};
use msc_experiments::{build_history, run_spec, InjectionPlan, PlanConfig, RunSpec};
use netmedic::{NetMedic, NetMedicConfig};
use nf_types::{paper_topology, MILLIS};

#[test]
fn microscope_beats_netmedic_on_injected_problems() {
    let mut spec = RunSpec::new(260 * MILLIS, 1_200_000.0, 17);
    spec.diagnosis.victims.max_victims = Some(600);
    let flows = candidate_flows(spec.rate_pps, spec.seed);
    spec.plan = InjectionPlan::random(
        &paper_topology(),
        spec.duration,
        &flows,
        &PlanConfig {
            n_bursts: 3,
            n_interrupts: 2,
            with_bug: true,
            ..Default::default()
        },
        spec.seed,
    );
    let run = run_spec(&spec);

    // §7: IPID-based reconstruction can occasionally fail; under burst-
    // induced ring overflows we tolerate a sub-0.01% mismatch rate.
    let mismatch_rate =
        run.recon.report.flow_mismatches as f64 / run.recon.report.delivered.max(1) as f64;
    assert!(mismatch_rate < 1e-4, "{:?}", run.recon.report);
    assert!(
        !run.out.journal.events.is_empty(),
        "injections must be journaled"
    );
    assert!(!run.diagnoses.is_empty(), "injections must create victims");

    let nm = NetMedic::new(run.topology.clone(), NetMedicConfig::default());
    let hist = build_history(
        &run.out,
        run.topology.len(),
        &run.peak_rates,
        nm.window_ns(),
    );
    let scored = score_run(&run, &nm, &hist);
    assert!(
        scored.len() > 50,
        "expected many attributable victims, got {}",
        scored.len()
    );

    let ms_ranks: Vec<usize> = scored.iter().map(|s| s.microscope_rank).collect();
    let nm_ranks: Vec<usize> = scored.iter().map(|s| s.netmedic_rank).collect();
    let ms_rate = correct_rate(&ms_ranks);
    let nm_rate = correct_rate(&nm_ranks);
    eprintln!(
        "victims {}  microscope rank-1 {:.1}%  netmedic rank-1 {:.1}%",
        scored.len(),
        ms_rate * 100.0,
        nm_rate * 100.0
    );
    // Shape of Fig. 11: Microscope's correct rate is high (the paper gets
    // 89.7%) and clearly above NetMedic's (36%).
    assert!(ms_rate > 0.6, "microscope correct rate {ms_rate}");
    assert!(
        ms_rate > nm_rate,
        "microscope {ms_rate} must beat netmedic {nm_rate}"
    );
}
