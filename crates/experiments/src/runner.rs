//! Building and running complete experiment scenarios.

use crate::inject::InjectionPlan;
use microscope::{Diagnosis, DiagnosisConfig, Microscope};
use msc_trace::{reconstruct, Reconstruction, ReconstructionConfig, Timelines};
use nf_sim::{paper_nf_configs, NfConfig, SimConfig, SimOutput, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig, Schedule};
use nf_types::{paper_topology, Nanos, Topology, MICROS, MILLIS};

/// Specification of one experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Simulated duration.
    pub duration: Nanos,
    /// Aggregate background rate in pps.
    pub rate_pps: f64,
    /// Master seed (traffic, plan, service noise).
    pub seed: u64,
    /// The injected problems.
    pub plan: InjectionPlan,
    /// Diagnosis configuration.
    pub diagnosis: DiagnosisConfig,
    /// Sample queue lengths at this granularity (Fig. 1/2 plots).
    pub queue_sample_every: Option<Nanos>,
}

impl RunSpec {
    /// A spec with paper-like defaults: 1.2 Mpps, no injections yet.
    pub fn new(duration: Nanos, rate_pps: f64, seed: u64) -> Self {
        Self {
            duration,
            rate_pps,
            seed,
            plan: InjectionPlan::default(),
            diagnosis: DiagnosisConfig::default(),
            queue_sample_every: None,
        }
    }
}

/// Everything one run produced: simulator ground truth, the offline
/// reconstruction and Microscope's diagnoses.
pub struct RunResult {
    /// The topology used.
    pub topology: Topology,
    /// Per-NF peak rates `r_i` handed to Microscope.
    pub peak_rates: Vec<f64>,
    /// Simulator output (ground truth + collector bundle).
    pub out: SimOutput,
    /// Offline trace reconstruction.
    pub recon: Reconstruction,
    /// Per-NF timelines.
    pub timelines: Timelines,
    /// Microscope diagnoses of all selected victims.
    pub diagnoses: Vec<Diagnosis>,
}

impl RunResult {
    /// Instance kind lookup for pattern aggregation.
    pub fn kind_of(&self) -> impl Fn(nf_types::NfId) -> nf_types::NfKind + '_ {
        |id| self.topology.nf(id).kind
    }
}

/// Runs a spec on the paper's 16-NF topology (Fig. 10).
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let topology = paper_topology();
    let nf_configs = paper_nf_configs(&topology);
    run_spec_on(spec, topology, nf_configs)
}

/// Runs a spec on an arbitrary topology.
pub fn run_spec_on(spec: &RunSpec, topology: Topology, nf_configs: Vec<NfConfig>) -> RunResult {
    let peak_rates: Vec<f64> = nf_configs
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();

    // Background traffic + the plan's extra traffic.
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: spec.rate_pps,
            ..Default::default()
        },
        spec.seed,
    );
    let background = gen.generate(0, spec.duration);
    let extra = spec.plan.extra_traffic(spec.duration);
    let schedule = Schedule::merge([background, extra]);
    let packets = schedule.finalize(0);

    let mut sim = Simulation::new(
        topology.clone(),
        nf_configs,
        SimConfig {
            seed: spec.seed.wrapping_add(1),
            queue_sample_every: spec.queue_sample_every,
            ..Default::default()
        },
    );
    for f in spec.plan.faults() {
        sim.add_fault(f);
    }
    for b in &spec.plan.bursts {
        sim.journal_burst(vec![b.flow], b.window());
    }
    let out = sim.run(&packets);

    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let ms = Microscope::new(topology.clone(), peak_rates.clone(), spec.diagnosis.clone());
    let diagnoses = ms.diagnose_all(&recon, &timelines);

    RunResult {
        topology,
        peak_rates,
        out,
        recon,
        timelines,
        diagnoses,
    }
}

/// The §6.5 "running in the wild" setting: high load (1.6 Mpps in the
/// paper), no *injected* problems, diagnosing the extreme latency tail.
///
/// Real servers are never quiet: the paper's testbed suffers natural
/// interrupts, context switches and cache pressure all the time (that is
/// what §6.5 diagnoses). The simulator's service model only carries
/// fine-grained jitter, so the wild run adds seeded "natural" stalls —
/// Poisson per NF (mean one per ~60 ms), 100 µs–1.2 ms long — standing in
/// for OS housekeeping. They are journaled (they *are* the ground truth of
/// this run) but nothing is ever injected into the traffic.
pub fn wild_run(duration: Nanos, rate_pps: f64, seed: u64, quantile: f64) -> RunResult {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let topology = paper_topology();
    let nf_configs = paper_nf_configs(&topology);
    let peak_rates: Vec<f64> = nf_configs
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();

    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, duration).finalize(0);

    let mut sim = Simulation::new(
        topology.clone(),
        nf_configs,
        SimConfig {
            seed: seed.wrapping_add(1),
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51D_CAFE);
    for nf in topology.nfs() {
        let mut t: f64 = rng.gen_range(0.0..60.0) * MILLIS as f64;
        while (t as Nanos) < duration {
            // Natural stalls sit in the same band as the paper's injected
            // interrupts (hundreds of µs to ~1.5 ms). With the bottleneck
            // VPNs near saturation, even these short stalls leave queues
            // that take tens of ms to drain — the Fig. 15 long tail —
            // and their squeezed releases push ring-scale delays onto
            // *other* packets downstream (Table 2's propagation).
            let stall = rng.gen_range(300.0..1_500.0) * MICROS as f64;
            sim.add_fault(nf_sim::Fault::Interrupt {
                nf: nf.id,
                at: t as Nanos,
                duration: stall as Nanos,
            });
            t += rng.gen_range(8.0..30.0) * MILLIS as f64;
        }
    }
    let out = sim.run(&packets);

    let recon = reconstruct(&topology, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let mut diag_cfg = DiagnosisConfig::default();
    diag_cfg.victims.latency = microscope::LatencyThreshold::Quantile(quantile);
    diag_cfg.victims.max_victims = Some(5_000);
    let ms = Microscope::new(topology.clone(), peak_rates.clone(), diag_cfg);
    let diagnoses = ms.diagnose_all(&recon, &timelines);

    RunResult {
        topology,
        peak_rates,
        out,
        recon,
        timelines,
        diagnoses,
    }
}

/// Picks plausible burst-victim flows for plan generation from a dry pass
/// of the traffic generator (the paper picks 5 random five-tuple flows from
/// the trace).
pub fn candidate_flows(rate_pps: f64, seed: u64) -> Vec<nf_types::FiveTuple> {
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    // Warm the generator slightly so slots churn once.
    let _ = gen.generate(0, 500 * MICROS);
    gen.active_flows().into_iter().take(64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::PlanConfig;
    use nf_types::MILLIS;

    #[test]
    fn small_run_end_to_end() {
        let mut spec = RunSpec::new(30 * MILLIS, 1_200_000.0, 5);
        let flows = candidate_flows(spec.rate_pps, spec.seed);
        spec.plan = InjectionPlan::random(
            &paper_topology(),
            spec.duration,
            &flows,
            &PlanConfig {
                n_bursts: 1,
                n_interrupts: 0,
                with_bug: false,
                start: 5 * MILLIS,
                ..Default::default()
            },
            spec.seed,
        );
        let r = run_spec(&spec);
        assert!(r.recon.report.total > 10_000);
        // §7: IPID reconstruction can confuse two same-IPID packets that
        // land in the same read batch (identical timing, identity swapped).
        // Keep the rate well under 0.1%.
        assert!(
            (r.recon.report.flow_mismatches as f64) < 1e-3 * r.recon.report.total as f64,
            "{:?}",
            r.recon.report
        );
        // The burst creates victims and diagnoses.
        assert!(!r.diagnoses.is_empty());
        // Journal carries the burst ground truth.
        assert_eq!(r.out.journal.events.len(), 1);
    }
}
