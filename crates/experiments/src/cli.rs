//! Minimal command-line parsing shared by the experiment binaries.
//!
//! All binaries accept the same knobs:
//!
//! ```text
//! --millis N    simulated run length in milliseconds
//! --rate R      aggregate offered rate in Mpps (e.g. 1.2)
//! --seed S      RNG seed
//! --out DIR     CSV output directory (default: results)
//! ```
//!
//! Parsing and CSV writing are fallible at the library layer
//! ([`Args::try_parse_from`], [`try_write_csv`]) so failures carry typed
//! context; the binary-facing wrappers ([`Args::parse`], [`write_csv`])
//! surface that context on stderr and exit instead of panicking.

use std::fmt;
use std::path::{Path, PathBuf};

/// A failure while parsing experiment arguments or writing CSV output.
#[derive(Debug)]
pub enum CliError {
    /// A flag was given without its value.
    MissingValue(String),
    /// A flag's value failed to parse.
    BadValue {
        /// The flag, e.g. `--millis`.
        flag: &'static str,
        /// What the flag wants, e.g. "an integer".
        want: &'static str,
        /// What was actually given.
        got: String,
    },
    /// Unrecognised argument.
    UnknownFlag(String),
    /// `--help` was requested; the payload is the rendered usage text.
    Help(String),
    /// A filesystem operation failed, tagged with the path involved.
    Io {
        /// What was being attempted, e.g. "create output dir".
        what: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "missing value after {flag}"),
            CliError::BadValue { flag, want, got } => {
                write!(f, "{flag} takes {want}, got {got:?}")
            }
            CliError::UnknownFlag(a) => write!(f, "unknown argument {a}"),
            CliError::Help(usage) => write!(f, "{usage}"),
            CliError::Io { what, path, source } => {
                write!(f, "{what} {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn exit_with(e: &CliError) -> ! {
    if let CliError::Help(usage) = e {
        eprintln!("{usage}");
        std::process::exit(0);
    }
    eprintln!("error: {e}");
    std::process::exit(2);
}

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Simulated duration in milliseconds.
    pub millis: u64,
    /// Offered rate in Mpps.
    pub rate_mpps: f64,
    /// Seed.
    pub seed: u64,
    /// CSV output directory.
    pub out: PathBuf,
}

impl Args {
    /// Parses `std::env::args`, with per-binary defaults. On error, prints
    /// the typed failure and usage to stderr and exits with status 2.
    pub fn parse(default_millis: u64, default_rate_mpps: f64) -> Args {
        match Self::try_parse_from(default_millis, default_rate_mpps, std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => exit_with(&e),
        }
    }

    /// Fallible parsing from an arbitrary argument iterator.
    pub fn try_parse_from<I>(
        default_millis: u64,
        default_rate_mpps: f64,
        argv: I,
    ) -> Result<Args, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut args = Args {
            millis: default_millis,
            rate_mpps: default_rate_mpps,
            seed: 42,
            out: PathBuf::from("results"),
        };
        let mut it = argv.into_iter();
        while let Some(a) = it.next() {
            let mut val =
                |flag: &'static str| it.next().ok_or(CliError::MissingValue(flag.to_string()));
            match a.as_str() {
                "--millis" => {
                    let v = val("--millis")?;
                    args.millis = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--millis",
                        want: "an integer",
                        got: v,
                    })?;
                }
                "--rate" => {
                    let v = val("--rate")?;
                    args.rate_mpps = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--rate",
                        want: "a float (Mpps)",
                        got: v,
                    })?;
                }
                "--seed" => {
                    let v = val("--seed")?;
                    args.seed = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--seed",
                        want: "an integer",
                        got: v,
                    })?;
                }
                "--out" => args.out = PathBuf::from(val("--out")?),
                "--help" | "-h" => {
                    return Err(CliError::Help(format!(
                        "options: --millis N  --rate MPPS  --seed S  --out DIR\n\
                         defaults: --millis {default_millis} --rate {default_rate_mpps} --seed 42 --out results"
                    )));
                }
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
        }
        Ok(args)
    }

    /// Duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.millis * nf_types::MILLIS
    }

    /// Rate in pps.
    pub fn rate_pps(&self) -> f64 {
        self.rate_mpps * 1e6
    }

    /// Ensures the output directory exists and returns the path of a CSV
    /// file inside it. Exits with status 2 if the directory can't be made.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        match self.try_csv_path(name) {
            Ok(p) => p,
            Err(e) => exit_with(&e),
        }
    }

    /// Fallible variant of [`Args::csv_path`].
    pub fn try_csv_path(&self, name: &str) -> Result<PathBuf, CliError> {
        std::fs::create_dir_all(&self.out).map_err(|source| CliError::Io {
            what: "create output dir",
            path: self.out.clone(),
            source,
        })?;
        Ok(self.out.join(name))
    }
}

/// Writes rows to a CSV file (first row = header). Exits with status 2 on
/// I/O failure, naming the path that failed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    if let Err(e) = try_write_csv(path, header, rows) {
        exit_with(&e);
    }
}

/// Fallible variant of [`write_csv`].
pub fn try_write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> Result<(), CliError> {
    use std::io::Write;
    let io = |what: &'static str| {
        move |source: std::io::Error| CliError::Io {
            what,
            path: path.to_path_buf(),
            source,
        }
    };
    let mut f = std::fs::File::create(path).map_err(io("create csv"))?;
    writeln!(f, "{}", header.join(",")).map_err(io("write csv header"))?;
    for r in rows {
        writeln!(f, "{}", r.join(",")).map_err(io("write csv row"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn defaults_and_conversions() {
        let a = Args {
            millis: 500,
            rate_mpps: 1.2,
            seed: 1,
            out: PathBuf::from("/tmp/x"),
        };
        assert_eq!(a.duration_ns(), 500_000_000);
        assert!((a.rate_pps() - 1.2e6).abs() < 1e-3);
    }

    #[test]
    fn try_parse_overrides_defaults() {
        let a = Args::try_parse_from(
            5,
            0.5,
            argv(&[
                "--millis", "20", "--rate", "1.5", "--seed", "7", "--out", "/tmp/o",
            ]),
        )
        .unwrap();
        assert_eq!(a.millis, 20);
        assert!((a.rate_mpps - 1.5).abs() < 1e-9);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, PathBuf::from("/tmp/o"));
    }

    #[test]
    fn try_parse_reports_typed_errors() {
        match Args::try_parse_from(5, 0.5, argv(&["--millis"])) {
            Err(CliError::MissingValue(f)) => assert_eq!(f, "--millis"),
            other => panic!("want MissingValue, got {other:?}"),
        }
        match Args::try_parse_from(5, 0.5, argv(&["--seed", "many"])) {
            Err(CliError::BadValue { flag, got, .. }) => {
                assert_eq!(flag, "--seed");
                assert_eq!(got, "many");
            }
            other => panic!("want BadValue, got {other:?}"),
        }
        match Args::try_parse_from(5, 0.5, argv(&["--frobnicate"])) {
            Err(CliError::UnknownFlag(f)) => assert_eq!(f, "--frobnicate"),
            other => panic!("want UnknownFlag, got {other:?}"),
        }
        match Args::try_parse_from(5, 0.5, argv(&["-h"])) {
            Err(CliError::Help(u)) => assert!(u.contains("--millis 5")),
            other => panic!("want Help, got {other:?}"),
        }
    }

    #[test]
    fn try_write_csv_surfaces_io_context() {
        let path = PathBuf::from("/nonexistent-dir-for-msc-test/x.csv");
        match try_write_csv(&path, &["a"], &[]) {
            Err(e @ CliError::Io { what, .. }) => {
                assert_eq!(what, "create csv");
                assert!(e.to_string().contains("/nonexistent-dir-for-msc-test"));
            }
            other => panic!("want Io error, got {other:?}"),
        }
    }
}
