//! Minimal command-line parsing shared by the experiment binaries.
//!
//! All binaries accept the same knobs:
//!
//! ```text
//! --millis N    simulated run length in milliseconds
//! --rate R      aggregate offered rate in Mpps (e.g. 1.2)
//! --seed S      RNG seed
//! --out DIR     CSV output directory (default: results)
//! ```

use std::path::PathBuf;

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Simulated duration in milliseconds.
    pub millis: u64,
    /// Offered rate in Mpps.
    pub rate_mpps: f64,
    /// Seed.
    pub seed: u64,
    /// CSV output directory.
    pub out: PathBuf,
}

impl Args {
    /// Parses `std::env::args`, with per-binary defaults.
    pub fn parse(default_millis: u64, default_rate_mpps: f64) -> Args {
        let mut args = Args {
            millis: default_millis,
            rate_mpps: default_rate_mpps,
            seed: 42,
            out: PathBuf::from("results"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut val = || {
                it.next()
                    .unwrap_or_else(|| panic!("missing value after {a}"))
            };
            match a.as_str() {
                "--millis" => args.millis = val().parse().expect("--millis takes an integer"),
                "--rate" => args.rate_mpps = val().parse().expect("--rate takes a float (Mpps)"),
                "--seed" => args.seed = val().parse().expect("--seed takes an integer"),
                "--out" => args.out = PathBuf::from(val()),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --millis N  --rate MPPS  --seed S  --out DIR\n\
                         defaults: --millis {default_millis} --rate {default_rate_mpps} --seed 42 --out results"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}"),
            }
        }
        args
    }

    /// Duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.millis * nf_types::MILLIS
    }

    /// Rate in pps.
    pub fn rate_pps(&self) -> f64 {
        self.rate_mpps * 1e6
    }

    /// Ensures the output directory exists and returns the path of a CSV
    /// file inside it.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create output dir");
        self.out.join(name)
    }
}

/// Writes rows to a CSV file (first row = header).
pub fn write_csv(path: &std::path::Path, header: &[&str], rows: &[Vec<String>]) {
    use std::io::Write;
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write row");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_conversions() {
        let a = Args {
            millis: 500,
            rate_mpps: 1.2,
            seed: 1,
            out: PathBuf::from("/tmp/x"),
        };
        assert_eq!(a.duration_ns(), 500_000_000);
        assert!((a.rate_pps() - 1_200_000.0).abs() < 1e-6);
    }

    #[test]
    fn csv_writer_round_trip() {
        let dir = std::env::temp_dir().join("msc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }
}
