//! Shared driver for the §6.2 accuracy experiments (Figs. 11–13, §6.3).

use crate::inject::{InjectionPlan, PlanConfig};
use crate::netmedic_adapter::build_history;
use crate::runner::{candidate_flows, run_spec, RunResult, RunSpec};
use crate::scoring::{score_run, ScoredVictim};
use netmedic::{NetMedic, NetMedicConfig};
use nf_types::{paper_topology, Nanos};

/// Runs the standard accuracy experiment: paper topology, CAIDA-like
/// background, randomised injections, Microscope + NetMedic scoring.
pub struct AccuracyRun {
    /// The run itself (ground truth, reconstruction, diagnoses).
    pub run: RunResult,
    /// Per-victim ranks for both tools.
    pub scored: Vec<ScoredVictim>,
}

/// Executes one accuracy run.
pub fn accuracy_run(
    duration: Nanos,
    rate_pps: f64,
    seed: u64,
    plan_cfg: &PlanConfig,
    max_victims: usize,
    nm_window: Nanos,
) -> AccuracyRun {
    let mut spec = RunSpec::new(duration, rate_pps, seed);
    spec.diagnosis.victims.max_victims = Some(max_victims);
    let flows = candidate_flows(rate_pps, seed);
    spec.plan = InjectionPlan::random(&paper_topology(), duration, &flows, plan_cfg, seed);
    let run = run_spec(&spec);

    let nm = NetMedic::new(
        run.topology.clone(),
        NetMedicConfig {
            window_ns: nm_window,
            ..Default::default()
        },
    );
    let hist = build_history(&run.out, run.topology.len(), &run.peak_rates, nm_window);
    let scored = score_run(&run, &nm, &hist);
    AccuracyRun { run, scored }
}

/// Re-scores an existing run with a different NetMedic window (Fig. 13).
pub fn rescore_with_window(run: &RunResult, window_ns: Nanos) -> Vec<ScoredVictim> {
    let nm = NetMedic::new(
        run.topology.clone(),
        NetMedicConfig {
            window_ns,
            ..Default::default()
        },
    );
    let hist = build_history(&run.out, run.topology.len(), &run.peak_rates, window_ns);
    score_run(run, &nm, &hist)
}
