//! Table 2: breakdown of problem frequencies by culprit and victim NF type
//! (wild run, no injections).
//!
//! Paper: rows = culprit (source / NAT / Firewall / Monitor / VPN), columns
//! = victim NF type; 21.7% of victims are caused by propagation (culprit at
//! a different NF than the victim), 10.9% by ≥2-hop propagation.

use msc_experiments::cli::{write_csv, Args};
use msc_experiments::runner::wild_run;
use msc_experiments::scoring::hop_distance;
use nf_types::{NfKind, NodeId};

fn main() {
    // The paper offers 1.6 Mpps, which put its crypto-bound VPNs at high
    // utilisation. Our VPN peak is 0.633 Mpps, so 2.0 Mpps aggregate
    // (0.5 Mpps per VPN, ~80%% util) matches the paper's *bottleneck
    // utilisation* rather than its absolute packet rate.
    let args = Args::parse(1_000, 2.1);
    let run = wild_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        // The paper diagnoses the 99.9th percentile of a one-minute 96M-
        // packet run (80K victims over many problem episodes). Our runs are
        // ~100x shorter, so the 99th percentile gives the same *breadth* of
        // episodes rather than just the single worst stall.
        0.99,
    );

    let kinds = [NfKind::Nat, NfKind::Firewall, NfKind::Monitor, NfKind::Vpn];
    let kind_col = |k: NfKind| kinds.iter().position(|&x| x == k).expect("known kind");
    // rows: 0 = source, 1.. = kinds.
    let mut counts = [[0f64; 4]; 5];
    let mut total = 0f64;
    let mut propagated = 0f64;
    let mut two_hop = 0f64;

    for d in &run.diagnoses {
        let Some(top) = d.culprits.first() else {
            continue;
        };
        let victim_kind = run.topology.nf(d.victim.nf).kind;
        let col = kind_col(victim_kind);
        let row = match top.node {
            NodeId::Source => 0,
            NodeId::Nf(nf) => 1 + kind_col(run.topology.nf(nf).kind),
        };
        counts[row][col] += 1.0;
        total += 1.0;
        let hops = hop_distance(&run.topology, top.node, d.victim.nf);
        if hops >= 1 {
            propagated += 1.0;
        }
        if hops >= 2 {
            two_hop += 1.0;
        }
    }
    assert!(total > 0.0, "no diagnoses — raise --millis");

    println!("# Table 2: % of problems per [culprit -> victim] pair (wild run)");
    println!(
        "{:>16} {:>9} {:>9} {:>9} {:>9}",
        "culprit\\victim", "NAT", "Firewall", "Monitor", "VPN"
    );
    let row_names = ["Traffic sources", "NAT", "Firewall", "Monitor", "VPN"];
    let mut rows = Vec::new();
    for (r, name) in row_names.iter().enumerate() {
        let vals: Vec<f64> = (0..4).map(|c| counts[r][c] / total * 100.0).collect();
        println!(
            "{:>16} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            name, vals[0], vals[1], vals[2], vals[3]
        );
        rows.push(
            std::iter::once(name.to_string())
                .chain(vals.iter().map(|v| format!("{v:.3}")))
                .collect(),
        );
    }
    write_csv(
        &args.csv_path("table2_breakdown.csv"),
        &[
            "culprit",
            "nat_pct",
            "firewall_pct",
            "monitor_pct",
            "vpn_pct",
        ],
        &rows,
    );

    println!("\n# Summary              paper     measured");
    println!(
        "propagated victims     21.7%     {:.1}%",
        propagated / total * 100.0
    );
    println!(
        ">=2-hop propagation    10.9%     {:.1}%",
        two_hop / total * 100.0
    );
    println!("victims analysed       80K       {}", total as u64);
}
