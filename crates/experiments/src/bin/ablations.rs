//! Ablation study of the design choices DESIGN.md calls out.
//!
//! **A. Reconstruction side channels (§5).** The paper resolves IPID
//! ambiguity with three side channels: paths, timing and order. We re-run
//! reconstruction on one loaded run with each channel weakened and report
//! the per-packet error rate against ground truth (the path channel is
//! structural and cannot be removed without removing the topology itself).
//!
//! **B. Recursive diagnosis (§4.3).** Diagnosing the same injected-interrupt
//! victims with recursion disabled (`max_depth = 0`) shows how much of the
//! accuracy comes from walking blame upstream rather than stopping at the
//! victim NF's own queue.

use microscope::{DiagnosisConfig, Microscope};
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::scoring::{attribute_event, correct_rate, microscope_rank};
use msc_trace::{reconstruct, ReconstructionConfig, Timelines};
use nf_sim::{paper_nf_configs, Fault, PacketOutcome, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, MICROS, MILLIS, SECONDS};

fn main() {
    let args = Args::parse(150, 1.6);

    // --- A: matching side channels -----------------------------------
    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    let mut sim = Simulation::new(topo.clone(), cfgs.clone(), SimConfig::default());
    // Long stalls at several NFs create deep queues, ring overflows (stale
    // send-stream heads) and cross-edge reordering: the regime where the
    // disambiguation channels work hardest.
    for (name, at_ms) in [("nat1", 30u64), ("nat3", 60), ("fw2", 90), ("vpn2", 120)] {
        sim.add_fault(Fault::Interrupt {
            nf: topo.by_name(name).expect("paper topo"),
            at: at_ms * MILLIS,
            duration: 1_500 * MICROS,
        });
    }
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: args.rate_pps(),
            // Few packets per flow: IPIDs stay small and collide heavily.
            active_flows: 4096,
            ..Default::default()
        },
        args.seed,
    );
    let background = gen.generate(0, args.duration_ns());
    // Line-rate bursts overflow entry rings: dropped packets leave stale
    // heads in the send streams, which the timing channel exists to skip.
    let burst_flows = msc_experiments::runner::candidate_flows(args.rate_pps(), args.seed);
    let bursts: Vec<_> = (0..4u64)
        .map(|i| {
            nf_traffic::burst(
                burst_flows[i as usize],
                (20 + i * 35) * MILLIS,
                4_000,
                125,
                64,
            )
        })
        .collect();
    let packets =
        nf_traffic::Schedule::merge(std::iter::once(background).chain(bursts)).finalize(0);
    let out = sim.run(&packets);
    let truth_drops = out.fates.iter().filter(|f| f.dropped()).count();
    println!(
        "# scenario: {} packets, {} ground-truth drops\n",
        out.fates.len(),
        truth_drops
    );

    // Variant axes: IPID width (identity bits per packet) × side channels.
    // At the full 16 bits the path+order structure of §5 already resolves
    // nearly everything; shrinking the IPID to 10/8 bits multiplies the
    // collisions and shows how much the order (lookahead) and timing
    // channels then contribute.
    let mask_bundle = |bits: u32| -> msc_collector::TraceBundle {
        let mask: u16 = if bits >= 16 {
            0xffff
        } else {
            (1u16 << bits) - 1
        };
        let mut b = out.bundle.clone();
        for log in &mut b.logs {
            for r in &mut log.rx {
                for i in &mut r.ipids {
                    *i &= mask;
                }
            }
            for t in &mut log.tx {
                for i in &mut t.ipids {
                    *i &= mask;
                }
            }
            for f in &mut log.flows {
                f.ipid &= mask;
            }
        }
        for f in &mut b.source_flows {
            f.ipid &= mask;
        }
        b
    };
    let channel_cfgs: Vec<(&str, ReconstructionConfig)> = vec![
        ("full", ReconstructionConfig::default()),
        ("no-order", {
            let mut c = ReconstructionConfig::default();
            c.matching.use_order_channel = false;
            c
        }),
        ("no-timing", {
            // A delay bound longer than the run disables the timing filter.
            let mut c = ReconstructionConfig::default();
            c.matching.delay_bound_ns = 10 * SECONDS;
            c
        }),
    ];

    println!("# A: reconstruction error rate vs IPID width × §5 side channels");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "ipid", "channels", "wrong_pkts", "error_rate", "ambiguities", "unmatched"
    );
    let mut rows = Vec::new();
    for bits in [16u32, 10, 8] {
        let bundle = mask_bundle(bits);
        for (name, cfg) in &channel_cfgs {
            let recon = reconstruct(&topo, &bundle, cfg);
            let mut wrong = 0u64;
            for (tr, fate) in recon.traces.iter().zip(&out.fates) {
                let ok = match (&tr.outcome, &fate.outcome) {
                    (msc_trace::TraceOutcome::Delivered(a), PacketOutcome::Delivered(b)) => a == b,
                    (
                        msc_trace::TraceOutcome::InferredDrop { nf, .. },
                        PacketOutcome::Dropped { nf: n2, .. },
                    ) => nf == n2,
                    (msc_trace::TraceOutcome::Unresolved, PacketOutcome::InFlight) => true,
                    _ => false,
                };
                if !ok || tr.flow != fate.packet.flow {
                    wrong += 1;
                }
            }
            let rate = wrong as f64 / out.fates.len() as f64;
            println!(
                "{:>6} {:>10} {:>12} {:>11.4}% {:>14} {:>12}",
                bits,
                name,
                wrong,
                rate * 100.0,
                recon.report.ambiguities,
                recon.report.unmatched_rx
            );
            rows.push(vec![
                bits.to_string(),
                name.to_string(),
                wrong.to_string(),
                format!("{rate:.6}"),
                recon.report.ambiguities.to_string(),
                recon.report.unmatched_rx.to_string(),
            ]);
        }
    }
    write_csv(
        &args.csv_path("ablation_matching.csv"),
        &[
            "ipid_bits",
            "channels",
            "wrong_pkts",
            "error_rate",
            "ambiguities",
            "unmatched_rx",
        ],
        &rows,
    );

    // --- B: recursion in the diagnosis --------------------------------
    // A dedicated moderate-load run where victims are cleanly attributable
    // to the injected interrupts (the §6.2 methodology): recursion is what
    // lets a *downstream* victim's blame reach the stalled upstream NF.
    let mut sim = Simulation::new(topo.clone(), cfgs.clone(), SimConfig::default());
    for (name, at_ms) in [("nat1", 25u64), ("nat2", 70), ("fw3", 115)] {
        sim.add_fault(Fault::Interrupt {
            nf: topo.by_name(name).expect("paper topo"),
            at: at_ms * MILLIS,
            duration: 1_000 * MICROS,
        });
    }
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 1_200_000.0,
            ..Default::default()
        },
        args.seed ^ 0xB,
    );
    let packets = gen.generate(0, 160 * MILLIS).finalize(0);
    let out = sim.run(&packets);
    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();

    println!("\n# B: diagnosis accuracy with and without recursion (§4.3)");
    println!("{:>12} {:>10} {:>12}", "variant", "victims", "rank1_rate");
    let mut rows = Vec::new();
    for (name, depth) in [("recursive", 16usize), ("no-recursion", 0)] {
        let mut dc = DiagnosisConfig {
            max_depth: depth,
            ..Default::default()
        };
        dc.victims.max_victims = Some(1_500);
        let engine = Microscope::new(topo.clone(), rates.clone(), dc);
        let diagnoses = engine.diagnose_all(&recon, &timelines);
        // Score only victims observed in the 10 ms after an interrupt, at a
        // *different* NF — the propagated victims recursion exists for.
        let ranks: Vec<usize> = diagnoses
            .iter()
            .filter_map(|d| {
                let (_, ev) = attribute_event(&out.journal.events, d.victim.observed_ts)?;
                let w = ev.window();
                if d.victim.observed_ts > w.end + 10 * MILLIS {
                    return None;
                }
                if ev.culprit_node() == nf_types::NodeId::Nf(d.victim.nf) {
                    return None;
                }
                Some(microscope_rank(d, ev))
            })
            .collect();
        let rate = correct_rate(&ranks);
        println!("{name:>12} {:>10} {rate:>12.3}", ranks.len());
        rows.push(vec![
            name.to_string(),
            ranks.len().to_string(),
            format!("{rate:.4}"),
        ]);
    }
    write_csv(
        &args.csv_path("ablation_recursion.csv"),
        &["variant", "victims", "rank1_rate"],
        &rows,
    );
    println!("\n# Findings: identity bits dominate reconstruction accuracy (errors grow ~3x");
    println!("# from 16-bit to 8-bit IPIDs); the lookahead refinement and timing bound");
    println!("# add nothing *on top of* the per-edge FIFO cursor structure in this");
    println!("# workload — the strong form of the order channel is structural in the");
    println!("# matcher, and the unit tests (Fig. 9 case) cover where lookahead is");
    println!("# decisive. Recursion is essential: disabling it collapses rank-1");
    println!("# accuracy on propagated victims by ~3.5x.");
}
