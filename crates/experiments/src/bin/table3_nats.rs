//! Table 3: frequency differences for problems caused by individual NAT
//! instances (wild run).
//!
//! Paper: although traffic is spread evenly over the NATs, NAT1 and NAT3
//! cause visibly more problems than NAT2 and NAT4 — temporal unevenness
//! (interrupt/jitter luck), not load imbalance.

use msc_experiments::cli::{write_csv, Args};
use msc_experiments::runner::wild_run;
use nf_types::{NfKind, NodeId};

fn main() {
    // The paper offers 1.6 Mpps, which put its crypto-bound VPNs at high
    // utilisation. Our VPN peak is 0.633 Mpps, so 2.0 Mpps aggregate
    // (0.5 Mpps per VPN, ~80%% util) matches the paper's *bottleneck
    // utilisation* rather than its absolute packet rate.
    let args = Args::parse(1_000, 2.1);
    let run = wild_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        // The paper diagnoses the 99.9th percentile of a one-minute 96M-
        // packet run (80K victims over many problem episodes). Our runs are
        // ~100x shorter, so the 99th percentile gives the same *breadth* of
        // episodes rather than just the single worst stall.
        0.99,
    );

    let kinds = [NfKind::Nat, NfKind::Firewall, NfKind::Monitor, NfKind::Vpn];
    let kind_col = |k: NfKind| kinds.iter().position(|&x| x == k).expect("known kind");
    let nats: Vec<_> = run
        .topology
        .nfs()
        .iter()
        .filter(|n| n.kind == NfKind::Nat)
        .map(|n| (n.id, n.name.clone()))
        .collect();

    let mut counts = vec![[0f64; 4]; nats.len()];
    let mut processed = vec![0u64; nats.len()];
    let mut total = 0f64;
    for d in &run.diagnoses {
        total += 1.0;
        let Some(top) = d.culprits.first() else {
            continue;
        };
        let NodeId::Nf(nf) = top.node else { continue };
        if let Some(row) = nats.iter().position(|(id, _)| *id == nf) {
            counts[row][kind_col(run.topology.nf(d.victim.nf).kind)] += 1.0;
        }
    }
    for (i, (id, _)) in nats.iter().enumerate() {
        processed[i] = run.out.nf_stats[id.0 as usize].processed;
    }
    assert!(total > 0.0, "no diagnoses — raise --millis");

    println!("# Table 3: % of problems caused by each NAT instance (wild run)");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>14}",
        "culprit", "NAT", "Firewall", "Monitor", "VPN", "pkts_processed"
    );
    let mut rows = Vec::new();
    for (i, (_, name)) in nats.iter().enumerate() {
        let vals: Vec<f64> = (0..4).map(|c| counts[i][c] / total * 100.0).collect();
        println!(
            "{:>8} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>14}",
            name, vals[0], vals[1], vals[2], vals[3], processed[i]
        );
        rows.push(
            std::iter::once(name.clone())
                .chain(vals.iter().map(|v| format!("{v:.3}")))
                .chain(std::iter::once(processed[i].to_string()))
                .collect(),
        );
    }
    write_csv(
        &args.csv_path("table3_nats.csv"),
        &[
            "nat",
            "nat_pct",
            "firewall_pct",
            "monitor_pct",
            "vpn_pct",
            "pkts_processed",
        ],
        &rows,
    );

    // The paper's observation: traffic is even, impact is not.
    let tot_per_nat: Vec<f64> = (0..nats.len())
        .map(|i| counts[i].iter().sum::<f64>())
        .collect();
    let max = tot_per_nat.iter().cloned().fold(0.0, f64::max);
    let min = tot_per_nat.iter().cloned().fold(f64::INFINITY, f64::min);
    let p_max = processed.iter().max().copied().unwrap_or(0) as f64;
    let p_min = processed.iter().min().copied().unwrap_or(0) as f64;
    println!("\n# Summary (paper: traffic even across NATs, problem counts uneven)");
    println!(
        "processed-packet spread across NATs: {:.1}% (even load)",
        (p_max - p_min) / p_max.max(1.0) * 100.0
    );
    if min > 0.0 {
        println!(
            "problem-count ratio worst/best NAT: {:.2}x (uneven impact)",
            max / min
        );
    } else {
        println!("problem-count ratio worst/best NAT: inf (uneven impact)");
    }
}
