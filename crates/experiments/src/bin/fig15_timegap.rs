//! Figure 15: the culprit→victim time gap in the wild.
//!
//! One-minute CAIDA traffic at 1.6 Mpps in the paper; Microscope diagnoses
//! the 99.9th-percentile latency victims (80K of them). The CDF of the gap
//! between each causal relation's culprit activity and its victim runs from
//! 0 to 91 ms — half under 1.5 ms, a long tail to ~91 ms — which is why no
//! single correlation window can work.

use msc_experiments::cli::{write_csv, Args};
use msc_experiments::runner::wild_run;
use nf_types::MILLIS;

fn main() {
    // The paper offers 1.6 Mpps, which put its crypto-bound VPNs at high
    // utilisation. Our VPN peak is 0.633 Mpps, so 2.0 Mpps aggregate
    // (0.5 Mpps per VPN, ~80%% util) matches the paper's *bottleneck
    // utilisation* rather than its absolute packet rate.
    let args = Args::parse(1_000, 2.1);
    let run = wild_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        // The paper diagnoses the 99.9th percentile of a one-minute 96M-
        // packet run (80K victims over many problem episodes). Our runs are
        // ~100x shorter, so the 99th percentile gives the same *breadth* of
        // episodes rather than just the single worst stall.
        0.99,
    );

    println!(
        "# wild run: {} packets, {} victims diagnosed",
        run.recon.report.total,
        run.diagnoses.len()
    );

    // Gap of every (victim, culprit) causal relation: victim observation
    // minus the start of the culprit's activity window.
    let mut gaps_ms: Vec<f64> = Vec::new();
    for d in &run.diagnoses {
        for c in &d.culprits {
            let gap = d.victim.observed_ts.saturating_sub(c.window.start);
            gaps_ms.push(gap as f64 / MILLIS as f64);
        }
    }
    assert!(!gaps_ms.is_empty(), "no causal relations — raise --millis");
    gaps_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));

    println!("\n# Fig 15: CDF of the culprit->victim time gap");
    println!("{:>8} {:>10}", "cdf", "gap_ms");
    let mut rows = Vec::new();
    for pct in [1, 5, 10, 25, 50, 75, 90, 95, 99, 100] {
        let idx = ((pct as f64 / 100.0 * gaps_ms.len() as f64).ceil() as usize)
            .clamp(1, gaps_ms.len())
            - 1;
        println!("{:>7}% {:>10.3}", pct, gaps_ms[idx]);
        rows.push(vec![pct.to_string(), format!("{:.4}", gaps_ms[idx])]);
    }
    write_csv(
        &args.csv_path("fig15_timegap_cdf.csv"),
        &["cdf_pct", "gap_ms"],
        &rows,
    );

    let median = gaps_ms[gaps_ms.len() / 2];
    let max = *gaps_ms.last().expect("non-empty");
    println!("\n# Summary (paper: half under 1.5 ms, long tail reaching 91 ms)");
    println!(
        "median gap {median:.2} ms, max gap {max:.2} ms, {} relations",
        gaps_ms.len()
    );
}
