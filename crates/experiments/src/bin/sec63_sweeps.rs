//! §6.3 detailed evaluation: accuracy vs burst size, interrupt length and
//! propagation hop count.
//!
//! Paper findings: accuracy rises with burst size (rank-1 for all victims
//! at 5000 packets), rises with interrupt length (≈all at 1500 µs), and
//! falls as the problem propagates over more hops.

use msc_experiments::accuracy::accuracy_run;
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::PlanConfig;
use msc_experiments::scoring::correct_rate;
use nf_types::{MICROS, MILLIS};

/// Victims more than this far behind their attributed event are mostly
/// natural clump noise (the run injects nothing else, so the generous
/// 100 ms attribution slack would hoover them all up); the paper keeps
/// injections "separate enough in time so we unambiguously know the ground
/// truth" — this is the equivalent hygiene for our noisy background.
const TIGHT_GAP: u64 = 15 * MILLIS;

fn main() {
    let args = Args::parse(250, 1.2);

    // ---- Accuracy vs burst size --------------------------------------
    println!("# §6.3a: Microscope accuracy vs burst size (paper: 200–5000 pkts)");
    println!(
        "{:>12} {:>10} {:>12}",
        "burst_pkts", "victims", "rank1_rate"
    );
    let mut rows = Vec::new();
    for &size in &[200u64, 500, 1000, 2500, 5000] {
        let acc = accuracy_run(
            args.duration_ns(),
            args.rate_pps(),
            args.seed,
            &PlanConfig {
                n_bursts: 4,
                burst_size: (size, size),
                n_interrupts: 0,
                with_bug: false,
                ..Default::default()
            },
            800,
            10 * MILLIS,
        );
        let ranks: Vec<usize> = acc
            .scored
            .iter()
            .filter(|s| s.gap_ns < TIGHT_GAP)
            .map(|s| s.microscope_rank)
            .collect();
        let rate = correct_rate(&ranks);
        println!("{size:>12} {:>10} {rate:>12.3}", ranks.len());
        rows.push(vec![
            size.to_string(),
            ranks.len().to_string(),
            format!("{rate:.4}"),
        ]);
    }
    write_csv(
        &args.csv_path("sec63a_burst_size.csv"),
        &["burst_pkts", "victims", "rank1_rate"],
        &rows,
    );

    // ---- Accuracy vs interrupt length --------------------------------
    println!("\n# §6.3b: Microscope accuracy vs interrupt length (paper: 300–1500 µs)");
    println!("{:>12} {:>10} {:>12}", "intr_us", "victims", "rank1_rate");
    let mut rows = Vec::new();
    for &us in &[300u64, 600, 900, 1200, 1500] {
        let acc = accuracy_run(
            args.duration_ns(),
            args.rate_pps(),
            args.seed,
            &PlanConfig {
                n_bursts: 0,
                n_interrupts: 4,
                interrupt_len: (us * MICROS, us * MICROS),
                with_bug: false,
                ..Default::default()
            },
            800,
            10 * MILLIS,
        );
        let ranks: Vec<usize> = acc
            .scored
            .iter()
            .filter(|s| s.gap_ns < TIGHT_GAP)
            .map(|s| s.microscope_rank)
            .collect();
        let rate = correct_rate(&ranks);
        println!("{us:>12} {:>10} {rate:>12.3}", ranks.len());
        rows.push(vec![
            us.to_string(),
            ranks.len().to_string(),
            format!("{rate:.4}"),
        ]);
    }
    write_csv(
        &args.csv_path("sec63b_interrupt_len.csv"),
        &["interrupt_us", "victims", "rank1_rate"],
        &rows,
    );

    // ---- Accuracy vs propagation hops --------------------------------
    println!("\n# §6.3c: Microscope accuracy vs propagation hop count");
    println!("{:>8} {:>10} {:>12}", "hops", "victims", "rank1_rate");
    let acc = accuracy_run(
        2 * args.duration_ns(),
        args.rate_pps(),
        args.seed,
        &PlanConfig::default(),
        3_000,
        10 * MILLIS,
    );
    let mut rows = Vec::new();
    for hops in 0..=3usize {
        let ranks: Vec<usize> = acc
            .scored
            .iter()
            .filter(|s| s.hops == hops && s.gap_ns < TIGHT_GAP)
            .map(|s| s.microscope_rank)
            .collect();
        if ranks.is_empty() {
            continue;
        }
        let rate = correct_rate(&ranks);
        println!("{hops:>8} {:>10} {rate:>12.3}", ranks.len());
        rows.push(vec![
            hops.to_string(),
            ranks.len().to_string(),
            format!("{rate:.4}"),
        ]);
    }
    write_csv(
        &args.csv_path("sec63c_hops.csv"),
        &["hops", "victims", "rank1_rate"],
        &rows,
    );
    println!("\n(paper: accuracy decreases as the impact propagates over more hops)");
}
