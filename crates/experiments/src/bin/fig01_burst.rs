//! Figure 1: a traffic burst into a single Firewall.
//!
//! "We send CAIDA traffic to a Firewall. At 570 µs, we inject a bursty flow
//! which lasts 340 µs. (a) All the other flows arriving in the next 3 ms
//! experience long latency. (b) The input queue quickly builds up but then
//! takes around 3 ms to drain."
//!
//! Prints the per-50µs mean latency of background packets (Fig. 1a) and the
//! firewall's queue-length series (Fig. 1b), and writes both as CSV.

use msc_experiments::cli::{write_csv, Args};
use nf_sim::{single_nf_topology, SimConfig, Simulation};
use nf_traffic::{burst, CaidaLike, CaidaLikeConfig, Schedule};
use nf_types::{FiveTuple, NfKind, Proto, MICROS, MILLIS};

fn main() {
    let args = Args::parse(6, 1.44);
    let (topo, cfgs) = single_nf_topology(NfKind::Firewall);

    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: args.rate_pps(),
            ..Default::default()
        },
        args.seed,
    );
    let background = gen.generate(0, args.duration_ns());
    // The burst: 340 µs at ~2 Mpps ≈ 670 packets, starting at 570 µs. With
    // the background at 1.44 Mpps and the firewall peak at ~1.64 Mpps this
    // builds a ~600-packet queue that needs ~3 ms of the ~0.2 Mpps spare
    // capacity to drain — the Fig. 1b shape.
    let burst_flow = FiveTuple::new(
        nf_types::parse_ip("100.0.0.1").expect("ip"),
        nf_types::parse_ip("32.0.0.1").expect("ip"),
        5555,
        80,
        Proto::TCP,
    );
    let burst_sched = burst(burst_flow, 570 * MICROS, 667, 510, 64);

    let sim = Simulation::new(
        topo,
        cfgs,
        SimConfig {
            seed: args.seed,
            queue_sample_every: Some(10 * MICROS),
            ..Default::default()
        },
    );
    let out = sim.run(&Schedule::merge([background, burst_sched]).finalize(0));

    // (a) Mean background latency per 50 µs of arrival time.
    let bucket = 50 * MICROS;
    let n = (args.duration_ns() / bucket + 1) as usize;
    let mut sums = vec![(0.0f64, 0u64); n];
    for f in &out.fates {
        if f.packet.flow == burst_flow {
            continue;
        }
        if let Some(l) = f.latency() {
            let b = ((f.packet.created_at / bucket) as usize).min(n - 1);
            sums[b].0 += l as f64 / 1_000.0;
            sums[b].1 += 1;
        }
    }
    println!("# Fig 1a: background packet latency vs arrival time");
    println!("{:>10} {:>14}", "time_ms", "latency_us");
    let mut rows_a = Vec::new();
    for (i, &(s, c)) in sums.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let t_ms = i as f64 * bucket as f64 / MILLIS as f64;
        let lat = s / c as f64;
        println!("{t_ms:>10.2} {lat:>14.1}");
        rows_a.push(vec![format!("{t_ms:.3}"), format!("{lat:.2}")]);
    }
    write_csv(
        &args.csv_path("fig01a_latency.csv"),
        &["time_ms", "latency_us"],
        &rows_a,
    );

    // (b) Queue length series.
    println!("\n# Fig 1b: firewall input queue length");
    println!("{:>10} {:>10}", "time_ms", "queue_len");
    let mut rows_b = Vec::new();
    let mut peak = 0usize;
    let mut drain_ms = 0.0f64;
    for &(t, len) in &out.queue_series[0] {
        let t_ms = t as f64 / MILLIS as f64;
        if len > peak {
            peak = len;
        }
        if len > 10 {
            drain_ms = t_ms;
        }
        if t % (50 * MICROS) < 10 * MICROS {
            println!("{t_ms:>10.2} {len:>10}");
        }
        rows_b.push(vec![format!("{t_ms:.3}"), len.to_string()]);
    }
    write_csv(
        &args.csv_path("fig01b_queue.csv"),
        &["time_ms", "queue_len"],
        &rows_b,
    );

    println!("\n# Summary (paper: queue peaks ~600 and takes ~3 ms to drain)");
    println!("peak queue length : {peak}");
    println!("queue back under 10 packets at ~{drain_ms:.2} ms (burst ended at 0.91 ms)");
}
