//! §6.4: effectiveness of pattern aggregation, quantitatively.
//!
//! Paper: 84K packet-level causal relations aggregate to ~80 patterns in
//! about three minutes; the bug-triggering flows appear among the top
//! culprit patterns. We measure relation count, pattern count, aggregation
//! runtime and the compression ratio.

use autofocus::{aggregate_patterns, PatternConfig};
use microscope::diagnoses_to_relations;
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::{paper_bug_aggregate, paper_bug_flows, BugSpec, InjectionPlan};
use msc_experiments::runner::{run_spec, RunSpec};
use nf_types::{paper_topology, MICROS, MILLIS};
use std::time::Instant;

fn main() {
    let args = Args::parse(500, 1.2);
    let topo = paper_topology();
    let fw2 = topo.by_name("fw2").expect("fw2 exists");

    let mut spec = RunSpec::new(args.duration_ns(), args.rate_pps(), args.seed);
    spec.diagnosis.victims.max_victims = Some(4_000);
    spec.plan = InjectionPlan {
        bug: Some(BugSpec {
            nf: fw2,
            matches: paper_bug_aggregate(),
            per_packet_ns: 20 * MICROS,
            trigger_flows: paper_bug_flows(),
            period: 30 * MILLIS,
            flow_size: 100,
        }),
        ..Default::default()
    };
    let run = run_spec(&spec);
    let relations = diagnoses_to_relations(&run.recon, &run.diagnoses);

    // Sweep the aggregation threshold to show the report-size trade-off
    // (§4.4: "operators can adjust the aggregation threshold th").
    println!("# §6.4: pattern aggregation effectiveness");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "threshold", "relations", "patterns", "compression", "runtime_ms"
    );
    let mut rows = Vec::new();
    for th in [0.005f64, 0.01, 0.02, 0.05] {
        let mut cfg = PatternConfig::default();
        cfg.cluster.threshold = th;
        let t0 = Instant::now();
        let patterns = aggregate_patterns(&relations, &cfg, &run.kind_of());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let compression = relations.len() as f64 / patterns.len().max(1) as f64;
        println!(
            "{:>12} {:>12} {:>12} {:>13.0}x {:>12.1}",
            th,
            relations.len(),
            patterns.len(),
            compression,
            ms
        );
        rows.push(vec![
            th.to_string(),
            relations.len().to_string(),
            patterns.len().to_string(),
            format!("{compression:.1}"),
            format!("{ms:.2}"),
        ]);
    }
    write_csv(
        &args.csv_path("sec64_aggregation.csv"),
        &[
            "threshold",
            "relations",
            "patterns",
            "compression",
            "runtime_ms",
        ],
        &rows,
    );

    println!("\n(paper: 84K relations -> 80 patterns at th=1%; ours scale with the shorter run)");
}
