//! Figure 14 / §6.4: pattern aggregation finds the bug-triggering flows.
//!
//! CAIDA-like traffic at 1.2 Mpps plus TCP flows 100.0.0.1→32.0.0.1 with
//! source ports 2000–2008 and destination ports 6000–6008 that trigger a
//! slow path at one firewall. Microscope knows nothing about the bug; the
//! aggregated causal patterns must surface those flows as culprits at the
//! buggy firewall (four of the paper's patterns do).

use autofocus::{aggregate_patterns, PatternConfig};
use microscope::diagnoses_to_relations;
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::{paper_bug_aggregate, paper_bug_flows, BugSpec, InjectionPlan};
use msc_experiments::runner::{run_spec, RunSpec};
use nf_types::{paper_topology, MICROS, MILLIS};
use std::time::Instant;

fn main() {
    let args = Args::parse(500, 1.2);
    let topo = paper_topology();
    let fw2 = topo.by_name("fw2").expect("paper topology has fw2");

    let mut spec = RunSpec::new(args.duration_ns(), args.rate_pps(), args.seed);
    spec.diagnosis.victims.max_victims = Some(3_000);
    spec.plan = InjectionPlan {
        bug: Some(BugSpec {
            nf: fw2,
            matches: paper_bug_aggregate(),
            per_packet_ns: 20 * MICROS, // 0.05 Mpps slow path
            trigger_flows: paper_bug_flows(),
            period: 40 * MILLIS,
            flow_size: 100,
        }),
        ..Default::default()
    };
    let run = run_spec(&spec);

    let relations = diagnoses_to_relations(&run.recon, &run.diagnoses);
    println!(
        "# {} packet-level causal relations (paper: 84K over 5 s)",
        relations.len()
    );

    let t0 = Instant::now();
    let patterns = aggregate_patterns(
        &relations,
        &PatternConfig::default(), // th = 1%, as §6.1
        &run.kind_of(),
    );
    let elapsed = t0.elapsed();
    println!(
        "# aggregated to {} patterns in {:.2?} (paper: ~80 patterns, ~3 min)",
        patterns.len(),
        elapsed
    );

    println!(
        "\n# Fig 14 — top patterns: <culprit 5-tuple> <loc> => <victim 5-tuple> <loc> : score"
    );
    let mut rows = Vec::new();
    for p in patterns.iter().take(20) {
        println!("{p}");
        rows.push(vec![p.to_string().replace(',', ";")]);
    }
    write_csv(&args.csv_path("fig14_patterns.csv"), &["pattern"], &rows);

    // Count the patterns whose culprit side matches the bug-trigger flows
    // at fw2 (the paper found four such patterns in its snippet).
    let agg = paper_bug_aggregate();
    let hits = patterns
        .iter()
        .filter(|p| {
            paper_bug_flows().iter().any(|f| p.culprit.flow.matches(f))
                && agg.src.covers(&p.culprit.flow.src)
                && p.culprit.loc == autofocus::LocationAgg::Exact(autofocus::Location::Nf(fw2))
        })
        .count();
    println!("\n# patterns naming bug-trigger flows at fw2: {hits}");
    assert!(hits > 0, "pattern aggregation must surface the bug flows");

    // The adaptive port-range extension merges the per-port rows.
    let merged = aggregate_patterns(
        &relations,
        &PatternConfig {
            adaptive_ports: true,
            ..Default::default()
        },
        &run.kind_of(),
    );
    println!(
        "# with adaptive port ranges (paper's suggested optimisation): {} patterns",
        merged.len()
    );
    for p in merged.iter().take(5) {
        println!("{p}");
    }
}
