//! Figure 3: different impacts from similar behaviours.
//!
//! A NAT (heavy traffic) and a Monitor (light traffic) both feed a VPN;
//! flow A goes to the VPN directly. Both upstreams take an interrupt at the
//! same instant. All flows lose packets at the VPN afterwards, but the
//! NAT's resumed burst dominates — visible in the per-upstream input-rate
//! changes at the VPN (Fig. 3c), which is how Microscope quantifies the
//! relative contribution.

use msc_experiments::cli::{write_csv, Args};
use msc_experiments::series::{drop_series, input_rate_series};
use nf_sim::{Fault, NfConfig, ScenarioBuilder, SimConfig, Simulation};
use nf_traffic::{cbr, Schedule};
use nf_types::{FiveTuple, NfKind, Proto, MICROS, MILLIS};

fn main() {
    let args = Args::parse(5, 0.25); // --rate sets the NAT feed (Mpps)

    let mut sb = ScenarioBuilder::new();
    let nat = sb.nf(NfKind::Nat, "nat1");
    let mon = sb.nf(NfKind::Monitor, "mon1");
    let vpn = sb.nf(NfKind::Vpn, "vpn1");
    sb.entry(nat);
    sb.entry(mon);
    sb.entry(vpn);
    sb.edge(nat, vpn);
    sb.edge(mon, vpn);
    let (topo, mut cfgs) = sb.build();
    // A small VPN ring makes the loss visible with the paper's 0.25/0.05
    // Mpps feeds (the testbed VPN had other tenants competing for it).
    cfgs[vpn.0 as usize].queue_capacity = 128;
    let cfgs: Vec<NfConfig> = cfgs;

    // Pin one CBR flow per entry by searching the LB hash.
    let pick = |entry, base_port: u16| -> FiveTuple {
        (0u16..)
            .map(|p| FiveTuple::new(0x0c000001, 0x20000001, base_port + p, 443, Proto::UDP))
            .find(|f| topo.entry_for(f) == entry)
            .expect("some tuple hashes to the entry")
    };
    let nat_flow = pick(nat, 10_000);
    let mon_flow = pick(mon, 20_000);
    let a_flow = pick(vpn, 30_000);

    let dur = args.duration_ns();
    let sched = Schedule::merge([
        cbr(nat_flow, 0, dur, args.rate_pps(), 64), // 0.25 Mpps (paper)
        cbr(mon_flow, 0, dur, args.rate_pps() / 5.0, 64), // 0.05 Mpps
        cbr(a_flow, 0, dur, 100_000.0, 64),
    ]);

    let mut sim = Simulation::new(
        topo,
        cfgs,
        SimConfig {
            seed: args.seed,
            queue_sample_every: Some(10 * MICROS),
            ..Default::default()
        },
    );
    // Interrupts at the same time on both upstreams (paper: "interrupts at
    // the same time").
    for nf in [nat, mon] {
        sim.add_fault(Fault::Interrupt {
            nf,
            at: 600 * MICROS,
            duration: 900 * MICROS,
        });
    }
    let out = sim.run(&sched.finalize(0));

    let bucket = 100 * MICROS;
    let rate_nat = input_rate_series(&out, vpn, bucket, |f| *f == nat_flow);
    let rate_mon = input_rate_series(&out, vpn, bucket, |f| *f == mon_flow);
    let rate_a = input_rate_series(&out, vpn, bucket, |f| *f == a_flow);
    let drops_nat = drop_series(&out, vpn, bucket, |f| *f == nat_flow);
    let drops_mon = drop_series(&out, vpn, bucket, |f| *f == mon_flow);
    let drops_a = drop_series(&out, vpn, bucket, |f| *f == a_flow);

    println!("# Fig 3b: packet drops at the VPN per 100 µs   |   Fig 3c: input rates (Mpps)");
    println!(
        "{:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "time_ms", "d_nat", "d_mon", "d_A", "in_nat", "in_mon", "in_A"
    );
    let mut rows = Vec::new();
    for i in 0..rate_nat.len() {
        let t_ms = rate_nat[i].0 as f64 / MILLIS as f64;
        println!(
            "{:>8.1} {:>8} {:>8} {:>8} | {:>8.3} {:>8.3} {:>8.3}",
            t_ms,
            drops_nat[i].1,
            drops_mon[i].1,
            drops_a[i].1,
            rate_nat[i].1,
            rate_mon[i].1,
            rate_a[i].1
        );
        rows.push(vec![
            format!("{t_ms:.2}"),
            drops_nat[i].1.to_string(),
            drops_mon[i].1.to_string(),
            drops_a[i].1.to_string(),
            format!("{:.4}", rate_nat[i].1),
            format!("{:.4}", rate_mon[i].1),
            format!("{:.4}", rate_a[i].1),
        ]);
    }
    write_csv(
        &args.csv_path("fig03_drops_rates.csv"),
        &[
            "time_ms",
            "drops_nat",
            "drops_mon",
            "drops_a",
            "rate_nat_mpps",
            "rate_mon_mpps",
            "rate_a_mpps",
        ],
        &rows,
    );

    // Quantify the dominance: peak input-rate increase over nominal.
    let nominal_nat = args.rate_pps() / 1e6;
    let nominal_mon = nominal_nat / 5.0;
    let peak_nat = rate_nat.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let peak_mon = rate_mon.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let total_drops: u64 = out.drops.len() as u64;
    println!("\n# Summary (paper: the NAT's post-interrupt burst dominates the losses)");
    println!(
        "input-rate surge: NAT {:.3}->{:.3} Mpps (+{:.3}), Monitor {:.3}->{:.3} Mpps (+{:.3})",
        nominal_nat,
        peak_nat,
        peak_nat - nominal_nat,
        nominal_mon,
        peak_mon,
        peak_mon - nominal_mon
    );
    println!("total drops at the VPN: {total_drops}");
    assert!(
        peak_nat - nominal_nat > 2.0 * (peak_mon - nominal_mon),
        "NAT surge should dominate"
    );
}
