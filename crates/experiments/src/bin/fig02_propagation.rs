//! Figure 2: impact propagation across NFs.
//!
//! A NAT feeds a VPN with CAIDA-like traffic at a constant rate; flow A
//! goes directly to the VPN. The NAT takes a CPU interrupt during
//! [0.5 ms, 1.3 ms]; when it resumes it releases a squeezed burst, and flow
//! A's throughput at the VPN collapses around [1.5 ms, 2.3 ms] even though
//! flow A never touches the NAT and never overlaps the interrupt.
//!
//! Prints flow A throughput, NAT-traffic throughput at the VPN (Fig. 2b)
//! and the VPN queue length (Fig. 2c).

use msc_experiments::cli::{write_csv, Args};
use msc_experiments::series::throughput_series;
use nf_sim::{Fault, NfConfig, RoutePolicy, ScenarioBuilder, SimConfig, Simulation};
use nf_traffic::{cbr, CaidaLike, CaidaLikeConfig, Schedule};
use nf_types::{FiveTuple, NfKind, Proto, MICROS, MILLIS};

fn main() {
    let args = Args::parse(5, 0.42);

    // nat -> vpn, with the vpn also a direct entry (for flow A).
    let mut sb = ScenarioBuilder::new();
    let nat = sb.nf(NfKind::Nat, "nat1");
    let vpn = sb.nf(NfKind::Vpn, "vpn1");
    sb.entry(nat);
    sb.entry(vpn);
    sb.edge(nat, vpn);
    let (topo, cfgs) = sb.build();
    let cfgs: Vec<NfConfig> = cfgs
        .into_iter()
        .enumerate()
        .map(|(i, mut c)| {
            if i == nat.0 as usize {
                c.route = RoutePolicy::Fixed(vpn);
            }
            c
        })
        .collect();

    // Background flows must enter at the NAT, flow A at the VPN: pick flows
    // by the load-balancer hash (the LB is flow-level, so we select tuples
    // that hash where we need them — exactly how an operator pins flows).
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 2.0 * args.rate_pps(), // half will be filtered out
            ..Default::default()
        },
        args.seed,
    );
    let background: Schedule = Schedule::from_entries(
        gen.generate(0, args.duration_ns())
            .entries()
            .into_iter()
            .filter(|e| topo.entry_for(&e.flow) == nat)
            .collect(),
    );
    let flow_a = (0u16..)
        .map(|p| FiveTuple::new(0x0b000001, 0x20000001, 40_000 + p, 443, Proto::UDP))
        .find(|f| topo.entry_for(f) == vpn)
        .expect("some tuple hashes to the vpn entry");
    let a_sched = cbr(flow_a, 0, args.duration_ns(), 150_000.0, 64);

    let mut sim = Simulation::new(
        topo,
        cfgs,
        SimConfig {
            seed: args.seed,
            queue_sample_every: Some(10 * MICROS),
            ..Default::default()
        },
    );
    // With the crypto-bound VPN at ~0.63 Mpps peak and 0.42 + 0.15 Mpps of
    // offered load (~90% utilisation), the NAT's post-interrupt release
    // pushes the VPN well past saturation — the Fig. 2 regime.
    sim.add_fault(Fault::Interrupt {
        nf: nat,
        at: 500 * MICROS,
        duration: 800 * MICROS,
    });
    let out = sim.run(&Schedule::merge([background, a_sched]).finalize(0));

    let bucket = 100 * MICROS;
    let a_tp = throughput_series(&out, bucket, |f| *f == flow_a);
    let nat_tp = throughput_series(&out, bucket, |f| *f != flow_a);

    println!("# Fig 2b: throughput at the VPN (Mpps), interrupt at NAT 0.5-1.3 ms");
    println!(
        "{:>9} {:>10} {:>14}",
        "time_ms", "flow_A", "traffic_from_NAT"
    );
    let mut rows = Vec::new();
    for (i, &(t, a)) in a_tp.iter().enumerate() {
        let n = nat_tp.get(i).map_or(0.0, |&(_, v)| v);
        let t_ms = t as f64 / MILLIS as f64;
        println!("{t_ms:>9.1} {a:>10.3} {n:>14.3}");
        rows.push(vec![
            format!("{t_ms:.2}"),
            format!("{a:.4}"),
            format!("{n:.4}"),
        ]);
    }
    write_csv(
        &args.csv_path("fig02b_throughput.csv"),
        &["time_ms", "flow_a_mpps", "nat_traffic_mpps"],
        &rows,
    );

    println!("\n# Fig 2c: VPN queue length");
    let mut rows = Vec::new();
    for &(t, len) in &out.queue_series[vpn.0 as usize] {
        rows.push(vec![
            format!("{:.3}", t as f64 / MILLIS as f64),
            len.to_string(),
        ]);
    }
    write_csv(
        &args.csv_path("fig02c_queue.csv"),
        &["time_ms", "queue_len"],
        &rows,
    );
    let peak = out.queue_series[vpn.0 as usize]
        .iter()
        .map(|&(_, l)| l)
        .max()
        .unwrap_or(0);
    let peak_t = out.queue_series[vpn.0 as usize]
        .iter()
        .max_by_key(|&&(_, l)| l)
        .map_or(0.0, |&(t, _)| t as f64 / MILLIS as f64);

    // Flow A's worst throughput bucket after the interrupt.
    let min_a = a_tp
        .iter()
        .filter(|&&(t, _)| t > 1_300 * MICROS)
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .copied()
        .unwrap_or((0, 0.0));

    println!("\n# Summary (paper: VPN queue builds ~1.5 ms AFTER the interrupt starts,");
    println!("# and flow A's throughput dips although it never crosses the NAT)");
    println!("VPN queue peak {} packets at {:.2} ms", peak, peak_t);
    println!(
        "flow A throughput floor after interrupt: {:.3} Mpps at {:.2} ms (nominal 0.150)",
        min_a.1,
        min_a.0 as f64 / MILLIS as f64
    );
}
