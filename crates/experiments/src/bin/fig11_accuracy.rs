//! Figure 11: overall diagnostic accuracy of Microscope vs NetMedic.
//!
//! Paper result: Microscope ranks the correct cause first for 89.7% of
//! victim packets; NetMedic only 36% (and ≤5 for 66%). We regenerate the
//! rank CDF for both tools on the 16-NF topology with injected bursts,
//! interrupts and a firewall bug.

use msc_experiments::accuracy::accuracy_run;
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::PlanConfig;
use msc_experiments::scoring::{balance_by_event, correct_rate, rank_cdf};
use nf_types::MILLIS;

fn main() {
    let args = Args::parse(600, 1.2);
    let acc = accuracy_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        &PlanConfig::default(),
        2_000,
        10 * MILLIS,
    );
    // Balance victims across injected events so burst floods don't
    // drown the interrupt/bug victims (paper: victims of each problem).
    let scored = balance_by_event(&acc.scored, 150);
    assert!(!scored.is_empty(), "no attributable victims — run longer");

    let ms: Vec<usize> = scored.iter().map(|s| s.microscope_rank).collect();
    let nm: Vec<usize> = scored.iter().map(|s| s.netmedic_rank).collect();

    println!("# Fig 11: rank of the correct cause (cumulative % of victim packets)");
    println!("{:>12} {:>12} {:>12}", "cum_pct", "microscope", "netmedic");
    let ms_cdf = rank_cdf(&ms);
    let nm_cdf = rank_cdf(&nm);
    let mut rows = Vec::new();
    for pct in (5..=100).step_by(5) {
        let idx =
            ((pct as f64 / 100.0 * ms_cdf.len() as f64).ceil() as usize).clamp(1, ms_cdf.len()) - 1;
        println!("{:>12} {:>12} {:>12}", pct, ms_cdf[idx].1, nm_cdf[idx].1);
        rows.push(vec![
            pct.to_string(),
            ms_cdf[idx].1.to_string(),
            nm_cdf[idx].1.to_string(),
        ]);
    }
    write_csv(
        &args.csv_path("fig11_rank_cdf.csv"),
        &["cum_pct_victims", "microscope_rank", "netmedic_rank"],
        &rows,
    );

    let ms_r1 = correct_rate(&ms) * 100.0;
    let nm_r1 = correct_rate(&nm) * 100.0;
    let nm_r5 = nm.iter().filter(|&&r| r <= 5).count() as f64 / nm.len() as f64 * 100.0;
    println!("\n# Summary           paper     measured");
    println!("victims scored      -         {}", scored.len());
    println!("Microscope rank-1   89.7%     {ms_r1:.1}%");
    println!("NetMedic rank-1     36%       {nm_r1:.1}%");
    println!("NetMedic rank<=5    66%       {nm_r5:.1}%");
    println!(
        "improvement factor  up to 2.5x {:.1}x",
        if nm_r1 > 0.0 {
            ms_r1 / nm_r1
        } else {
            f64::INFINITY
        }
    );
}
