//! §6.2 runtime overhead: peak-throughput degradation caused by the
//! collector.
//!
//! Paper: "between 0.88% and 2.33% for different NFs", measured at peak
//! throughput (the worst case). We drive each NF kind past saturation with
//! the collector on and off and compare the achieved processing rates.

use msc_collector::CollectorConfig;
use msc_experiments::cli::{write_csv, Args};
use nf_sim::{single_nf_topology, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::NfKind;

fn peak_rate(kind: NfKind, enabled: bool, millis: u64, seed: u64) -> f64 {
    let (topo, cfgs) = single_nf_topology(kind);
    let sim = Simulation::new(
        topo,
        cfgs,
        SimConfig {
            seed,
            collector: CollectorConfig {
                enabled,
                ..Default::default()
            },
            record_fates: false,
            ..Default::default()
        },
    );
    // Overdrive: 3 Mpps into every kind saturates all of them.
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps: 3_000_000.0,
            ..Default::default()
        },
        seed,
    );
    let packets = gen.generate(0, millis * nf_types::MILLIS).finalize(0);
    let out = sim.run(&packets);
    out.nf_stats[0].rate_pps(out.duration)
}

fn main() {
    let args = Args::parse(200, 3.0);
    println!("# §6.2: collector overhead at peak throughput per NF kind");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "nf_kind", "off_mpps", "on_mpps", "overhead"
    );
    let mut rows = Vec::new();
    for kind in [NfKind::Nat, NfKind::Firewall, NfKind::Monitor, NfKind::Vpn] {
        let off = peak_rate(kind, false, args.millis, args.seed);
        let on = peak_rate(kind, true, args.millis, args.seed);
        let overhead = (off - on) / off * 100.0;
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>11.2}%",
            kind.to_string(),
            off / 1e6,
            on / 1e6,
            overhead
        );
        rows.push(vec![
            kind.to_string(),
            format!("{:.4}", off / 1e6),
            format!("{:.4}", on / 1e6),
            format!("{overhead:.3}"),
        ]);
    }
    write_csv(
        &args.csv_path("overhead.csv"),
        &["nf_kind", "peak_off_mpps", "peak_on_mpps", "overhead_pct"],
        &rows,
    );
    println!("\n(paper: 0.88%–2.33% depending on the NF; worst case, at peak load)");
}
