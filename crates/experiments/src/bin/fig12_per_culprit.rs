//! Figure 12: diagnostic accuracy per injected culprit type.
//!
//! Paper: (a) traffic bursts — Microscope rank-1 for 99.8%, NetMedic for
//! only 3.7% (39.9% rank-2); (b) interrupts — 85.0% vs 52.8%; (c) NF bugs —
//! 73.0% (95.5% ≤2) vs 63.3%.

use msc_experiments::accuracy::accuracy_run;
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::PlanConfig;
use msc_experiments::scoring::{balance_by_event, correct_rate, rank_cdf};
use nf_types::MILLIS;

fn main() {
    let args = Args::parse(800, 1.2);
    let acc = accuracy_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        &PlanConfig {
            n_bursts: 6,
            n_interrupts: 6,
            with_bug: true,
            ..Default::default()
        },
        3_000,
        10 * MILLIS,
    );

    let balanced = balance_by_event(&acc.scored, 200);
    let mut rows = Vec::new();
    for (kind, paper_ms, paper_nm) in [
        ("burst", "99.8%", "3.7%"),
        ("interrupt", "85.0%", "52.8%"),
        ("bug", "73.0%", "63.3%"),
    ] {
        let ms: Vec<usize> = balanced
            .iter()
            .filter(|s| s.event_kind == kind)
            .map(|s| s.microscope_rank)
            .collect();
        let nm: Vec<usize> = balanced
            .iter()
            .filter(|s| s.event_kind == kind)
            .map(|s| s.netmedic_rank)
            .collect();
        if ms.is_empty() {
            println!("# {kind}: no victims in this run (rerun with more --millis)");
            continue;
        }
        let ms_r1 = correct_rate(&ms) * 100.0;
        let nm_r1 = correct_rate(&nm) * 100.0;
        let ms_r2 = ms.iter().filter(|&&r| r <= 2).count() as f64 / ms.len() as f64 * 100.0;
        println!("# Fig 12 ({kind}): n={}", ms.len());
        println!(
            "  Microscope rank-1: measured {ms_r1:.1}%  (paper {paper_ms})   rank<=2 {ms_r2:.1}%"
        );
        println!("  NetMedic   rank-1: measured {nm_r1:.1}%  (paper {paper_nm})");
        // Decile CDF rows for the CSV.
        let ms_cdf = rank_cdf(&ms);
        let nm_cdf = rank_cdf(&nm);
        for pct in (10..=100).step_by(10) {
            let idx = ((pct as f64 / 100.0 * ms_cdf.len() as f64).ceil() as usize)
                .clamp(1, ms_cdf.len())
                - 1;
            rows.push(vec![
                kind.to_string(),
                pct.to_string(),
                ms_cdf[idx].1.to_string(),
                nm_cdf[idx].1.to_string(),
            ]);
        }
    }
    write_csv(
        &args.csv_path("fig12_per_culprit.csv"),
        &[
            "culprit_kind",
            "cum_pct_victims",
            "microscope_rank",
            "netmedic_rank",
        ],
        &rows,
    );
}
