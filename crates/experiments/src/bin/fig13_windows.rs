//! Figure 13: NetMedic's correct rate vs its correlation window size.
//!
//! Paper: best (~36%) at a 10 ms window; worse at 1 ms (misses delayed
//! impacts) and at 50–100 ms (dilutes the signal). One run is re-scored
//! with each window size.

use msc_experiments::accuracy::{accuracy_run, rescore_with_window};
use msc_experiments::cli::{write_csv, Args};
use msc_experiments::inject::PlanConfig;
use msc_experiments::scoring::correct_rate;
use nf_types::MILLIS;

fn main() {
    let args = Args::parse(600, 1.2);
    let acc = accuracy_run(
        args.duration_ns(),
        args.rate_pps(),
        args.seed,
        &PlanConfig::default(),
        2_000,
        10 * MILLIS,
    );

    println!("# Fig 13: NetMedic correct rate vs time window size");
    println!("{:>12} {:>14}", "window_ms", "correct_rate");
    let mut rows = Vec::new();
    for window_ms in [1u64, 5, 10, 50, 100] {
        let scored = rescore_with_window(&acc.run, window_ms * MILLIS);
        let ranks: Vec<usize> = scored.iter().map(|s| s.netmedic_rank).collect();
        let rate = correct_rate(&ranks);
        println!("{window_ms:>12} {rate:>14.3}");
        rows.push(vec![window_ms.to_string(), format!("{rate:.4}")]);
    }
    write_csv(
        &args.csv_path("fig13_netmedic_windows.csv"),
        &["window_ms", "correct_rate"],
        &rows,
    );
    println!("\n(paper: peaks around 0.36 at 10 ms; Microscope needs no window at all)");
}
