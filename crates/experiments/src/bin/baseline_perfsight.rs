//! The §8 / footnote-2 contrast: persistent problems are easy (PerfSight
//! handles them); transient microsecond-scale problems need Microscope.
//!
//! Scenario A — persistent overload: traffic offered above the VPNs'
//! aggregate capacity for the whole run. PerfSight's counters localise the
//! saturated, dropping VPNs immediately.
//!
//! Scenario B — a single 900 µs interrupt in an otherwise healthy run.
//! Whole-run counters barely move, PerfSight reports nothing; Microscope
//! pins the stalled NF from the queuing evidence.

use microscope::{DiagnosisConfig, Microscope};
use msc_experiments::cli::{write_csv, Args};
use msc_trace::{reconstruct, ReconstructionConfig, Timelines};
use netmedic::{ElementCounters, PerfSight, PerfSightConfig};
use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, NfKind, NodeId, MICROS, MILLIS};

fn counters_of(out: &nf_sim::SimOutput) -> Vec<ElementCounters> {
    out.nf_stats
        .iter()
        .map(|s| ElementCounters {
            processed: s.processed,
            dropped: s.dropped,
            busy_ns: s.busy_ns,
        })
        .collect()
}

fn run(rate_pps: f64, millis: u64, seed: u64, fault: Option<Fault>) -> nf_sim::SimOutput {
    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    let mut sim = Simulation::new(
        topo,
        cfgs,
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    if let Some(f) = fault {
        sim.add_fault(f);
    }
    let mut gen = CaidaLike::new(
        CaidaLikeConfig {
            rate_pps,
            ..Default::default()
        },
        seed,
    );
    sim.run(&gen.generate(0, millis * MILLIS).finalize(0))
}

fn main() {
    let args = Args::parse(300, 1.2);
    let topo = paper_topology();
    let ps = PerfSight::new(PerfSightConfig::default());
    let mut rows = Vec::new();

    // ---- A: persistent overload --------------------------------------
    // 4 VPNs × ~0.63 Mpps ≈ 2.5 Mpps of VPN capacity; offer 3.2 Mpps.
    let out = run(3_200_000.0, args.millis, args.seed, None);
    let found = ps.diagnose(&topo, &counters_of(&out), out.duration);
    println!("# A: persistent overload (3.2 Mpps into ~2.5 Mpps of VPN capacity)");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "element", "drop_rate", "utilisation", "score"
    );
    for b in &found {
        println!(
            "{:>8} {:>9.3}% {:>12.3} {:>10.2}",
            topo.nf(b.nf).name,
            b.drop_rate * 100.0,
            b.utilisation,
            b.score
        );
        rows.push(vec![
            "persistent".into(),
            topo.nf(b.nf).name.clone(),
            format!("{:.6}", b.drop_rate),
            format!("{:.4}", b.utilisation),
        ]);
    }
    assert!(
        found
            .iter()
            .take(4)
            .all(|b| topo.nf(b.nf).kind == NfKind::Vpn),
        "PerfSight must localise the saturated VPNs"
    );
    println!("=> PerfSight correctly localises the saturated VPNs.\n");

    // ---- B: one transient interrupt ----------------------------------
    let nat1 = topo.by_name("nat1").expect("paper topo");
    let fault = Fault::Interrupt {
        nf: nat1,
        at: (args.millis / 2) * MILLIS,
        duration: 900 * MICROS,
    };
    let out = run(args.rate_pps(), args.millis, args.seed, Some(fault));
    let found = ps.diagnose(&topo, &counters_of(&out), out.duration);
    println!(
        "# B: one 900 µs interrupt at nat1 in a healthy {} ms run",
        args.millis
    );
    println!("PerfSight bottlenecks found: {}", found.len());
    assert!(
        found.is_empty(),
        "whole-run counters must not expose a microsecond-scale stall"
    );

    // Microscope on the same run.
    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    let timelines = Timelines::build(&recon);
    let rates: Vec<f64> = paper_nf_configs(&topo)
        .iter()
        .map(|c| c.service.peak_rate_pps())
        .collect();
    let mut dc = DiagnosisConfig::default();
    dc.victims.max_victims = Some(800);
    let engine = Microscope::new(topo.clone(), rates, dc);
    let diagnoses = engine.diagnose_all(&recon, &timelines);
    // Victims in the stall's aftermath, top culprit tally.
    let window = ((args.millis / 2) * MILLIS, (args.millis / 2 + 10) * MILLIS);
    let mut nat1_top = 0;
    let mut n = 0;
    for d in &diagnoses {
        if d.victim.observed_ts < window.0 || d.victim.observed_ts > window.1 {
            continue;
        }
        n += 1;
        if d.culprits.first().map(|c| c.node) == Some(NodeId::Nf(nat1)) {
            nat1_top += 1;
        }
    }
    println!("Microscope: {nat1_top}/{n} victims near the stall rank nat1 first");
    assert!(
        n > 0 && nat1_top * 2 > n,
        "Microscope must pin the stalled NF"
    );
    rows.push(vec![
        "transient".into(),
        "nat1".into(),
        format!("{nat1_top}"),
        format!("{n}"),
    ]);
    write_csv(
        &args.csv_path("baseline_perfsight.csv"),
        &["scenario", "element", "metric1", "metric2"],
        &rows,
    );
    println!("=> PerfSight is blind to the transient stall; Microscope pins it.");
}
