//! Time-series extraction for the Fig. 1–3 reproductions.

use nf_sim::{PacketOutcome, SimOutput};
use nf_types::{FiveTuple, Nanos, NfId};

/// Buckets delivered-packet throughput of packets matching `filter` into
/// `(bucket start ns, Mpps)` points.
pub fn throughput_series(
    out: &SimOutput,
    bucket_ns: Nanos,
    filter: impl Fn(&FiveTuple) -> bool,
) -> Vec<(Nanos, f64)> {
    assert!(bucket_ns > 0);
    let end = out.duration;
    let n = (end / bucket_ns) as usize + 1;
    let mut counts = vec![0u64; n];
    for f in &out.fates {
        if let PacketOutcome::Delivered(at) = f.outcome {
            if filter(&f.packet.flow) {
                counts[((at / bucket_ns) as usize).min(n - 1)] += 1;
            }
        }
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                i as Nanos * bucket_ns,
                c as f64 / (bucket_ns as f64 / 1e9) / 1e6,
            )
        })
        .collect()
}

/// Per-bucket drop counts at one NF for packets matching `filter`.
pub fn drop_series(
    out: &SimOutput,
    nf: NfId,
    bucket_ns: Nanos,
    filter: impl Fn(&FiveTuple) -> bool,
) -> Vec<(Nanos, u64)> {
    assert!(bucket_ns > 0);
    let end = out.duration;
    let n = (end / bucket_ns) as usize + 1;
    let mut counts = vec![0u64; n];
    for d in &out.drops {
        if d.nf == nf && filter(&d.packet.flow) {
            counts[((d.at / bucket_ns) as usize).min(n - 1)] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as Nanos * bucket_ns, c))
        .collect()
}

/// `(arrival time at the NF, end-to-end latency µs)` scatter for delivered
/// packets — Fig. 1a.
pub fn latency_scatter(out: &SimOutput) -> Vec<(Nanos, f64)> {
    out.fates
        .iter()
        .filter_map(|f| {
            f.latency()
                .map(|l| (f.packet.created_at, l as f64 / 1_000.0))
        })
        .collect()
}

/// Input rate (Mpps) into one NF per bucket, split by a flow filter —
/// Fig. 3c's "input rate changes".
pub fn input_rate_series(
    out: &SimOutput,
    nf: NfId,
    bucket_ns: Nanos,
    filter: impl Fn(&FiveTuple) -> bool,
) -> Vec<(Nanos, f64)> {
    assert!(bucket_ns > 0);
    let end = out.duration;
    let n = (end / bucket_ns) as usize + 1;
    let mut counts = vec![0u64; n];
    for f in &out.fates {
        if !filter(&f.packet.flow) {
            continue;
        }
        for h in &f.hops {
            if h.nf == nf {
                counts[((h.enqueued_at / bucket_ns) as usize).min(n - 1)] += 1;
            }
        }
        if let PacketOutcome::Dropped { nf: dnf, at } = f.outcome {
            if dnf == nf {
                counts[((at / bucket_ns) as usize).min(n - 1)] += 1;
            }
        }
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                i as Nanos * bucket_ns,
                c as f64 / (bucket_ns as f64 / 1e9) / 1e6,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_sim::{NfConfig, RoutePolicy, ServiceModel, SimConfig, Simulation};
    use nf_types::{NfKind, Packet, Proto, Topology};

    fn run_simple() -> SimOutput {
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        b.add_entry(nat);
        let topo = b.build().unwrap();
        let cfgs = vec![NfConfig::new(
            ServiceModel::deterministic(500),
            RoutePolicy::Exit,
        )];
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let packets: Vec<Packet> = (0..1000u64)
            .map(|i| Packet::new(i, flow, 64, i * 1_000))
            .collect();
        Simulation::new(topo, cfgs, SimConfig::default()).run(&packets)
    }

    #[test]
    fn throughput_series_sums_to_delivered() {
        let out = run_simple();
        let s = throughput_series(&out, 100_000, |_| true);
        // packets = Mpps × 1e6 × bucket_seconds (bucket = 1e-4 s).
        let total: f64 = s.iter().map(|(_, mpps)| mpps * 1e6 * 1e-4).sum();
        assert!((total - 1000.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn latency_scatter_has_all_points() {
        let out = run_simple();
        assert_eq!(latency_scatter(&out).len(), 1000);
    }

    #[test]
    fn input_rate_counts_arrivals() {
        let out = run_simple();
        let s = input_rate_series(&out, NfId(0), 100_000, |_| true);
        let total: f64 = s.iter().map(|(_, mpps)| mpps * 1e6 * 1e-4).sum();
        assert!((total - 1000.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn filters_select_flows() {
        let out = run_simple();
        let s = throughput_series(&out, 100_000, |f| f.src_port == 9999);
        assert!(s.iter().all(|&(_, v)| v == 0.0));
    }
}
