//! Accuracy scoring: the rank of the true (injected) culprit, §6.2.
//!
//! Each diagnosed victim is attributed to the injected event active shortly
//! before it (injections are spaced out precisely so this attribution is
//! unambiguous). The score of a tool on that victim is the 1-based rank of
//! the true culprit in the tool's ranked list; lower is better, rank 1 is a
//! correct diagnosis.

use crate::runner::RunResult;
use microscope::{CulpritKind, Diagnosis};
use netmedic::{History, NetMedic};
use nf_sim::InjectedEvent;
use nf_types::{Interval, Nanos, NodeId, MILLIS};

/// One victim scored against ground truth.
#[derive(Debug, Clone)]
pub struct ScoredVictim {
    /// When the victim was observed.
    pub observed_ts: Nanos,
    /// Index of the ground-truth event in the journal.
    pub event_idx: usize,
    /// Ground-truth event kind ("burst" / "interrupt" / "bug").
    pub event_kind: &'static str,
    /// Rank of the true culprit in Microscope's list (1 = top).
    pub microscope_rank: usize,
    /// Rank of the true culprit in NetMedic's list (1 = top).
    pub netmedic_rank: usize,
    /// Hops between the culprit node and the victim NF (0 = local), for
    /// the §6.3 propagation-distance analysis.
    pub hops: usize,
    /// Time gap between culprit activity and victim observation (Fig. 15).
    pub gap_ns: Nanos,
}

/// How long after an event ends its queues can still be hurting packets.
/// Fig. 15 shows gaps up to ~91 ms; 100 ms of slack covers it.
pub const INFLUENCE_SLACK: Nanos = 100 * MILLIS;

/// Attributes a victim to the injected event most plausibly responsible:
/// the latest event whose window started at or before the observation and
/// whose influence (window + slack) still covers it.
pub fn attribute_event(
    events: &[InjectedEvent],
    observed_ts: Nanos,
) -> Option<(usize, &InjectedEvent)> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            let w = e.window();
            w.start <= observed_ts && observed_ts <= w.end + INFLUENCE_SLACK
        })
        .max_by_key(|(_, e)| e.window().start)
}

/// Does a Microscope culprit entry name this event?
fn culprit_matches(
    event: &InjectedEvent,
    node: NodeId,
    kind: CulpritKind,
    window: Interval,
) -> bool {
    // Generous window check: culprit activity must overlap the event's
    // influence period.
    let ew = event.window();
    let influence = Interval::new(ew.start.saturating_sub(MILLIS), ew.end + INFLUENCE_SLACK);
    if !window.overlaps(&influence) {
        return false;
    }
    match event {
        InjectedEvent::Burst { .. } => node == NodeId::Source && kind == CulpritKind::SourceBurst,
        InjectedEvent::Interrupt { nf, .. } => {
            node == NodeId::Nf(*nf) && kind == CulpritKind::LocalProcessing
        }
        InjectedEvent::BugTrigger { nf, .. } => {
            node == NodeId::Nf(*nf) && kind == CulpritKind::LocalProcessing
        }
    }
}

/// Rank (1-based) of the true culprit in a Microscope diagnosis;
/// `list_len + 1` when absent.
pub fn microscope_rank(d: &Diagnosis, event: &InjectedEvent) -> usize {
    d.culprits
        .iter()
        .position(|c| culprit_matches(event, c.node, c.kind, c.window))
        .map_or(d.culprits.len() + 1, |p| p + 1)
}

/// Rank (1-based) of the true culprit node in a NetMedic ranking.
pub fn netmedic_rank(ranked: &[netmedic::RankedComponent], event: &InjectedEvent) -> usize {
    let want = event.culprit_node();
    ranked
        .iter()
        .position(|r| r.node == want)
        .map_or(ranked.len() + 1, |p| p + 1)
}

/// Hop distance in the NF DAG from the culprit node to the victim NF
/// (0 when the culprit *is* the victim NF; 1 for a direct upstream...).
pub fn hop_distance(
    topology: &nf_types::Topology,
    culprit: NodeId,
    victim: nf_types::NfId,
) -> usize {
    // BFS upstream from the victim.
    use std::collections::VecDeque;
    let mut dist = vec![usize::MAX; topology.len() + 1];
    let idx = |n: NodeId| match n {
        NodeId::Source => topology.len(),
        NodeId::Nf(id) => id.0 as usize,
    };
    let mut q = VecDeque::new();
    dist[victim.0 as usize] = 0;
    q.push_back(NodeId::Nf(victim));
    while let Some(n) = q.pop_front() {
        let d = dist[idx(n)];
        if let NodeId::Nf(nf) = n {
            for up in topology.upstream_nodes(nf) {
                if dist[idx(up)] == usize::MAX {
                    dist[idx(up)] = d + 1;
                    q.push_back(up);
                }
            }
        }
    }
    let d = dist[idx(culprit)];
    if d == usize::MAX {
        usize::MAX
    } else {
        d
    }
}

/// Scores every diagnosed victim of a run against ground truth with both
/// tools. Victims not attributable to any injected event are skipped
/// (natural noise; the paper's §6.2 counts only injected problems).
pub fn score_run(run: &RunResult, nm: &NetMedic, hist: &History) -> Vec<ScoredVictim> {
    let mut out = Vec::new();
    for d in &run.diagnoses {
        let Some((event_idx, event)) =
            attribute_event(&run.out.journal.events, d.victim.observed_ts)
        else {
            continue;
        };
        let nm_ranked = nm.diagnose(hist, d.victim.nf, d.victim.observed_ts);
        let gap = d.victim.observed_ts.saturating_sub(event.window().start);
        out.push(ScoredVictim {
            observed_ts: d.victim.observed_ts,
            event_idx,
            event_kind: event.kind_str(),
            microscope_rank: microscope_rank(d, event),
            netmedic_rank: netmedic_rank(&nm_ranked, event),
            hops: hop_distance(&run.topology, event.culprit_node(), d.victim.nf),
            gap_ns: gap,
        });
    }
    out
}

/// Caps the number of scored victims per injected event so one flood-type
/// event (bursts create orders of magnitude more victims than interrupts)
/// does not drown the others in the overall accuracy figures. Victims of
/// each event are evenly subsampled over time.
pub fn balance_by_event(scored: &[ScoredVictim], per_event: usize) -> Vec<ScoredVictim> {
    use std::collections::BTreeMap;
    let mut by_event: BTreeMap<usize, Vec<&ScoredVictim>> = BTreeMap::new();
    for s in scored {
        by_event.entry(s.event_idx).or_default().push(s);
    }
    let mut out = Vec::new();
    for (_, group) in by_event {
        if group.len() <= per_event {
            out.extend(group.into_iter().cloned());
        } else {
            let stride = group.len() as f64 / per_event as f64;
            for i in 0..per_event {
                out.push(group[(i as f64 * stride) as usize].clone());
            }
        }
    }
    out
}

/// The Fig. 11 CDF: sorted ranks, reported as (cumulative % of victims,
/// rank at that percentile).
pub fn rank_cdf(ranks: &[usize]) -> Vec<(f64, usize)> {
    let mut sorted: Vec<usize> = ranks.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &r)| ((i + 1) as f64 / sorted.len() as f64 * 100.0, r))
        .collect()
}

/// Fraction of ranks equal to 1 (the "correct rate" of Fig. 13).
pub fn correct_rate(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|&&r| r == 1).count() as f64 / ranks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{paper_topology, NfId};

    #[test]
    fn attribute_picks_latest_covering_event() {
        let events = vec![
            InjectedEvent::Interrupt {
                nf: NfId(0),
                window: Interval::new(10 * MILLIS, 11 * MILLIS),
            },
            InjectedEvent::Interrupt {
                nf: NfId(1),
                window: Interval::new(50 * MILLIS, 51 * MILLIS),
            },
        ];
        let (i, _) = attribute_event(&events, 55 * MILLIS).unwrap();
        assert_eq!(i, 1);
        let (i, _) = attribute_event(&events, 20 * MILLIS).unwrap();
        assert_eq!(i, 0);
        // Before everything: none.
        assert!(attribute_event(&events, MILLIS).is_none());
    }

    #[test]
    fn hop_distance_on_paper_topology() {
        let t = paper_topology();
        let nat1 = t.by_name("nat1").unwrap();
        let fw1 = t.by_name("fw1").unwrap();
        let vpn1 = t.by_name("vpn1").unwrap();
        assert_eq!(hop_distance(&t, NodeId::Nf(vpn1), vpn1), 0);
        assert_eq!(hop_distance(&t, NodeId::Nf(fw1), vpn1), 1);
        assert_eq!(hop_distance(&t, NodeId::Nf(nat1), vpn1), 2);
        assert_eq!(hop_distance(&t, NodeId::Source, vpn1), 3);
        assert_eq!(hop_distance(&t, NodeId::Nf(vpn1), nat1), usize::MAX);
    }

    #[test]
    fn cdf_and_correct_rate() {
        let ranks = vec![1, 1, 1, 2, 5];
        let cdf = rank_cdf(&ranks);
        assert_eq!(cdf.len(), 5);
        assert!((cdf[2].0 - 60.0).abs() < 1e-9);
        assert_eq!(cdf[2].1, 1);
        assert_eq!(cdf[4].1, 5);
        assert!((correct_rate(&ranks) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_ranks() {
        assert!(rank_cdf(&[]).is_empty());
        assert_eq!(correct_rate(&[]), 0.0);
    }
}
