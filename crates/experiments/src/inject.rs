//! Fault-injection plans — the §6.2 methodology.
//!
//! The paper injects three problem types with clear ground truth, spaced
//! out in time so attribution is unambiguous: traffic bursts (5 random
//! flows, 500–2500 packets), NF interrupts (random instance, 500–1000 µs)
//! and an NF bug (one firewall processes specific flows at 0.05 Mpps,
//! triggered by injected 50–150-packet flows).

use nf_sim::Fault;
use nf_traffic::{burst, intermittent_flows, Schedule};
use nf_types::{
    FiveTuple, FlowAggregate, Interval, Nanos, NfId, NfKind, PortRange, Prefix, Proto, ProtoMatch,
    Topology, MICROS, MILLIS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned source burst.
#[derive(Debug, Clone)]
pub struct BurstSpec {
    /// The bursting flow.
    pub flow: FiveTuple,
    /// Start of the burst.
    pub at: Nanos,
    /// Packets in the burst.
    pub size: u64,
    /// Inter-packet gap inside the burst (near line rate).
    pub gap_ns: Nanos,
}

impl BurstSpec {
    /// The burst's emission window.
    pub fn window(&self) -> Interval {
        Interval::new(self.at, self.at + self.size * self.gap_ns)
    }
}

/// The §6.4 bug setup: a firewall slow path plus the flows that trigger it.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// The buggy firewall.
    pub nf: NfId,
    /// Flows hitting the slow path.
    pub matches: FlowAggregate,
    /// Slow-path cost (20 µs = 0.05 Mpps in the paper).
    pub per_packet_ns: Nanos,
    /// Concrete trigger flows injected at the source.
    pub trigger_flows: Vec<FiveTuple>,
    /// Trigger episode period.
    pub period: Nanos,
    /// Packets per trigger episode (paper: 50–150).
    pub flow_size: u64,
}

/// A full injection plan for one run.
#[derive(Debug, Clone, Default)]
pub struct InjectionPlan {
    /// Source bursts.
    pub bursts: Vec<BurstSpec>,
    /// NF interrupts: (NF, start, duration).
    pub interrupts: Vec<(NfId, Nanos, Nanos)>,
    /// At most one bug setup.
    pub bug: Option<BugSpec>,
}

/// Parameters for random plan generation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Bursts to inject.
    pub n_bursts: usize,
    /// Burst size range in packets (paper: 500–2500).
    pub burst_size: (u64, u64),
    /// Interrupts to inject.
    pub n_interrupts: usize,
    /// Interrupt length range (paper: 500–1000 µs).
    pub interrupt_len: (Nanos, Nanos),
    /// Install the firewall bug and inject trigger flows.
    pub with_bug: bool,
    /// Bug trigger-flow size range (paper: 50–150 packets).
    pub bug_flow_size: (u64, u64),
    /// Gap between consecutive injected events.
    pub spacing: Nanos,
    /// First event time.
    pub start: Nanos,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            n_bursts: 5,
            burst_size: (500, 2500),
            n_interrupts: 5,
            interrupt_len: (500 * MICROS, 1000 * MICROS),
            with_bug: true,
            bug_flow_size: (50, 150),
            spacing: 40 * MILLIS,
            start: 20 * MILLIS,
        }
    }
}

/// The §6.4 bug-trigger flow aggregate: TCP 100.0.0.1 → 32.0.0.1, source
/// ports 2000–2008, destination ports 6000–6008.
pub fn paper_bug_aggregate() -> FlowAggregate {
    FlowAggregate {
        src: Prefix::host(nf_types::parse_ip("100.0.0.1").expect("valid ip")),
        dst: Prefix::host(nf_types::parse_ip("32.0.0.1").expect("valid ip")),
        proto: ProtoMatch::Exact(Proto::TCP),
        src_port: PortRange::new(2000, 2008),
        dst_port: PortRange::new(6000, 6008),
    }
}

/// The concrete §6.4 trigger flows (sport 2000+k, dport 6000+k).
pub fn paper_bug_flows() -> Vec<FiveTuple> {
    (0..=8u16)
        .map(|k| {
            FiveTuple::new(
                nf_types::parse_ip("100.0.0.1").expect("valid ip"),
                nf_types::parse_ip("32.0.0.1").expect("valid ip"),
                2000 + k,
                6000 + k,
                Proto::TCP,
            )
        })
        .collect()
}

impl InjectionPlan {
    /// Generates a randomised plan over `[cfg.start, duration)` with events
    /// `cfg.spacing` apart, alternating bursts and interrupts (bug triggers
    /// run periodically throughout, as in §6.4).
    pub fn random(
        topology: &Topology,
        duration: Nanos,
        candidate_burst_flows: &[FiveTuple],
        cfg: &PlanConfig,
        seed: u64,
    ) -> InjectionPlan {
        const PLAN_SEED_SALT: u64 = 0x1313_5757_2424_9898;
        let mut rng = StdRng::seed_from_u64(seed ^ PLAN_SEED_SALT);
        let mut plan = InjectionPlan::default();
        let mut t = cfg.start;
        let mut bursts_left = cfg.n_bursts;
        let mut ints_left = cfg.n_interrupts;
        while (bursts_left > 0 || ints_left > 0) && t + 5 * MILLIS < duration {
            let do_burst = if bursts_left == 0 {
                false
            } else if ints_left == 0 {
                true
            } else {
                rng.gen_bool(0.5)
            };
            if do_burst {
                let flow = candidate_burst_flows[rng.gen_range(0..candidate_burst_flows.len())];
                let size = rng.gen_range(cfg.burst_size.0..=cfg.burst_size.1);
                plan.bursts.push(BurstSpec {
                    flow,
                    at: t,
                    size,
                    gap_ns: 120, // ~8 Mpps: a line-rate burst
                });
                bursts_left -= 1;
            } else {
                let nf = NfId(rng.gen_range(0..topology.len()) as u16);
                let len = rng.gen_range(cfg.interrupt_len.0..=cfg.interrupt_len.1);
                plan.interrupts.push((nf, t, len));
                ints_left -= 1;
            }
            t += cfg.spacing;
        }
        if cfg.with_bug {
            let fws: Vec<NfId> = topology
                .nfs()
                .iter()
                .filter(|n| n.kind == NfKind::Firewall)
                .map(|n| n.id)
                .collect();
            let fw = if fws.is_empty() {
                topology.nfs().first().map(|n| n.id)
            } else {
                Some(fws[rng.gen_range(0..fws.len())])
            };
            if let Some(fw) = fw {
                let flow_size = rng.gen_range(cfg.bug_flow_size.0..=cfg.bug_flow_size.1);
                plan.bug = Some(BugSpec {
                    nf: fw,
                    matches: paper_bug_aggregate(),
                    per_packet_ns: 20 * MICROS, // 0.05 Mpps
                    trigger_flows: paper_bug_flows(),
                    period: cfg.spacing,
                    flow_size,
                });
            }
        }
        plan
    }

    /// The extra traffic this plan adds to the schedule (bursts + bug
    /// triggers).
    pub fn extra_traffic(&self, duration: Nanos) -> Schedule {
        let mut parts: Vec<Schedule> = self
            .bursts
            .iter()
            .map(|b| burst(b.flow, b.at, b.size, b.gap_ns, 64))
            .collect();
        if let Some(bug) = &self.bug {
            parts.push(intermittent_flows(
                &bug.trigger_flows,
                30 * MILLIS,
                duration,
                bug.period,
                bug.flow_size,
                1_000, // 1 Mpps within the trigger flow
                64,
            ));
        }
        Schedule::merge(parts)
    }

    /// The simulator faults of this plan.
    pub fn faults(&self) -> Vec<Fault> {
        let mut f: Vec<Fault> = self
            .interrupts
            .iter()
            .map(|&(nf, at, duration)| Fault::Interrupt { nf, at, duration })
            .collect();
        if let Some(bug) = &self.bug {
            f.push(Fault::BugRule {
                nf: bug.nf,
                matches: bug.matches,
                per_packet_ns: bug.per_packet_ns,
            });
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::paper_topology;

    fn flows() -> Vec<FiveTuple> {
        (0..20u16)
            .map(|i| FiveTuple::new(0x0a000001 + i as u32, 0x14000001, 1000 + i, 80, Proto::TCP))
            .collect()
    }

    #[test]
    fn plan_respects_counts_and_spacing() {
        let t = paper_topology();
        let plan = InjectionPlan::random(&t, 600 * MILLIS, &flows(), &PlanConfig::default(), 7);
        assert_eq!(plan.bursts.len() + plan.interrupts.len(), 10);
        assert!(plan.bug.is_some());
        // Events are spaced out.
        let mut times: Vec<Nanos> = plan
            .bursts
            .iter()
            .map(|b| b.at)
            .chain(plan.interrupts.iter().map(|i| i.1))
            .collect();
        times.sort_unstable();
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 39 * MILLIS, "{times:?}");
        }
    }

    #[test]
    fn short_run_truncates_plan() {
        let t = paper_topology();
        let plan = InjectionPlan::random(&t, 100 * MILLIS, &flows(), &PlanConfig::default(), 7);
        assert!(plan.bursts.len() + plan.interrupts.len() <= 2);
    }

    #[test]
    fn extra_traffic_contains_bursts_and_triggers() {
        let t = paper_topology();
        let plan = InjectionPlan::random(&t, 600 * MILLIS, &flows(), &PlanConfig::default(), 7);
        let extra = plan.extra_traffic(600 * MILLIS);
        let total_burst: u64 = plan.bursts.iter().map(|b| b.size).sum();
        assert!(extra.len() as u64 > total_burst);
    }

    #[test]
    fn faults_map_one_to_one() {
        let t = paper_topology();
        let plan = InjectionPlan::random(&t, 600 * MILLIS, &flows(), &PlanConfig::default(), 7);
        let faults = plan.faults();
        assert_eq!(
            faults.len(),
            plan.interrupts.len() + plan.bug.is_some() as usize
        );
    }

    #[test]
    fn bug_aggregate_matches_trigger_flows() {
        let agg = paper_bug_aggregate();
        for f in paper_bug_flows() {
            assert!(agg.matches(&f));
        }
    }

    #[test]
    fn deterministic_plans() {
        let t = paper_topology();
        let mk = || {
            let p = InjectionPlan::random(&t, 600 * MILLIS, &flows(), &PlanConfig::default(), 9);
            (p.bursts.len(), p.interrupts.clone())
        };
        assert_eq!(mk(), mk());
    }
}
