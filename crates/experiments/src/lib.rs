//! Experiment harness reproducing every table and figure of the Microscope
//! paper (see DESIGN.md §3 for the experiment index).
//!
//! The harness ties the whole system together: synthesise traffic
//! (`nf-traffic`), inject known problems ([`inject`]), simulate the NF
//! chain (`nf-sim`), reconstruct traces from the collector bundle
//! (`msc-trace`), run Microscope (`microscope`) and the NetMedic baseline
//! (`netmedic`, fed by [`netmedic_adapter`]), and score both tools against
//! the injected ground truth ([`scoring`]).
//!
//! Each `src/bin/*.rs` binary regenerates one figure or table and prints
//! the same rows/series the paper reports (plus CSV output under
//! `results/`).

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod cli;
pub mod inject;
pub mod netmedic_adapter;
pub mod runner;
pub mod scoring;
pub mod series;

pub use cli::Args;
pub use inject::{InjectionPlan, PlanConfig};
pub use netmedic_adapter::build_history;
pub use runner::{run_spec, RunResult, RunSpec};
pub use scoring::{rank_cdf, score_run, ScoredVictim};
