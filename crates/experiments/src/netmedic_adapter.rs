//! Building NetMedic's monitoring history from a simulation run.
//!
//! In the paper NetMedic monitors the live system ("CPU usage, memory
//! usage and traffic rates for each NF", §6.1). We give it the equivalent —
//! per-window counters derived from the simulator's ground truth, which is
//! *more* than Microscope gets to see (Microscope only reads the collector
//! bundle). The baseline is thus not handicapped by our substitution.

use netmedic::{ComponentState, History, Metric};
use nf_sim::{PacketOutcome, SimOutput};
use nf_types::Nanos;

/// Builds the `[window][component]` history for a run.
///
/// Component 0 is the traffic source; component `i + 1` is `NfId(i)`
/// (NetMedic's indexing convention).
pub fn build_history(
    out: &SimOutput,
    n_nfs: usize,
    peak_rates: &[f64],
    window_ns: Nanos,
) -> History {
    assert!(window_ns > 0);
    assert_eq!(peak_rates.len(), n_nfs);
    let duration = out.duration.max(1);
    let n_windows = (duration / window_ns) as usize + 1;
    let n_comp = n_nfs + 1;

    // Raw per-window counters.
    let mut input = vec![vec![0u64; n_comp]; n_windows];
    let mut output = vec![vec![0u64; n_comp]; n_windows];
    let mut drops = vec![vec![0u64; n_comp]; n_windows];
    // Queue length sampled as (sum of instantaneous lengths at arrival, count).
    let mut qsum = vec![vec![0f64; n_comp]; n_windows];
    let mut qcnt = vec![vec![0u64; n_comp]; n_windows];

    let win = |t: Nanos| ((t / window_ns) as usize).min(n_windows - 1);

    for f in &out.fates {
        // Source output.
        output[win(f.packet.created_at)][0] += 1;
        for h in &f.hops {
            let c = h.nf.0 as usize + 1;
            input[win(h.enqueued_at)][c] += 1;
            output[win(h.sent_at)][c] += 1;
            // Queue delay → implied queue length via Little's-law style
            // sampling: delay × peak rate approximates packets ahead.
            let qlen = (h.read_at - h.enqueued_at) as f64 * peak_rates[h.nf.0 as usize] / 1e9;
            qsum[win(h.enqueued_at)][c] += qlen;
            qcnt[win(h.enqueued_at)][c] += 1;
        }
        if let PacketOutcome::Dropped { nf, at } = f.outcome {
            let c = nf.0 as usize + 1;
            drops[win(at)][c] += 1;
            input[win(at)][c] += 1;
        }
    }

    let wsec = window_ns as f64 / 1e9;
    let states: Vec<Vec<ComponentState>> = (0..n_windows)
        .map(|w| {
            (0..n_comp)
                .map(|c| {
                    let out_rate = output[w][c] as f64 / wsec;
                    let in_rate = input[w][c] as f64 / wsec;
                    let cpu = if c == 0 {
                        0.0
                    } else {
                        (out_rate / peak_rates[c - 1]).min(1.0)
                    };
                    let ql = if qcnt[w][c] == 0 {
                        0.0
                    } else {
                        qsum[w][c] / qcnt[w][c] as f64
                    };
                    ComponentState::default()
                        .with(Metric::CpuUtil, cpu)
                        .with(Metric::InputRate, in_rate)
                        .with(Metric::OutputRate, out_rate)
                        .with(Metric::QueueLen, ql)
                        .with(Metric::Drops, drops[w][c] as f64)
                })
                .collect()
        })
        .collect();
    History::new(window_ns, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_sim::{NfConfig, RoutePolicy, ServiceModel, SimConfig, Simulation};
    use nf_types::{FiveTuple, NfKind, Packet, Proto, Topology, MILLIS};

    #[test]
    fn history_reflects_rates_and_stalls() {
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        b.add_entry(nat);
        let topo = b.build().unwrap();
        let cfgs = vec![NfConfig::new(
            ServiceModel::deterministic(1_000),
            RoutePolicy::Exit,
        )];
        let mut sim = Simulation::new(topo, cfgs, SimConfig::default());
        sim.add_fault(nf_sim::Fault::Interrupt {
            nf: nat,
            at: 10 * MILLIS,
            duration: 5 * MILLIS,
        });
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        // 100 kpps for 30 ms.
        let packets: Vec<Packet> = (0..3000u64)
            .map(|i| Packet::new(i, flow, 64, i * 10_000))
            .collect();
        let out = sim.run(&packets);
        let hist = build_history(&out, 1, &[1e6], 5 * MILLIS);
        assert!(hist.windows() >= 6);
        // Window 2 ([10,15) ms) is the stall: output rate collapses.
        let stalled = hist.states[2][1].get(Metric::OutputRate);
        let normal = hist.states[0][1].get(Metric::OutputRate);
        assert!(
            stalled < normal / 2.0,
            "stalled {stalled} vs normal {normal}"
        );
        // Source keeps emitting throughout.
        assert!(hist.states[2][0].get(Metric::OutputRate) > 50_000.0);
        // Queue length climbs in the stall window.
        assert!(hist.states[2][1].get(Metric::QueueLen) > hist.states[0][1].get(Metric::QueueLen));
    }
}
