//! End-to-end validation: run the simulator, feed ONLY the collector bundle
//! to the reconstruction, and check the result against the simulator's
//! ground-truth packet fates.
//!
//! This is the §5 correctness claim: 2-byte IPID records plus the three side
//! channels suffice to rebuild packet journeys across the NF DAG.

use msc_trace::{reconstruct, ReconstructionConfig, Timelines, TraceOutcome};
use nf_sim::PacketOutcome;
use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig, Schedule};
use nf_types::paper_topology;

fn caida_schedule(rate_pps: f64, millis: u64, seed: u64) -> Schedule {
    let cfg = CaidaLikeConfig {
        rate_pps,
        active_flows: 512,
        ..Default::default()
    };
    let mut g = CaidaLike::new(cfg, seed);
    g.generate(0, millis * nf_types::MILLIS)
}

#[test]
fn reconstruction_matches_ground_truth_on_paper_topology() {
    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    let sim = Simulation::new(topo.clone(), cfgs, SimConfig::default());
    let packets = caida_schedule(1_200_000.0, 20, 42).finalize(0);
    let n = packets.len();
    let out = sim.run(&packets);

    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    assert_eq!(recon.traces.len(), n);

    // Every reconstructed journey must agree with ground truth.
    let mut checked_hops = 0usize;
    for (i, tr) in recon.traces.iter().enumerate() {
        let fate = &out.fates[i];
        assert_eq!(tr.flow, fate.packet.flow, "flow of packet {i}");
        match (&tr.outcome, &fate.outcome) {
            (TraceOutcome::Delivered(a), PacketOutcome::Delivered(b)) => {
                assert_eq!(a, b, "delivery time of packet {i}")
            }
            (TraceOutcome::InferredDrop { nf, .. }, PacketOutcome::Dropped { nf: nf2, .. }) => {
                assert_eq!(nf, nf2, "drop location of packet {i}")
            }
            (TraceOutcome::Unresolved, PacketOutcome::InFlight) => {}
            (got, want) => panic!("packet {i}: reconstructed {got:?}, truth {want:?}"),
        }
        // Hop-by-hop agreement.
        let hops = recon.hops_of(i);
        assert_eq!(hops.len(), fate.hops.len(), "hop count of packet {i}");
        for (h, g) in hops.iter().zip(&fate.hops) {
            assert_eq!(h.nf, g.nf, "packet {i} hop NF");
            assert_eq!(h.read_ts, g.read_at, "packet {i} read ts");
            if let Some(sent) = h.sent_ts {
                assert_eq!(sent, g.sent_at, "packet {i} sent ts");
            }
            checked_hops += 1;
        }
    }
    assert!(checked_hops > 2 * n, "expected multi-hop paths");
    assert_eq!(recon.report.flow_mismatches, 0);
    assert!(
        (recon.report.unmatched_rx as f64) < 1e-3 * out.fates.len() as f64,
        "unmatched rx: {}",
        recon.report.unmatched_rx
    );
}

#[test]
fn reconstruction_survives_interrupts_and_drops() {
    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    let mut sim = Simulation::new(topo.clone(), cfgs, SimConfig::default());
    // Stall a NAT and a VPN hard enough to overflow rings.
    sim.add_fault(Fault::Interrupt {
        nf: topo.by_name("nat1").unwrap(),
        at: 2 * nf_types::MILLIS,
        duration: 1500 * nf_types::MICROS,
    });
    sim.add_fault(Fault::Interrupt {
        nf: topo.by_name("vpn2").unwrap(),
        at: 6 * nf_types::MILLIS,
        duration: 1500 * nf_types::MICROS,
    });
    let packets = caida_schedule(1_600_000.0, 15, 7).finalize(0);
    let out = sim.run(&packets);
    let truth_drops = out.fates.iter().filter(|f| f.dropped()).count();

    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    let rec_drops = recon.traces.iter().filter(|t| t.dropped()).count();
    assert_eq!(rec_drops, truth_drops, "inferred drops match ground truth");
    assert_eq!(recon.report.flow_mismatches, 0);

    // Spot-check drop locations.
    for (tr, fate) in recon.traces.iter().zip(&out.fates) {
        if let (TraceOutcome::InferredDrop { nf, .. }, PacketOutcome::Dropped { nf: nf2, .. }) =
            (&tr.outcome, &fate.outcome)
        {
            assert_eq!(nf, nf2);
        }
    }
}

#[test]
fn timelines_reflect_queue_buildup_during_interrupt() {
    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    let mut sim = Simulation::new(topo.clone(), cfgs, SimConfig::default());
    let nat1 = topo.by_name("nat1").unwrap();
    let stall_start = 3 * nf_types::MILLIS;
    let stall = 800 * nf_types::MICROS;
    sim.add_fault(Fault::Interrupt {
        nf: nat1,
        at: stall_start,
        duration: stall,
    });
    let packets = caida_schedule(1_200_000.0, 10, 11).finalize(0);
    let out = sim.run(&packets);
    let recon = reconstruct(&topo, &out.bundle, &ReconstructionConfig::default());
    let tls = Timelines::build(&recon);

    // A packet arriving at nat1 just before the stall ends sees a queuing
    // period reaching back towards the stall start.
    let probe_t = stall_start + stall - 50_000;
    let qp = tls.nf(nat1).queuing_period(probe_t);
    assert!(
        !qp.is_empty(),
        "queue should be building during the stall: {qp:?}"
    );
    assert!(
        qp.interval.start >= stall_start.saturating_sub(200_000) && qp.interval.start <= probe_t,
        "period start {} vs stall start {stall_start}",
        qp.interval.start
    );
    // The queue length implied by the period matches n_i - n_p.
    assert_eq!(qp.queue_len(), qp.n_arrived as i64 - qp.n_processed as i64);
    assert!(qp.queue_len() > 100, "queue length {}", qp.queue_len());
}

#[test]
fn bytes_per_packet_is_near_two_at_saturation() {
    // §5's "around two bytes per packet" is about *interior* NFs (only the
    // last NF keeps five-tuples) and holds when batches are full (the
    // per-batch timestamp amortises over 32 IPIDs) — i.e. at saturation,
    // which is exactly when the data volume matters. Drive a NAT→VPN chain
    // past its peak rate and measure the interior NAT's log.
    let mut s = nf_sim::ScenarioBuilder::new();
    let nat = s.nf(nf_types::NfKind::Nat, "nat1");
    let vpn = s.nf(nf_types::NfKind::Vpn, "vpn1");
    s.entry(nat);
    s.edge(nat, vpn);
    let (topo, cfgs) = s.build();
    let sim = Simulation::new(topo.clone(), cfgs, SimConfig::default());
    let packets = caida_schedule(2_200_000.0, 20, 99).finalize(0);
    let out = sim.run(&packets);
    let nat_log = out.bundle.log(nat);
    let bpp = msc_collector::encode_nf_log(nat_log)
        .expect("encodable")
        .len() as f64
        / nat_log.packet_appearances() as f64;
    assert!(bpp < 3.0, "interior NF: {bpp:.2} B/packet-appearance");
    assert!(bpp > 1.5, "suspiciously small: {bpp:.2}");

    // At light per-NF load batches shrink towards 1 packet and the
    // per-batch overhead dominates; the bundle is still compact in
    // absolute terms (~a few MB/s per NF at the paper's rates).
    let topo2 = paper_topology();
    let cfgs2 = paper_nf_configs(&topo2);
    let sim2 = Simulation::new(topo2, cfgs2, SimConfig::default());
    let packets2 = caida_schedule(1_200_000.0, 20, 99).finalize(0);
    let out2 = sim2.run(&packets2);
    assert!(out2.bundle.bytes_per_packet() < 10.0);
}

#[test]
fn skew_estimation_recovers_reconstruction_on_multi_server_deployments() {
    use msc_trace::{correct_bundle, estimate_offsets_refined, SkewConfig};

    let topo = paper_topology();
    let cfgs = paper_nf_configs(&topo);
    // NFs spread over "servers" with clocks off by up to ±2 ms.
    let offsets: Vec<i64> = (0..topo.len() as i64)
        .map(|i| (i % 5 - 2) * 800_000)
        .collect();
    let sim = Simulation::new(
        topo.clone(),
        cfgs,
        SimConfig {
            clock_offsets_ns: offsets.clone(),
            ..Default::default()
        },
    );
    let packets = caida_schedule(1_200_000.0, 20, 31).finalize(0);
    let out = sim.run(&packets);

    // Estimate offsets from the skewed records alone and correct.
    let est = estimate_offsets_refined(&topo, &out.bundle, &SkewConfig::default());
    for (nf, (&true_off, &est_off)) in offsets.iter().zip(&est).enumerate() {
        assert!(
            (true_off - est_off).abs() < 5_000,
            "nf{nf}: true {true_off} est {est_off}"
        );
    }
    let fixed = correct_bundle(&out.bundle, &est);
    // Sub-µs residual error can still invert near-simultaneous cross-NF
    // timestamps; give the matcher a tiny slack for it.
    let mut rc = ReconstructionConfig::default();
    rc.matching.negative_slack_ns = 20 * nf_types::MICROS;
    let recon = reconstruct(&topo, &fixed, &rc);
    // After correction the traces must match ground truth again (timestamps
    // may be shifted by the residual estimation error, so compare flows,
    // paths and outcomes rather than absolute times).
    assert!(
        (recon.report.unmatched_rx as f64) < 1e-3 * out.fates.len() as f64,
        "unmatched rx: {}",
        recon.report.unmatched_rx
    );
    let mut wrong = 0;
    for (i, (tr, fate)) in recon.traces.iter().zip(&out.fates).enumerate() {
        let hops = recon.hops_of(i);
        let path_ok =
            hops.len() == fate.hops.len() && hops.iter().zip(&fate.hops).all(|(a, b)| a.nf == b.nf);
        if tr.flow != fate.packet.flow || !path_ok {
            wrong += 1;
        }
    }
    assert!(
        (wrong as f64) < 1e-3 * out.fates.len() as f64,
        "{wrong}/{} traces wrong after skew correction",
        out.fates.len()
    );
}
