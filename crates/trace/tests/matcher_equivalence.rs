//! Randomized equivalence: the flat counting-sort matcher must behave
//! bit-for-bit like a naive reference matcher that keeps a
//! `HashMap<Ipid, Vec<usize>>` per upstream edge (the shape of the
//! pre-rewrite implementation) and allocates fresh lookahead cursors per
//! candidate.
//!
//! Both matchers see the same [`EdgeStreams`] and the same config, so any
//! divergence — in `rx_origin`, per-edge outcomes, or the stats counters —
//! is a semantics change in the dense index, not in the inputs. Scenarios
//! cover multi-upstream merges, deliberately tiny IPID spaces (collisions
//! on every edge), ring drops, bogus reads with no candidate, and runs
//! truncated mid-stream.

use msc_trace::{match_downstream, EdgeMatch, EdgeStreams, MatchConfig, MatchOutcome, MatchStats};
use nf_types::{FiveTuple, Nanos, NfId, NfKind, NodeId, Proto, Topology};
use std::collections::HashMap;

/// Deterministic LCG (no external rand in tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Reference matcher: per-IPID HashMap index, allocation-happy lookahead.
// ---------------------------------------------------------------------------

struct RefEdge {
    node: NodeId,
    ts: Vec<Nanos>,
    by_ipid: HashMap<u16, Vec<usize>>,
    cursor: usize,
    matched: Vec<Option<usize>>,
}

impl RefEdge {
    fn build(streams: &EdgeStreams, node: NodeId, down: NfId) -> Self {
        let positions = streams.edge_positions(node, down);
        let mut ts = Vec::with_capacity(positions.len());
        let mut by_ipid: HashMap<u16, Vec<usize>> = HashMap::new();
        for (pos, &idx) in positions.iter().enumerate() {
            let (t, ipid) = match node {
                NodeId::Source => {
                    let e = &streams.source[idx];
                    (e.ts, e.ipid)
                }
                NodeId::Nf(u) => {
                    let e = &streams.nfs[u.0 as usize].tx[idx];
                    (e.ts, e.ipid)
                }
            };
            ts.push(t);
            by_ipid.entry(ipid).or_default().push(pos);
        }
        let n = ts.len();
        Self {
            node,
            ts,
            by_ipid,
            cursor: 0,
            matched: vec![None; n],
        }
    }

    /// First position `>= cursor` with `ipid` whose send time is inside the
    /// window (checked on that first position only, like the real matcher).
    fn candidate(
        &self,
        cursor: usize,
        ipid: u16,
        read_ts: Nanos,
        cfg: &MatchConfig,
    ) -> Option<usize> {
        let run = self.by_ipid.get(&ipid)?;
        let i = run.partition_point(|&p| p < cursor);
        let &pos = run.get(i)?;
        let sent = self.ts[pos];
        (sent <= read_ts + cfg.negative_slack_ns
            && read_ts.saturating_sub(sent) <= cfg.delay_bound_ns)
            .then_some(pos)
    }
}

fn ref_lookahead_score(
    edges: &[RefEdge],
    mut cursors: Vec<usize>,
    rx: &[msc_trace::RxEntry],
    rx_from: usize,
    depth: usize,
    cfg: &MatchConfig,
) -> usize {
    let mut score = 0;
    for r in rx.iter().skip(rx_from).take(depth) {
        let mut best: Option<(Nanos, usize, usize)> = None;
        for (e_idx, e) in edges.iter().enumerate() {
            if let Some(pos) = e.candidate(cursors[e_idx], r.ipid, r.ts, cfg) {
                let key = (e.ts[pos], e_idx, pos);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if let Some((_, e_idx, pos)) = best {
            score += 1;
            cursors[e_idx] = pos + 1;
        }
    }
    score
}

/// (rx_origin, edge_outcome, stats) — the three artifacts both matchers
/// must agree on.
type RefMatch = (
    Vec<Option<(NodeId, usize)>>,
    Vec<Vec<MatchOutcome>>,
    MatchStats,
);

fn ref_match_downstream(
    streams: &EdgeStreams,
    topology: &Topology,
    down: NfId,
    cfg: &MatchConfig,
) -> RefMatch {
    let rx = &streams.nfs[down.0 as usize].rx;
    let upstreams = topology.upstream_nodes(down);
    let mut edges: Vec<RefEdge> = upstreams
        .iter()
        .map(|&node| RefEdge::build(streams, node, down))
        .collect();
    let mut stats = MatchStats::default();
    let mut rx_origin: Vec<Option<(NodeId, usize)>> = vec![None; rx.len()];

    for (r_idx, r) in rx.iter().enumerate() {
        let mut cands: Vec<(usize, usize)> = Vec::new();
        for (e_idx, e) in edges.iter().enumerate() {
            if let Some(pos) = e.candidate(e.cursor, r.ipid, r.ts, cfg) {
                cands.push((e_idx, pos));
            }
        }
        let chosen = match cands.len() {
            0 => {
                stats.unmatched_rx += 1;
                continue;
            }
            1 => cands[0],
            _ => {
                stats.ambiguities += 1;
                cands.sort_by_key(|&(e, p)| (edges[e].ts[p], e, p));
                let default = cands[0];
                if !cfg.use_order_channel {
                    default
                } else {
                    let mut best = default;
                    let mut best_score = None;
                    for &(e_idx, pos) in &cands {
                        let mut cursors: Vec<usize> = edges.iter().map(|e| e.cursor).collect();
                        cursors[e_idx] = pos + 1;
                        let s =
                            ref_lookahead_score(&edges, cursors, rx, r_idx + 1, cfg.lookahead, cfg);
                        if best_score.is_none_or(|b| s > b) {
                            best_score = Some(s);
                            best = (e_idx, pos);
                        }
                    }
                    if best != default {
                        stats.ambiguity_flips += 1;
                    }
                    best
                }
            }
        };
        let (e_idx, pos) = chosen;
        rx_origin[r_idx] = Some((edges[e_idx].node, pos));
        edges[e_idx].matched[pos] = Some(r_idx);
        edges[e_idx].cursor = pos + 1;
        stats.matched += 1;
    }

    let mut edge_outcome: Vec<Vec<MatchOutcome>> = Vec::with_capacity(edges.len());
    for e in &edges {
        let outcomes: Vec<MatchOutcome> = e
            .matched
            .iter()
            .enumerate()
            .map(|(pos, m)| match m {
                Some(rx_idx) => MatchOutcome::Matched(*rx_idx),
                None if pos < e.cursor => {
                    stats.inferred_drops += 1;
                    MatchOutcome::InferredDrop
                }
                None => MatchOutcome::Unresolved,
            })
            .collect();
        edge_outcome.push(outcomes);
    }
    (rx_origin, edge_outcome, stats)
}

// ---------------------------------------------------------------------------
// Scenario generation.
// ---------------------------------------------------------------------------

/// `n_up` entry NFs all feeding one merge NF.
fn merge_topology(n_up: usize) -> Topology {
    let mut b = Topology::builder();
    let mut ups = Vec::new();
    for i in 0..n_up {
        let u = b.add_nf(NfKind::Nat, format!("nat{i}"));
        b.add_entry(u);
        ups.push(u);
    }
    let down = b.add_nf(NfKind::Vpn, "vpn1");
    for u in ups {
        b.add_edge(u, down);
    }
    b.build().unwrap()
}

fn meta(ipid: u16) -> msc_collector::PacketMeta {
    msc_collector::PacketMeta {
        ipid,
        flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
    }
}

/// Random merge scenario: each upstream sends a FIFO stream into the merge
/// NF with a tiny IPID alphabet (collisions everywhere); the merge NF reads
/// a random FIFO-respecting interleaving with random ring drops, sometimes
/// truncated, plus the occasional bogus read nothing ever sent.
fn random_merge_bundle(topo: &Topology, rng: &mut Lcg) -> msc_collector::TraceBundle {
    let n_up = topo.len() - 1;
    let down = NfId(n_up as u16);
    let mut c = msc_collector::Collector::new(topo, msc_collector::CollectorConfig::default());

    // Per-upstream send queues.
    let ipid_alphabet = 3 + rng.below(6) as u16; // 3..=8 distinct IPIDs
    let mut queues: Vec<Vec<(Nanos, u16)>> = Vec::new();
    for u in 0..n_up {
        let n = 5 + rng.below(40) as usize;
        let mut ts = 50 + rng.below(200);
        let mut q = Vec::with_capacity(n);
        for _ in 0..n {
            let ipid = (rng.below(ipid_alphabet as u64)) as u16;
            q.push((ts, ipid));
            c.record_tx(NfId(u as u16), ts, Some(down), &[meta(ipid)]);
            ts += 1 + rng.below(300);
        }
        queues.push(q);
    }

    // FIFO-respecting interleave with drops and truncation.
    let total: usize = queues.iter().map(Vec::len).sum();
    let keep_until = if rng.below(3) == 0 {
        rng.below(total as u64 + 1) as usize // truncated run
    } else {
        total
    };
    let mut heads = vec![0usize; n_up];
    let mut read_ts: Nanos = 0;
    let mut taken = 0usize;
    while taken < keep_until {
        let live: Vec<usize> = (0..n_up).filter(|&u| heads[u] < queues[u].len()).collect();
        let Some(&u) = live.get(rng.below(live.len().max(1) as u64) as usize) else {
            break;
        };
        let (sent, ipid) = queues[u][heads[u]];
        heads[u] += 1;
        taken += 1;
        if rng.below(8) == 0 {
            continue; // dropped at the ring
        }
        read_ts = read_ts.max(sent) + 1 + rng.below(200);
        c.record_rx(down, read_ts, &[meta(ipid)]);
        if rng.below(24) == 0 {
            // A read nothing ever sent (e.g. corrupted IPID): no candidate.
            read_ts += 1;
            c.record_rx(down, read_ts, &[meta(9999)]);
        }
    }
    c.into_bundle()
}

fn assert_equivalent(
    topo: &Topology,
    streams: &EdgeStreams,
    down: NfId,
    cfg: &MatchConfig,
    tag: &str,
) {
    let m: EdgeMatch = match_downstream(streams, topo, down, cfg);
    let (rx_origin, edge_outcome, stats) = ref_match_downstream(streams, topo, down, cfg);
    assert_eq!(m.upstreams, topo.upstream_nodes(down), "{tag}: slot order");
    assert_eq!(m.rx_origin, rx_origin, "{tag}: rx_origin");
    assert_eq!(m.edge_outcome, edge_outcome, "{tag}: edge_outcome");
    assert_eq!(m.stats, stats, "{tag}: stats");
    // The accessor must agree with the dense slot table.
    for (slot, &u) in m.upstreams.iter().enumerate() {
        assert_eq!(m.outcome(u), Some(m.edge_outcome[slot].as_slice()), "{tag}");
    }
}

#[test]
fn dense_matcher_equals_naive_reference_on_random_merges() {
    let mut total_ambiguities = 0u64;
    let mut total_drops = 0u64;
    let mut total_unmatched = 0u64;
    for seed in 0..60u64 {
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ (seed * 0x1234567));
        let n_up = 2 + (seed % 3) as usize; // 2..=4 upstream edges
        let topo = merge_topology(n_up);
        let bundle = random_merge_bundle(&topo, &mut rng);
        let streams = EdgeStreams::build(&topo, &bundle);
        let down = NfId(n_up as u16);

        let configs = [
            MatchConfig::default(),
            MatchConfig {
                lookahead: 3,
                ..Default::default()
            },
            MatchConfig {
                use_order_channel: false,
                ..Default::default()
            },
            MatchConfig {
                delay_bound_ns: 5_000,
                negative_slack_ns: 100,
                ..Default::default()
            },
        ];
        for (i, cfg) in configs.iter().enumerate() {
            for threads in [1usize, 2, 4] {
                let cfg = MatchConfig {
                    threads,
                    ..cfg.clone()
                };
                assert_equivalent(
                    &topo,
                    &streams,
                    down,
                    &cfg,
                    &format!("seed {seed} cfg {i} threads {threads}"),
                );
            }
        }
        let m = match_downstream(&streams, &topo, down, &MatchConfig::default());
        total_ambiguities += m.stats.ambiguities;
        total_drops += m.stats.inferred_drops;
        total_unmatched += m.stats.unmatched_rx;
    }
    // The generator must actually exercise the interesting paths.
    assert!(total_ambiguities > 100, "collisions: {total_ambiguities}");
    assert!(total_drops > 50, "drops: {total_drops}");
    assert!(total_unmatched > 10, "unmatched: {total_unmatched}");
}

#[test]
fn dense_matcher_equals_naive_reference_on_source_edges() {
    // Entry NFs match against the traffic source's edge stream; exercise it
    // with drops and truncation over a single-entry chain.
    for seed in 0..20u64 {
        let mut rng = Lcg(0xabcdef ^ (seed * 0x77777));
        let mut b = Topology::builder();
        let fw = b.add_nf(NfKind::Firewall, "fw1");
        b.add_entry(fw);
        let topo = b.build().unwrap();
        let mut c = msc_collector::Collector::new(&topo, msc_collector::CollectorConfig::default());

        let n = 10 + rng.below(60) as usize;
        let mut sends = Vec::with_capacity(n);
        let mut ts = 10u64;
        for _ in 0..n {
            let ipid = rng.below(5) as u16;
            let flow = FiveTuple::new(1, 2, 3, 4, Proto::TCP);
            c.record_source(ts, &msc_collector::PacketMeta { ipid, flow });
            sends.push((ts, ipid));
            ts += 1 + rng.below(150);
        }
        let keep = if rng.below(2) == 0 {
            n
        } else {
            rng.below(n as u64) as usize
        };
        let mut read_ts = 0u64;
        for &(sent, ipid) in sends.iter().take(keep) {
            if rng.below(7) == 0 {
                continue;
            }
            read_ts = read_ts.max(sent) + 1 + rng.below(90);
            c.record_rx(fw, read_ts, &[meta(ipid)]);
        }
        let bundle = c.into_bundle();
        let streams = EdgeStreams::build(&topo, &bundle);
        assert_equivalent(
            &topo,
            &streams,
            fw,
            &MatchConfig::default(),
            &format!("seed {seed}"),
        );
    }
}
