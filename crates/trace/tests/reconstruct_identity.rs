//! Reconstruction bit-identity across worker counts.
//!
//! The reconstruction pipeline fans the per-NF matching out over worker
//! threads in contiguous NF chunks and merges in NF order, so *every*
//! artifact of the result — the traces, the shared hop arena, the report
//! counters, the per-NF rx→trace tables and the PathTrie ids — must be
//! byte-for-byte identical for any thread count, on any scenario. This is
//! the gate that lets the dense-index rewrite ship as a pure perf change.

use msc_trace::{reconstruct, ReconstructionConfig};
use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
use nf_traffic::{CaidaLike, CaidaLikeConfig};
use nf_types::{paper_topology, MILLIS};

#[test]
fn reconstruction_is_bit_identical_for_any_thread_count() {
    for &(seed, millis, fault) in &[(3u64, 10u64, false), (29, 8, true)] {
        let topology = paper_topology();
        let cfgs = paper_nf_configs(&topology);
        let mut gen = CaidaLike::new(
            CaidaLikeConfig {
                rate_pps: 1_200_000.0,
                ..Default::default()
            },
            seed,
        );
        let packets = gen.generate(0, millis * MILLIS).finalize(0);
        let mut sim = Simulation::new(topology.clone(), cfgs, SimConfig::default());
        if fault {
            // An interrupt adds inferred drops and unresolved tails to the
            // artifacts being compared.
            sim.add_fault(Fault::Interrupt {
                nf: topology.by_name("nat2").unwrap(),
                at: (millis / 2) * MILLIS,
                duration: MILLIS,
            });
        }
        let out = sim.run(&packets);

        let seq = reconstruct(
            &topology,
            &out.bundle,
            &ReconstructionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert!(!seq.traces.is_empty());
        for threads in [0usize, 2, 3, 8] {
            let r = reconstruct(
                &topology,
                &out.bundle,
                &ReconstructionConfig {
                    threads,
                    ..Default::default()
                },
            );
            let tag = format!("seed {seed} threads {threads}");
            assert_eq!(r.traces, seq.traces, "{tag}: traces");
            assert_eq!(r.hops, seq.hops, "{tag}: hop arena");
            assert_eq!(r.report, seq.report, "{tag}: report");
            assert_eq!(r.rx_to_trace, seq.rx_to_trace, "{tag}: rx_to_trace");
            assert_eq!(r.hop_path_ids, seq.hop_path_ids, "{tag}: path ids");
        }
    }
}
