//! Per-NF timelines and queuing periods — the substrate of §4.1.
//!
//! A queuing period (§3 of the paper) runs from the moment a queue starts
//! building (the first arrival after the queue was last empty) to the moment
//! a victim packet arrives. Queue emptiness is inferred from the batch-size
//! signal (§5): a read of fewer than `MAX_BATCH` packets drained the ring.

use crate::reconstruct::{Reconstruction, TraceOutcome};
use crate::streams::RxBatchInfo;
use nf_types::{Interval, Nanos, NfId};
use std::ops::Range;

/// Why a packet appeared at an NF's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// It was enqueued (and later read).
    Queued,
    /// It was dropped at the full ring.
    Dropped,
}

/// One packet arrival at an NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival (upstream send) time.
    pub ts: Nanos,
    /// Index of the trace this packet belongs to.
    pub trace: usize,
    /// Hop index within that trace (meaningless for `Dropped`).
    pub hop: usize,
    /// Queued or dropped.
    pub kind: ArrivalKind,
}

/// The queuing period a packet arriving at time `t` finds itself in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuingPeriod {
    /// `[T0, t]` — from first queue-building arrival to the victim arrival.
    pub interval: Interval,
    /// Indices into [`NfTimeline::arrivals`] of the PreSet packets (queued
    /// arrivals inside the interval).
    pub preset: Range<usize>,
    /// `n_i(T)`: packets arriving (and enqueued) during the period.
    pub n_arrived: u64,
    /// `n_p(T)`: packets the NF processed during the period.
    pub n_processed: u64,
}

impl QueuingPeriod {
    /// Queue length when the victim arrived: `n_i - n_p`.
    pub fn queue_len(&self) -> i64 {
        self.n_arrived as i64 - self.n_processed as i64
    }

    /// Period length `T` in nanoseconds.
    pub fn len(&self) -> Nanos {
        self.interval.len()
    }

    /// True when no queue had built up.
    pub fn is_empty(&self) -> bool {
        self.n_arrived == 0
    }
}

/// Timeline of one NF: all arrivals and all reads, time-ordered.
///
/// Construction precomputes flat indexes — arrival/processed prefix sums and
/// the estimated queue occupancy after every read — so that every per-victim
/// query ([`Self::queuing_period_above`], [`Self::arrived_in`],
/// [`Self::processed_in`]) runs off `partition_point` lookups and prefix-sum
/// differences instead of rescanning the arrival vector. Victims cluster
/// inside bursts, so these queries run thousands of times per period; the
/// indexes are what keeps them near-constant time.
#[derive(Debug, PartialEq, Eq)]
pub struct NfTimeline {
    /// The NF.
    pub nf: NfId,
    /// Arrivals sorted by time (queued and dropped).
    pub arrivals: Vec<Arrival>,
    /// Read batches in time order.
    pub reads: Vec<RxBatchInfo>,
    /// `read_prefix[i]` = packets read in batches `0..i`.
    read_prefix: Vec<u64>,
    /// `queued_prefix[i]` = queued (non-dropped) arrivals in `arrivals[0..i]`.
    queued_prefix: Vec<u64>,
    /// For read index i: the largest j ≤ i with `reads[j].drained` — the
    /// queue-empty boundary list of the zero-threshold drain signal.
    last_drained: Vec<Option<usize>>,
    /// Estimated queue occupancy right after read i: queued arrivals with
    /// `ts <= reads[i].ts` minus packets read in batches `0..=i` (saturating).
    occ_after_read: Vec<u64>,
}

impl NfTimeline {
    fn new(nf: NfId, mut arrivals: Vec<Arrival>, reads: Vec<RxBatchInfo>) -> Self {
        arrivals.sort_by_key(|a| a.ts);
        let mut read_prefix = Vec::with_capacity(reads.len() + 1);
        read_prefix.push(0);
        let mut acc = 0u64;
        for r in &reads {
            acc += r.size as u64;
            read_prefix.push(acc);
        }
        let mut queued_prefix = Vec::with_capacity(arrivals.len() + 1);
        queued_prefix.push(0);
        let mut qacc = 0u64;
        for a in &arrivals {
            qacc += u64::from(a.kind == ArrivalKind::Queued);
            queued_prefix.push(qacc);
        }
        let mut last_drained = Vec::with_capacity(reads.len());
        let mut last = None;
        for (i, r) in reads.iter().enumerate() {
            if r.drained {
                last = Some(i);
            }
            last_drained.push(last);
        }
        // Occupancy after each read, by a single merge sweep over the two
        // time-ordered vectors.
        let mut occ_after_read = Vec::with_capacity(reads.len());
        let mut ai = 0usize;
        for (i, r) in reads.iter().enumerate() {
            while ai < arrivals.len() && arrivals[ai].ts <= r.ts {
                ai += 1;
            }
            occ_after_read.push(queued_prefix[ai].saturating_sub(read_prefix[i + 1]));
        }
        Self {
            nf,
            arrivals,
            reads,
            read_prefix,
            queued_prefix,
            last_drained,
            occ_after_read,
        }
    }

    /// Packets read in batches whose timestamp falls in `[a, b]`.
    pub fn processed_in(&self, a: Nanos, b: Nanos) -> u64 {
        let lo = self.reads.partition_point(|r| r.ts < a);
        let hi = self.reads.partition_point(|r| r.ts <= b);
        self.read_prefix[hi] - self.read_prefix[lo]
    }

    /// Queued packets arriving in `[a, b]`.
    pub fn arrived_in(&self, a: Nanos, b: Nanos) -> u64 {
        let (lo, hi) = self.arrival_range(a, b);
        self.queued_prefix[hi] - self.queued_prefix[lo]
    }

    /// Estimated queue occupancy right after read `i` (see §7): queued
    /// arrivals up to the read timestamp minus everything read so far.
    pub fn occupancy_after_read(&self, i: usize) -> u64 {
        self.occ_after_read[i]
    }

    fn arrival_range(&self, a: Nanos, b: Nanos) -> (usize, usize) {
        let lo = self.arrivals.partition_point(|x| x.ts < a);
        let hi = self.arrivals.partition_point(|x| x.ts <= b);
        (lo, hi)
    }

    /// Computes the queuing period seen by a packet arriving at `t`.
    ///
    /// `T0` is the first (queued) arrival after the last ring-draining read
    /// at or before `t`; the period is `[T0, t]`.
    pub fn queuing_period(&self, t: Nanos) -> QueuingPeriod {
        self.queuing_period_above(t, 0)
    }

    /// §7's generalisation: the queuing period with a *non-zero* start
    /// threshold. When an NF's queue never fully empties (sustained load),
    /// the zero-threshold period stretches back unboundedly; instead the
    /// period starts at the last time the estimated queue occupancy was at
    /// or below `threshold` packets. `threshold == 0` reduces to the
    /// batch-size drain signal.
    ///
    /// The queue estimate is reconstructed from the same records the
    /// collector keeps: occupancy after each read = arrivals so far −
    /// packets read so far.
    pub fn queuing_period_above(&self, t: Nanos, threshold: u64) -> QueuingPeriod {
        if threshold == 0 {
            return self.queuing_period_zero(t);
        }
        // Walk reads backwards from t over the precomputed occupancy index
        // and stop at the first point the queue was at or below the
        // threshold. The walk is O(1) per read (and usually stops within a
        // few reads: queues dip between bursts).
        let hi = self.reads.partition_point(|r| r.ts <= t);
        let mut start_ts: Option<Nanos> = None;
        for i in (0..hi).rev() {
            if self.occ_after_read[i] <= threshold {
                start_ts = Some(self.reads[i].ts);
                break;
            }
        }
        let start_idx = match start_ts {
            Some(ts) => self.arrivals.partition_point(|a| a.ts <= ts),
            None => 0,
        };
        self.period_from(start_idx, t)
    }

    fn queuing_period_zero(&self, t: Nanos) -> QueuingPeriod {
        // Last drained read at or before t.
        let hi = self.reads.partition_point(|r| r.ts <= t);
        let drained_ts = if hi == 0 {
            None
        } else {
            self.last_drained[hi - 1].map(|j| self.reads[j].ts)
        };
        // First queued arrival strictly after the drain (or the very first
        // arrival when the queue has been building since the start).
        let start_idx = match drained_ts {
            Some(dts) => self.arrivals.partition_point(|a| a.ts <= dts),
            None => 0,
        };
        self.period_from(start_idx, t)
    }

    /// Builds the period `[first queued arrival >= start_idx, t]`.
    fn period_from(&self, start_idx: usize, t: Nanos) -> QueuingPeriod {
        // Skip dropped arrivals at the front of the period (the period
        // starts with a packet that actually entered the queue) via the
        // queued prefix sums: the first queued arrival at or after
        // `start_idx` is the last index still holding the same prefix count.
        let base = self.queued_prefix[start_idx.min(self.arrivals.len())];
        let s = self.queued_prefix.partition_point(|&c| c <= base) - 1;
        if s >= self.arrivals.len() || self.arrivals[s].ts > t {
            // Queue empty at arrival: degenerate period.
            return QueuingPeriod {
                interval: Interval::new(t, t),
                preset: s..s,
                n_arrived: 0,
                n_processed: 0,
            };
        }
        let t0 = self.arrivals[s].ts;
        let end_idx = self.arrivals.partition_point(|a| a.ts <= t);
        let n_arrived = self.queued_prefix[end_idx] - self.queued_prefix[s];
        let n_processed = self.processed_in(t0, t);
        QueuingPeriod {
            interval: Interval::new(t0, t),
            preset: s..end_idx,
            n_arrived,
            n_processed,
        }
    }
}

/// Incremental construction of one NF's [`NfTimeline`] for the streaming
/// pipeline: reads are appended in time order as record chunks arrive, trace
/// arrivals are staged as traces finalize, and [`Self::settle`] folds the
/// staged arrivals into the flat indexes without re-sorting history.
///
/// The result of [`Self::finish`] is bit-identical to `NfTimeline::new` over
/// the same data, provided arrivals are staged in the same order the offline
/// builder pushes them (trace order, then hop order — which is exactly the
/// streaming engine's commit order). That holds because a stable merge of
/// two stably-sorted runs, with left precedence on timestamp ties, is the
/// stable sort of their concatenation.
#[derive(Debug)]
pub struct NfTimelineBuilder {
    nf: NfId,
    /// Time-sorted arrivals folded in so far (stable in staging order).
    arrivals: Vec<Arrival>,
    /// Arrivals staged since the last [`Self::settle`].
    staged: Vec<Arrival>,
    reads: Vec<RxBatchInfo>,
    read_prefix: Vec<u64>,
    queued_prefix: Vec<u64>,
    last_drained: Vec<Option<usize>>,
    occ_after_read: Vec<u64>,
    /// First read index whose occupancy entry is stale (new reads, or
    /// arrivals staged at or before its timestamp).
    occ_from: usize,
}

impl NfTimelineBuilder {
    /// An empty timeline under construction.
    pub fn new(nf: NfId) -> Self {
        Self {
            nf,
            arrivals: Vec::new(),
            staged: Vec::new(),
            reads: Vec::new(),
            read_prefix: vec![0],
            queued_prefix: vec![0],
            last_drained: Vec::new(),
            occ_after_read: Vec::new(),
            occ_from: 0,
        }
    }

    /// Appends one read batch; batches must arrive in timestamp order (the
    /// collector logs them that way).
    pub fn push_read(&mut self, r: RxBatchInfo) {
        let prev = self.last_drained.last().copied().flatten();
        self.last_drained.push(if r.drained {
            Some(self.reads.len())
        } else {
            prev
        });
        let total = self.read_prefix[self.reads.len()] + r.size as u64;
        self.read_prefix.push(total);
        self.reads.push(r);
    }

    /// Stages one arrival. Arrivals may run backwards in time (in-flight
    /// packets finalize late) but must be staged in offline push order.
    pub fn push_arrival(&mut self, a: Arrival) {
        self.staged.push(a);
    }

    /// Number of reads appended so far.
    pub fn reads_len(&self) -> usize {
        self.reads.len()
    }

    /// Bytes held by the builder's buffers (for working-set accounting).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.arrivals.capacity() + self.staged.capacity()) * size_of::<Arrival>()
            + self.reads.capacity() * size_of::<RxBatchInfo>()
            + (self.read_prefix.capacity()
                + self.queued_prefix.capacity()
                + self.occ_after_read.capacity())
                * size_of::<u64>()
            + self.last_drained.capacity() * size_of::<Option<usize>>()
    }

    /// Folds staged arrivals into the sorted run and brings every flat
    /// index up to date. Cost is O(new + tail touched), not O(history).
    pub fn settle(&mut self) {
        if !self.staged.is_empty() {
            self.staged.sort_by_key(|a| a.ts);
            let min_ts = self.staged[0].ts;
            // Everything at or before the earliest staged timestamp is
            // untouched; ties stay left of the (later-staged) newcomers.
            let keep = self.arrivals.partition_point(|a| a.ts <= min_ts);
            let tail = self.arrivals.split_off(keep);
            let staged = std::mem::take(&mut self.staged);
            self.arrivals.reserve(tail.len() + staged.len());
            let (mut ti, mut si) = (0usize, 0usize);
            while ti < tail.len() && si < staged.len() {
                if tail[ti].ts <= staged[si].ts {
                    self.arrivals.push(tail[ti]);
                    ti += 1;
                } else {
                    self.arrivals.push(staged[si]);
                    si += 1;
                }
            }
            self.arrivals.extend_from_slice(&tail[ti..]);
            self.arrivals.extend_from_slice(&staged[si..]);

            self.queued_prefix.truncate(keep + 1);
            let mut q = self.queued_prefix[keep];
            for a in &self.arrivals[keep..] {
                q += u64::from(a.kind == ArrivalKind::Queued);
                self.queued_prefix.push(q);
            }
            let invalid = self.reads.partition_point(|r| r.ts < min_ts);
            self.occ_from = self.occ_from.min(invalid);
        }
        if self.occ_from < self.reads.len() {
            self.occ_after_read.truncate(self.occ_from);
            let mut ai = match self.occ_from {
                0 => 0,
                i => self
                    .arrivals
                    .partition_point(|a| a.ts <= self.reads[i - 1].ts),
            };
            for i in self.occ_from..self.reads.len() {
                while ai < self.arrivals.len() && self.arrivals[ai].ts <= self.reads[i].ts {
                    ai += 1;
                }
                self.occ_after_read
                    .push(self.queued_prefix[ai].saturating_sub(self.read_prefix[i + 1]));
            }
            self.occ_from = self.reads.len();
        }
    }

    /// Finalises the timeline (settling any staged work first).
    pub fn finish(mut self) -> NfTimeline {
        self.settle();
        NfTimeline {
            nf: self.nf,
            arrivals: self.arrivals,
            reads: self.reads,
            read_prefix: self.read_prefix,
            queued_prefix: self.queued_prefix,
            last_drained: self.last_drained,
            occ_after_read: self.occ_after_read,
        }
    }
}

/// Timelines for every NF, built from a reconstruction.
#[derive(Debug, PartialEq, Eq)]
pub struct Timelines {
    /// Indexed by `NfId`.
    pub nfs: Vec<NfTimeline>,
}

impl Timelines {
    /// Builds all timelines.
    pub fn build(recon: &Reconstruction) -> Self {
        let n = recon.streams.nfs.len();
        let mut arrivals: Vec<Vec<Arrival>> = vec![Vec::new(); n];
        for (t_idx, tr) in recon.traces.iter().enumerate() {
            for (h_idx, h) in recon.hops_of(t_idx).iter().enumerate() {
                arrivals[h.nf.0 as usize].push(Arrival {
                    ts: h.arrival_ts,
                    trace: t_idx,
                    hop: h_idx,
                    kind: ArrivalKind::Queued,
                });
            }
            if let TraceOutcome::InferredDrop { nf, at } = tr.outcome {
                arrivals[nf.0 as usize].push(Arrival {
                    ts: at,
                    trace: t_idx,
                    hop: tr.hop_count(),
                    kind: ArrivalKind::Dropped,
                });
            }
        }
        let nfs = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                NfTimeline::new(NfId(i as u16), a, recon.streams.nfs[i].rx_batches.clone())
            })
            .collect();
        Self { nfs }
    }

    /// The timeline of one NF.
    pub fn nf(&self, nf: NfId) -> &NfTimeline {
        &self.nfs[nf.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(arrival_ts: &[(Nanos, ArrivalKind)], reads: &[(Nanos, usize, bool)]) -> NfTimeline {
        let arrivals = arrival_ts
            .iter()
            .enumerate()
            .map(|(i, &(ts, kind))| Arrival {
                ts,
                trace: i,
                hop: 0,
                kind,
            })
            .collect();
        let reads = reads
            .iter()
            .map(|&(ts, size, drained)| RxBatchInfo { ts, size, drained })
            .collect();
        NfTimeline::new(NfId(0), arrivals, reads)
    }

    const Q: ArrivalKind = ArrivalKind::Queued;

    #[test]
    fn queuing_period_starts_after_last_drain() {
        // Drain at t=100, then arrivals at 150, 200, 260; reads: one batch
        // of 2 at t=250 (full=false but that would end the period...
        // use a non-drained batch).
        let tl = mk(
            &[(50, Q), (150, Q), (200, Q), (260, Q)],
            &[(100, 1, true), (250, 32, false)],
        );
        let qp = tl.queuing_period(260);
        assert_eq!(qp.interval, Interval::new(150, 260));
        assert_eq!(qp.n_arrived, 3); // 150, 200, 260
        assert_eq!(qp.n_processed, 32); // the batch at 250
        assert_eq!(qp.preset.len(), 3);
    }

    #[test]
    fn period_without_any_drain_starts_at_first_arrival() {
        let tl = mk(&[(10, Q), (20, Q)], &[]);
        let qp = tl.queuing_period(25);
        assert_eq!(qp.interval, Interval::new(10, 25));
        assert_eq!(qp.n_arrived, 2);
        assert_eq!(qp.n_processed, 0);
        assert_eq!(qp.queue_len(), 2);
    }

    #[test]
    fn empty_queue_gives_degenerate_period() {
        // Drain at 100; victim arrives at 120 with nothing in between.
        let tl = mk(&[(50, Q)], &[(100, 1, true)]);
        let qp = tl.queuing_period(120);
        assert!(qp.is_empty());
        assert_eq!(qp.len(), 0);
    }

    #[test]
    fn dropped_arrivals_do_not_count_as_input() {
        let tl = mk(
            &[(150, Q), (160, ArrivalKind::Dropped), (170, Q)],
            &[(100, 1, true)],
        );
        let qp = tl.queuing_period(170);
        assert_eq!(qp.n_arrived, 2);
        // But the dropped arrival is still inside the preset index range.
        assert_eq!(qp.preset.len(), 3);
    }

    #[test]
    fn dropped_arrival_cannot_open_a_period() {
        let tl = mk(&[(150, ArrivalKind::Dropped), (170, Q)], &[(100, 1, true)]);
        let qp = tl.queuing_period(170);
        assert_eq!(qp.interval, Interval::new(170, 170));
        assert_eq!(qp.n_arrived, 1);
    }

    #[test]
    fn processed_in_uses_prefix_sums() {
        let tl = mk(&[], &[(100, 10, false), (200, 20, false), (300, 30, true)]);
        assert_eq!(tl.processed_in(100, 300), 60);
        assert_eq!(tl.processed_in(150, 250), 20);
        assert_eq!(tl.processed_in(301, 400), 0);
    }

    #[test]
    fn arrived_in_counts_queued_only() {
        let tl = mk(&[(10, Q), (20, ArrivalKind::Dropped), (30, Q)], &[]);
        assert_eq!(tl.arrived_in(0, 100), 2);
        assert_eq!(tl.arrived_in(15, 25), 0);
    }

    #[test]
    fn nonzero_threshold_shortens_never_empty_periods() {
        // The queue never drains (all reads are full 32-batches), so the
        // zero-threshold period reaches back to the very first arrival —
        // but the occupancy dipped to 3 after the second read, so a
        // threshold of 4 starts the period there (§7).
        let arrivals: Vec<(Nanos, ArrivalKind)> = (0..70).map(|i| (100 + i * 10, Q)).collect();
        let tl = mk(&arrivals, &[(400, 32, false), (450, 32, false)]);
        // At read ts=450: arrived = packets with ts<=450 = 36, processed 64
        // -> occupancy 0 (saturating), well below threshold 4.
        let zero = tl.queuing_period(790);
        assert_eq!(zero.interval.start, 100);
        let thr = tl.queuing_period_above(790, 4);
        assert!(thr.interval.start > 400, "{thr:?}");
        assert!(thr.n_arrived < zero.n_arrived);
    }

    #[test]
    fn threshold_zero_is_the_drain_signal() {
        let tl = mk(&[(50, Q), (150, Q), (200, Q)], &[(100, 1, true)]);
        assert_eq!(tl.queuing_period(200), tl.queuing_period_above(200, 0));
    }

    /// Naive re-derivation of `queuing_period_above` by direct scans, used
    /// to pin the indexed implementation (prefix sums + occupancy list).
    fn reference_period_above(tl: &NfTimeline, t: Nanos, threshold: u64) -> QueuingPeriod {
        let start_idx = if threshold == 0 {
            let hi = tl.reads.partition_point(|r| r.ts <= t);
            let drained_ts = (0..hi)
                .rev()
                .find(|&j| tl.reads[j].drained)
                .map(|j| tl.reads[j].ts);
            match drained_ts {
                Some(dts) => tl.arrivals.partition_point(|a| a.ts <= dts),
                None => 0,
            }
        } else {
            let hi = tl.reads.partition_point(|r| r.ts <= t);
            let mut start_ts = None;
            for i in (0..hi).rev() {
                let ts = tl.reads[i].ts;
                let arrived_q = tl
                    .arrivals
                    .iter()
                    .filter(|a| a.ts <= ts && a.kind == ArrivalKind::Queued)
                    .count() as u64;
                let processed: u64 = tl.reads[..=i].iter().map(|r| r.size as u64).sum();
                if arrived_q.saturating_sub(processed) <= threshold {
                    start_ts = Some(ts);
                    break;
                }
            }
            match start_ts {
                Some(ts) => tl.arrivals.partition_point(|a| a.ts <= ts),
                None => 0,
            }
        };
        let mut s = start_idx;
        while s < tl.arrivals.len()
            && tl.arrivals[s].ts <= t
            && tl.arrivals[s].kind == ArrivalKind::Dropped
        {
            s += 1;
        }
        if s >= tl.arrivals.len() || tl.arrivals[s].ts > t {
            // The indexed path reports the first queued arrival index in the
            // degenerate preset; mirror that.
            while s < tl.arrivals.len() && tl.arrivals[s].kind == ArrivalKind::Dropped {
                s += 1;
            }
            return QueuingPeriod {
                interval: Interval::new(t, t),
                preset: s..s,
                n_arrived: 0,
                n_processed: 0,
            };
        }
        let t0 = tl.arrivals[s].ts;
        let end_idx = tl.arrivals.partition_point(|a| a.ts <= t);
        QueuingPeriod {
            interval: Interval::new(t0, t),
            preset: s..end_idx,
            n_arrived: tl.arrivals[s..end_idx]
                .iter()
                .filter(|a| a.kind == ArrivalKind::Queued)
                .count() as u64,
            n_processed: tl.processed_in(t0, t),
        }
    }

    #[test]
    fn indexed_periods_match_naive_reference() {
        // Pseudo-random timelines (plain LCG: no external dependency) with
        // mixed queued/dropped arrivals and mixed drained/full reads; the
        // indexed implementation must agree with the direct-scan reference
        // at every probe time and threshold.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..50 {
            let n_arr = (rng() % 60) as usize;
            let n_reads = (rng() % 20) as usize;
            let mut ts = 0u64;
            let arrivals: Vec<(Nanos, ArrivalKind)> = (0..n_arr)
                .map(|_| {
                    ts += rng() % 500;
                    let kind = if rng() % 5 == 0 {
                        ArrivalKind::Dropped
                    } else {
                        ArrivalKind::Queued
                    };
                    (ts, kind)
                })
                .collect();
            let mut rts = 0u64;
            let reads: Vec<(Nanos, usize, bool)> = (0..n_reads)
                .map(|_| {
                    rts += rng() % 1500;
                    (rts, (rng() % 32 + 1) as usize, rng() % 3 == 0)
                })
                .collect();
            let tl = mk(&arrivals, &reads);
            let horizon = ts.max(rts) + 100;
            for _ in 0..20 {
                let t = rng() % horizon;
                for thr in [0u64, 1, 4, 32] {
                    assert_eq!(
                        tl.queuing_period_above(t, thr),
                        reference_period_above(&tl, t, thr),
                        "t={t} thr={thr} arrivals={arrivals:?} reads={reads:?}"
                    );
                }
            }
        }
    }

    fn assert_timeline_eq(a: &NfTimeline, b: &NfTimeline, ctx: &str) {
        assert_eq!(a.nf, b.nf, "{ctx}: nf");
        assert_eq!(a.arrivals, b.arrivals, "{ctx}: arrivals");
        assert_eq!(a.reads, b.reads, "{ctx}: reads");
        assert_eq!(a.read_prefix, b.read_prefix, "{ctx}: read_prefix");
        assert_eq!(a.queued_prefix, b.queued_prefix, "{ctx}: queued_prefix");
        assert_eq!(a.last_drained, b.last_drained, "{ctx}: last_drained");
        assert_eq!(a.occ_after_read, b.occ_after_read, "{ctx}: occ_after_read");
    }

    #[test]
    fn incremental_builder_matches_batch_construction() {
        // Random arrival/read sequences pushed through the builder in
        // chunks — with arrivals landing out of time order and some staged
        // behind already-appended reads, the way late-finalizing traces do —
        // must reproduce `NfTimeline::new` index for index.
        let mut state = 0x51ce_b00b_5151_c0deu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..40 {
            let n_arr = (rng() % 80) as usize;
            let n_reads = (rng() % 25) as usize;
            // Offline push order: trace order. Timestamps are only loosely
            // increasing so later pushes can predate earlier ones.
            let arrivals: Vec<Arrival> = (0..n_arr)
                .map(|i| Arrival {
                    ts: (i as u64 * 50).saturating_sub(rng() % 400) + rng() % 300,
                    trace: i,
                    hop: 0,
                    kind: if rng() % 5 == 0 {
                        ArrivalKind::Dropped
                    } else {
                        ArrivalKind::Queued
                    },
                })
                .collect();
            let mut rts = 0u64;
            let reads: Vec<RxBatchInfo> = (0..n_reads)
                .map(|_| {
                    rts += rng() % 900;
                    RxBatchInfo {
                        ts: rts,
                        size: (rng() % 32 + 1) as usize,
                        drained: rng() % 3 == 0,
                    }
                })
                .collect();
            let expected = NfTimeline::new(NfId(3), arrivals.clone(), reads.clone());

            for n_chunks in [1usize, 2, 5] {
                let mut b = NfTimelineBuilder::new(NfId(3));
                let (mut ai, mut ri) = (0usize, 0usize);
                for c in 0..n_chunks {
                    let a_to = if c + 1 == n_chunks {
                        arrivals.len()
                    } else {
                        (arrivals.len() * (c + 1)) / n_chunks
                    };
                    let r_to = if c + 1 == n_chunks {
                        reads.len()
                    } else {
                        (reads.len() * (c + 1)) / n_chunks
                    };
                    while ri < r_to {
                        b.push_read(reads[ri]);
                        ri += 1;
                    }
                    while ai < a_to {
                        b.push_arrival(arrivals[ai]);
                        ai += 1;
                    }
                    b.settle();
                }
                let got = b.finish();
                assert_timeline_eq(&got, &expected, &format!("round {round} chunks {n_chunks}"));
            }
        }
    }

    #[test]
    fn si_sp_identity_holds() {
        // Invariant from §4.1: n_i - n_p = queue length at arrival.
        let tl = mk(
            &[(150, Q), (160, Q), (170, Q), (180, Q), (190, Q)],
            &[(100, 5, true), (175, 2, false)],
        );
        let qp = tl.queuing_period(190);
        // Arrived: 150..190 = 5; processed at 175: 2. Queue = 3.
        assert_eq!(qp.queue_len(), 3);
    }
}
