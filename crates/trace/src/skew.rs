//! Clock-skew estimation and correction (§7).
//!
//! When NFs run on different servers, their collector timestamps carry
//! per-host clock offsets, which would wreck the timing side channel and
//! every queuing-period computation. The paper points to PTP/Huygens for
//! microsecond-level synchronisation; this module implements the software
//! fallback: estimate each NF's offset *from the records themselves* and
//! rewrite the bundle onto the source's clock.
//!
//! The estimator uses the network-measurement classic: for every edge
//! `u → d` and every IPID, the difference between `d`'s first read of that
//! IPID and `u`'s first send of it equals `offset(d) − offset(u)` plus a
//! non-negative queueing delay. A low percentile over many IPIDs
//! approximates the pure offset difference (some packet always arrives to a
//! near-empty ring). Offsets then propagate from the source (offset 0)
//! through the DAG in topological order, averaging over parallel upstream
//! estimates.

use crate::streams::EdgeStreams;
use msc_collector::TraceBundle;
use nf_types::{Ipid, Nanos, NfId, NodeId, TimeDelta, Topology};
use std::collections::HashMap;

/// Configuration for the estimator.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Which percentile of per-IPID deltas approximates the offset (small,
    /// but not the raw minimum, for robustness against IPID collisions).
    pub percentile: f64,
    /// Minimum samples per edge to trust an estimate.
    pub min_samples: usize,
}

impl Default for SkewConfig {
    fn default() -> Self {
        Self {
            percentile: 0.05,
            min_samples: 16,
        }
    }
}

/// Per-edge raw estimate of `offset(down) − offset(up)`.
///
/// Pairs the edge's send stream with the downstream read stream by greedy
/// in-order IPID matching (both streams preserve the edge's relative packet
/// order), then takes a low percentile of the read−send deltas. The greedy
/// pairing occasionally grabs a same-IPID packet from *another* upstream
/// (collisions), and every true pair carries a non-negative queueing delay;
/// a percentile between those two failure modes is robust to both.
fn edge_delta(
    streams: &EdgeStreams,
    up: NodeId,
    down: NfId,
    cfg: &SkewConfig,
) -> Option<TimeDelta> {
    let rx = &streams.nfs[down.0 as usize].rx;
    // Per-IPID positions in the rx stream for O(log) in-order lookup.
    let mut rx_by_ipid: HashMap<Ipid, Vec<usize>> = HashMap::new();
    for (i, e) in rx.iter().enumerate() {
        rx_by_ipid.entry(e.ipid).or_default().push(i);
    }
    // Pairs whose IPID recurs nearby in the rx stream are likely cross-edge
    // collisions; skip them (we only need *some* clean samples).
    const AMBIG_DIST: usize = 96;
    let mut cursor = 0usize;
    let mut deltas: Vec<TimeDelta> = Vec::new();
    for pos in 0..streams.edge_len(up, down) {
        let (tx_ts, ipid) = streams.edge_entry(up, down, pos);
        let Some(positions) = rx_by_ipid.get(&ipid) else {
            continue;
        };
        let i = positions.partition_point(|&p| p < cursor);
        let Some(&rx_idx) = positions.get(i) else {
            continue;
        };
        let prev_close = i > 0 && rx_idx.saturating_sub(positions[i - 1]) < AMBIG_DIST;
        let next_close = positions
            .get(i + 1)
            .is_some_and(|&n| n - rx_idx < AMBIG_DIST);
        cursor = rx_idx + 1;
        if prev_close || next_close {
            continue;
        }
        deltas.push(rx[rx_idx].ts as i64 - tx_ts as i64);
    }
    if deltas.len() < cfg.min_samples {
        return None;
    }
    deltas.sort_unstable();
    let idx = ((deltas.len() - 1) as f64 * cfg.percentile).round() as usize;
    Some(deltas[idx])
}

/// Per-NF offsets plus per-NF availability: which estimates actually came
/// from edge samples and which are the fallback value.
///
/// The plain [`estimate_offsets`] API silently returns offset 0 for an NF
/// with too few samples — indistinguishable from a genuinely synchronised
/// clock, which is exactly wrong for a streaming window that happens to be
/// quiet on one edge. Callers that re-estimate per window should use
/// [`estimate_offsets_detailed`] (or [`SkewTracker`]) and carry the last
/// known offset forward instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewEstimates {
    /// Offset per NF in `NfId` order (fallback 0 where unavailable).
    pub offsets: Vec<TimeDelta>,
    /// Whether each NF's offset was actually estimated from samples.
    pub available: Vec<bool>,
}

/// Estimates each NF's clock offset relative to the traffic source,
/// reporting which NFs actually had usable edge samples.
///
/// Subtracting an NF's offset from its record timestamps moves them onto
/// the source clock.
pub fn estimate_offsets_detailed(
    topology: &Topology,
    bundle: &TraceBundle,
    cfg: &SkewConfig,
) -> SkewEstimates {
    let streams = EdgeStreams::build(topology, bundle);
    let mut offsets: Vec<Option<TimeDelta>> = vec![None; topology.len()];

    for &nf in topology.topo_order() {
        let mut estimates: Vec<TimeDelta> = Vec::new();
        for up in topology.upstream_nodes(nf) {
            let up_offset = match up {
                NodeId::Source => Some(0),
                NodeId::Nf(u) => offsets[u.0 as usize],
            };
            let (Some(up_off), Some(delta)) = (up_offset, edge_delta(&streams, up, nf, cfg)) else {
                continue;
            };
            estimates.push(up_off + delta);
        }
        if !estimates.is_empty() {
            offsets[nf.0 as usize] = Some(estimates.iter().sum::<i64>() / estimates.len() as i64);
        }
    }
    SkewEstimates {
        available: offsets.iter().map(Option::is_some).collect(),
        offsets: offsets.into_iter().map(|o| o.unwrap_or(0)).collect(),
    }
}

/// Estimates each NF's clock offset relative to the traffic source.
///
/// Returns one offset per NF (`NfId` order). NFs with no usable edge
/// samples fall back to offset 0; use [`estimate_offsets_detailed`] to
/// distinguish that fallback from a real zero estimate.
pub fn estimate_offsets(
    topology: &Topology,
    bundle: &TraceBundle,
    cfg: &SkewConfig,
) -> Vec<TimeDelta> {
    estimate_offsets_detailed(topology, bundle, cfg).offsets
}

/// Rolling per-window skew estimation for the streaming engine.
///
/// Each window re-estimates offsets from that window's records alone. A
/// quiet edge used to silently reset its NF to offset 0 mid-run (the
/// `unwrap_or(0)` fallback), stepping the corrected clock by the full skew;
/// the tracker instead carries the last-known offset forward and counts the
/// miss so the report can say "skew estimate unavailable" explicitly.
#[derive(Debug, Clone)]
pub struct SkewTracker {
    cfg: SkewConfig,
    last: Vec<TimeDelta>,
    misses: Vec<u64>,
    windows: u64,
}

impl SkewTracker {
    /// A tracker for `n_nfs` NFs, starting from offset 0 everywhere.
    pub fn new(n_nfs: usize, cfg: SkewConfig) -> Self {
        Self {
            cfg,
            last: vec![0; n_nfs],
            misses: vec![0; n_nfs],
            windows: 0,
        }
    }

    /// Ingests one window's bundle and returns the offsets to apply to it:
    /// fresh refined estimates where available, the previous window's
    /// offsets (initially 0) where not.
    pub fn observe(&mut self, topology: &Topology, window: &TraceBundle) -> Vec<TimeDelta> {
        let est = estimate_offsets_refined_detailed(topology, window, &self.cfg);
        self.windows += 1;
        for (i, last) in self.last.iter_mut().enumerate() {
            if est.available.get(i).copied().unwrap_or(false) {
                *last = est.offsets[i];
            } else {
                self.misses[i] += 1;
            }
        }
        self.last.clone()
    }

    /// The most recent per-NF offsets.
    pub fn offsets(&self) -> &[TimeDelta] {
        &self.last
    }

    /// Windows observed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// One report note per NF whose estimate went missing in at least one
    /// window, so the fallback is visible instead of silent.
    pub fn notes(&self, topology: &Topology) -> Vec<String> {
        self.misses
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m > 0)
            .map(|(i, &m)| {
                format!(
                    "skew estimate unavailable for {} in {m}/{} windows; carried last-known offset forward",
                    topology.nf(NfId(i as u16)).name,
                    self.windows
                )
            })
            .collect()
    }
}

/// Multi-pass estimator: coarse per-edge percentile sync, then iterative
/// cross-correlation refinement with shrinking histogram bins.
///
/// The coarse pass (greedy in-order IPID pairing) is only accurate to a few
/// hundred µs at heavily multiplexed NFs. Each refinement pass corrects the
/// bundle with the current estimate and cross-correlates every edge's send
/// stream against the downstream read stream: all same-IPID (send, read)
/// pairs within a search window vote for their time delta. True pairs vote
/// coherently — queueing delay is non-negative and some packet is always
/// read the moment it arrives, so the coherent mass has a hard low edge at
/// exactly the residual offset — while collision pairs spread smoothly.
/// The steepest rise of the histogram locates that edge. Passes shrink the
/// bin width 100 µs → 1 µs, reaching the microsecond-level accuracy the
/// paper says reconstruction needs (it cites PTP/Huygens for the same
/// job).
pub fn estimate_offsets_refined(
    topology: &Topology,
    bundle: &TraceBundle,
    cfg: &SkewConfig,
) -> Vec<TimeDelta> {
    estimate_offsets_refined_detailed(topology, bundle, cfg).offsets
}

/// [`estimate_offsets_refined`] plus per-NF availability: an NF counts as
/// estimated when the coarse pass had edge samples *or* any refinement
/// pass found a coherent cross-correlation spike on one of its edges.
/// Per-window callers ([`SkewTracker`]) need this to tell a refined zero
/// from the silent fallback.
pub fn estimate_offsets_refined_detailed(
    topology: &Topology,
    bundle: &TraceBundle,
    cfg: &SkewConfig,
) -> SkewEstimates {
    let coarse = estimate_offsets_detailed(topology, bundle, cfg);
    let mut est = coarse.offsets;
    let mut available = coarse.available;

    for (bin_ns, search_ns) in [
        (100_000i64, 20_000_000i64),
        (10_000, 2_000_000),
        (1_000, 200_000),
    ] {
        let corrected = correct_bundle(bundle, &est);
        let streams = EdgeStreams::build(topology, &corrected);
        let mut residual = vec![0i64; topology.len()];
        for &nf in topology.topo_order() {
            let mut estimates: Vec<TimeDelta> = Vec::new();
            for up in topology.upstream_nodes(nf) {
                let Some(delta) = edge_residual(&streams, up, nf, bin_ns, search_ns, cfg) else {
                    continue;
                };
                let up_res = match up {
                    NodeId::Source => 0,
                    NodeId::Nf(u) => residual[u.0 as usize],
                };
                estimates.push(up_res + delta);
            }
            if !estimates.is_empty() {
                residual[nf.0 as usize] = estimates.iter().sum::<i64>() / estimates.len() as i64;
                available[nf.0 as usize] = true;
            }
        }
        for (e, r) in est.iter_mut().zip(&residual) {
            *e += r;
        }
    }
    SkewEstimates {
        offsets: est,
        available,
    }
}

/// One cross-correlation residual estimate for an edge (see
/// [`estimate_offsets_refined`]).
fn edge_residual(
    streams: &EdgeStreams,
    up: NodeId,
    down: NfId,
    bin_ns: i64,
    search_ns: i64,
    cfg: &SkewConfig,
) -> Option<TimeDelta> {
    let rx = &streams.nfs[down.0 as usize].rx;
    let mut rx_by_ipid: HashMap<Ipid, Vec<Nanos>> = HashMap::new();
    for e in rx {
        rx_by_ipid.entry(e.ipid).or_default().push(e.ts);
    }
    let mut deltas: Vec<TimeDelta> = Vec::new();
    for pos in 0..streams.edge_len(up, down) {
        let (tx_ts, ipid) = streams.edge_entry(up, down, pos);
        let Some(times) = rx_by_ipid.get(&ipid) else {
            continue;
        };
        // lint: time-arith-ok(search_ns is already i64; both sides of the comparison are signed deltas)
        let lo = times.partition_point(|&t| (t as i64) < tx_ts as i64 - search_ns);
        for &t in &times[lo..] {
            let d = t as i64 - tx_ts as i64;
            if d > search_ns {
                break;
            }
            deltas.push(d);
        }
    }
    if deltas.len() < cfg.min_samples {
        return None;
    }
    let mut bins: HashMap<i64, usize> = HashMap::new();
    for &d in &deltas {
        *bins.entry(d.div_euclid(bin_ns)).or_default() += 1;
    }
    let n_bins = (2 * search_ns / bin_ns) as usize;
    let noise = deltas.len() / n_bins.max(1) + 1;
    // Max over the composite key (count, bin): equal counts are broken by
    // the bin value, so the winner is independent of HashMap order.
    // lint: order-insensitive(max over the total key (count, bin) — tied counts resolve to the largest bin)
    let (&peak_bin, &peak_n) = bins.iter().max_by_key(|&(&b, &n)| (n, b))?;
    if peak_n < 4 * noise {
        return None; // no coherent spike — refuse rather than guess
    }
    // The spike's lower boundary is its steepest rise: queueing delay is
    // non-negative, so the coherent mass starts abruptly at the residual.
    // Clamp the scan to the contiguously populated run of bins ending at
    // the peak: the coherent mass is contiguous by construction, so bins
    // past the first gap belong to detached collision clusters — scanning
    // into one used to pick its rise and drag the `min` below far under
    // the true spike edge (and a peak at the minimum populated bin must
    // simply scan itself).
    let mut lo = peak_bin - (1_000_000 / bin_ns).max(4);
    while lo < peak_bin && !bins.contains_key(&lo) {
        lo += 1;
    }
    let mut run_lo = peak_bin;
    while run_lo > lo && bins.contains_key(&(run_lo - 1)) {
        run_lo -= 1;
    }
    let edge_bin = (run_lo..=peak_bin)
        .max_by_key(|b| {
            bins.get(b).copied().unwrap_or(0) as i64
                - bins.get(&(b - 1)).copied().unwrap_or(0) as i64
        })
        .unwrap_or(peak_bin);
    deltas
        .iter()
        .filter(|&&d| {
            let b = d.div_euclid(bin_ns);
            b >= edge_bin && b <= peak_bin
        })
        .min()
        .copied()
}

/// Rewrites a bundle onto the source clock by subtracting the per-NF
/// offsets from every record timestamp.
pub fn correct_bundle(bundle: &TraceBundle, offsets: &[TimeDelta]) -> TraceBundle {
    let mut out = bundle.clone();
    for log in &mut out.logs {
        let off = offsets.get(log.nf.0 as usize).copied().unwrap_or(0);
        let fix = |ts: Nanos| -> Nanos { (ts as i64).saturating_sub(off).max(0) as Nanos };
        for b in &mut log.rx {
            b.ts = fix(b.ts);
        }
        for b in &mut log.tx {
            b.ts = fix(b.ts);
        }
        for f in &mut log.flows {
            f.ts = fix(f.ts);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use nf_types::{FiveTuple, NfKind, Proto};

    fn chain() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        b.build().unwrap()
    }

    /// Builds a bundle where nat1's clock is +1 ms and vpn1's is −0.5 ms.
    fn skewed_bundle(topology: &Topology) -> TraceBundle {
        let off = [1_000_000i64, -500_000i64];
        let mut c = Collector::new(topology, CollectorConfig::default());
        for i in 0..200u16 {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
            };
            let t = 1_000_000 + i as u64 * 10_000; // true emission time
            c.record_source(t, &m);
            // NAT reads ~1 µs later, sends ~2 µs later (true clock), but its
            // records carry its skewed clock.
            c.record_rx(NfId(0), (t as i64 + 1_000 + off[0]) as u64, &[m]);
            c.record_tx(
                NfId(0),
                (t as i64 + 2_000 + off[0]) as u64,
                Some(NfId(1)),
                &[m],
            );
            c.record_rx(NfId(1), (t as i64 + 3_000 + off[1]) as u64, &[m]);
            c.record_tx(NfId(1), (t as i64 + 5_000 + off[1]) as u64, None, &[m]);
        }
        c.into_bundle()
    }

    #[test]
    fn offsets_recovered_within_service_time_tolerance() {
        let topo = chain();
        let bundle = skewed_bundle(&topo);
        let offsets = estimate_offsets(&topo, &bundle, &SkewConfig::default());
        // Tolerance: the minimal queueing/service slack baked into the
        // samples (a few µs here).
        assert!(
            (offsets[0] - 1_000_000).abs() < 5_000,
            "nat offset {}",
            offsets[0]
        );
        assert!(
            (offsets[1] + 500_000).abs() < 10_000,
            "vpn offset {}",
            offsets[1]
        );
    }

    #[test]
    fn corrected_bundle_restores_causal_order() {
        let topo = chain();
        let bundle = skewed_bundle(&topo);
        // With −0.5 ms at the VPN vs +1 ms at the NAT, raw records violate
        // causality: the VPN "reads" packets before the NAT "sends" them.
        let nat_tx = bundle.log(NfId(0)).tx[0].ts;
        let vpn_rx = bundle.log(NfId(1)).rx[0].ts;
        assert!(vpn_rx < nat_tx, "sanity: raw bundle is acausal");

        let offsets = estimate_offsets(&topo, &bundle, &SkewConfig::default());
        let fixed = correct_bundle(&bundle, &offsets);
        let nat_tx = fixed.log(NfId(0)).tx[0].ts;
        let vpn_rx = fixed.log(NfId(1)).rx[0].ts;
        assert!(
            vpn_rx >= nat_tx,
            "corrected bundle must be causal: tx {nat_tx} rx {vpn_rx}"
        );
    }

    #[test]
    fn no_skew_estimates_near_zero() {
        let topo = chain();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        for i in 0..100u16 {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
            };
            let t = i as u64 * 10_000;
            c.record_source(t, &m);
            c.record_rx(NfId(0), t + 500, &[m]);
            c.record_tx(NfId(0), t + 1_000, Some(NfId(1)), &[m]);
            c.record_rx(NfId(1), t + 1_500, &[m]);
            c.record_tx(NfId(1), t + 3_000, None, &[m]);
        }
        let offsets = estimate_offsets(&topo, &c.into_bundle(), &SkewConfig::default());
        for o in offsets {
            assert!(o.abs() < 2_000, "offset {o}");
        }
    }

    #[test]
    fn too_few_samples_defaults_to_zero() {
        let topo = chain();
        let c = Collector::new(&topo, CollectorConfig::default());
        let offsets = estimate_offsets(&topo, &c.into_bundle(), &SkewConfig::default());
        assert_eq!(offsets, vec![0, 0]);
    }

    #[test]
    fn detailed_estimates_flag_unavailable_nfs() {
        let topo = chain();
        // Empty bundle: nothing is estimable, and the API must say so
        // instead of passing the zero fallback off as a measurement.
        let empty = Collector::new(&topo, CollectorConfig::default()).into_bundle();
        let est = estimate_offsets_detailed(&topo, &empty, &SkewConfig::default());
        assert_eq!(est.offsets, vec![0, 0]);
        assert_eq!(est.available, vec![false, false]);

        let est = estimate_offsets_detailed(&topo, &skewed_bundle(&topo), &SkewConfig::default());
        assert_eq!(est.available, vec![true, true]);
        assert!((est.offsets[0] - 1_000_000).abs() < 5_000);
    }

    /// Regression: a streaming window with a quiet edge used to reset that
    /// NF's offset to 0 (the silent `unwrap_or(0)` fallback), stepping its
    /// corrected clock by the full skew mid-run. The tracker must carry the
    /// last-known offset forward and surface the miss as a note.
    #[test]
    fn tracker_carries_last_known_offset_across_quiet_windows() {
        let topo = chain();
        let mut tracker = SkewTracker::new(topo.len(), SkewConfig::default());

        let rich = tracker.observe(&topo, &skewed_bundle(&topo));
        assert!(
            (rich[0] - 1_000_000).abs() < 5_000,
            "nat offset {}",
            rich[0]
        );
        assert!((rich[1] + 500_000).abs() < 10_000, "vpn offset {}", rich[1]);

        // A quiet window: too few samples on every edge.
        let quiet = Collector::new(&topo, CollectorConfig::default()).into_bundle();
        let carried = tracker.observe(&topo, &quiet);
        assert_eq!(carried, rich, "quiet window must not reset offsets");
        assert_eq!(tracker.offsets(), rich.as_slice());

        let notes = tracker.notes(&topo);
        assert_eq!(notes.len(), 2);
        assert!(
            notes[0].contains("nat1") && notes[0].contains("1/2 windows"),
            "note: {}",
            notes[0]
        );
    }

    /// Regression for the `edge_bin` scan: a detached collision cluster far
    /// below the coherent spike used to win the steepest-rise search (the
    /// scan ranged over up to 1 ms of bins regardless of gaps), dragging
    /// the returned minimum ~50 µs under the true spike edge. The scan must
    /// stay within the contiguously populated run ending at the peak.
    #[test]
    fn edge_residual_ignores_detached_cluster_below_the_spike() {
        let topo = chain();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        // One sample per IPID so each (send, read) pair contributes exactly
        // its own delta: 15 collision-like samples at ~-50 µs, then a spike
        // of 12 at ~5.1 µs (its low edge) and 20 at ~6.1 µs (its peak).
        let mut deltas: Vec<i64> = Vec::new();
        for k in 0..15 {
            deltas.push(-50_000 + k);
        }
        for k in 0..12 {
            deltas.push(5_100 + k);
        }
        for k in 0..20 {
            deltas.push(6_100 + k);
        }
        for (k, &d) in deltas.iter().enumerate() {
            let m = PacketMeta {
                ipid: k as u16,
                flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
            };
            let ts = 1_000_000 + k as u64 * 500_000;
            c.record_tx(NfId(0), ts, Some(NfId(1)), &[m]);
            c.record_rx(NfId(1), (ts as i64 + d) as u64, &[m]);
        }
        let streams = EdgeStreams::build(&topo, &c.into_bundle());
        let got = edge_residual(
            &streams,
            NodeId::Nf(NfId(0)),
            NfId(1),
            1_000,
            200_000,
            &SkewConfig::default(),
        )
        .expect("spike is coherent enough to estimate");
        assert!(
            (5_000..6_000).contains(&got),
            "edge residual {got} must sit at the spike's low edge, not the cluster"
        );
    }

    /// The paper-named corner: with zero queueing spread every delta lands
    /// in a single histogram bin — the spike *is* the minimum populated bin
    /// and the steepest-rise scan has nothing below it to look at.
    #[test]
    fn refined_recovers_offsets_with_spike_at_minimum_bin() {
        let topo = chain();
        let off = [700_000i64, -300_000i64];
        let mut c = Collector::new(&topo, CollectorConfig::default());
        for i in 0..200u16 {
            let m = PacketMeta {
                ipid: i,
                flow: FiveTuple::new(1, 2, 1000 + i, 80, Proto::TCP),
            };
            let t = 1_000_000 + i as u64 * 10_000;
            c.record_source(t, &m);
            // Constant per-hop latency: zero spread, single-bin spikes.
            c.record_rx(NfId(0), (t as i64 + 1_000 + off[0]) as u64, &[m]);
            c.record_tx(
                NfId(0),
                (t as i64 + 2_000 + off[0]) as u64,
                Some(NfId(1)),
                &[m],
            );
            c.record_rx(NfId(1), (t as i64 + 3_000 + off[1]) as u64, &[m]);
            c.record_tx(NfId(1), (t as i64 + 5_000 + off[1]) as u64, None, &[m]);
        }
        let bundle = c.into_bundle();
        // Tolerance: the estimator's floor is the minimum queueing delay on
        // the path (a constant 1 µs per hop here) — that bias is inherent,
        // the scan must not add anything on top of it.
        let est = estimate_offsets_refined(&topo, &bundle, &SkewConfig::default());
        assert!((est[0] - off[0]).abs() <= 1_500, "nat offset {}", est[0]);
        assert!((est[1] - off[1]).abs() <= 2_500, "vpn offset {}", est[1]);
    }
}
