//! Cross-NF packet matching: aligning a downstream NF's read stream with
//! its upstream NFs' send streams.
//!
//! For a downstream NF `d`, the packets it reads are exactly the packets its
//! upstream nodes sent to it (path channel). Each upstream's sends arrive in
//! order (per-edge FIFO ⇒ order channel) minus any dropped at a full ring,
//! and each packet is read no earlier than it was sent and no later than the
//! maximum queueing delay (timing channel). Crucially, FIFO holds *per
//! edge*: the interleaving of different upstreams at the ring is not exactly
//! observable (sends can carry equal timestamps), so the matcher keeps an
//! independent cursor per upstream edge rather than assuming a global merge
//! order.
//!
//! For every rx entry the matcher finds, per upstream, the first
//! not-yet-consumed send with the same IPID inside the timing window (an
//! O(log n) lookup via a per-IPID position index). One candidate ⇒ match.
//! Multiple candidates ⇒ the Fig. 9 situation: bounded lookahead plays each
//! choice forward and keeps the one that leaves more of the *following* rx
//! entries alignable. Sends skipped behind a same-edge match are inferred
//! drops; sends never reached stay unresolved (in flight at the end of the
//! run).

use crate::streams::EdgeStreams;
use nf_types::{Ipid, Nanos, NfId, NodeId, Topology};

/// Size of the IPID value space (`Ipid` is `u16`): the per-edge index is a
/// dense counting-sort table over all 2^16 values.
const IPID_SPACE: usize = 1 << 16;

/// What happened to the `pos`-th packet sent on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// It was read by the downstream NF as rx entry `rx_idx`.
    Matched(usize),
    /// It never appears downstream although later same-edge packets do — it
    /// was dropped at the full input ring.
    InferredDrop,
    /// The run ended (or matching failed) before its fate was visible.
    Unresolved,
}

/// Matching configuration.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Maximum send→read delay considered possible (queueing + stalls).
    pub delay_bound_ns: Nanos,
    /// Lookahead depth used to break IPID collisions.
    pub lookahead: usize,
    /// How far a read may appear *before* its send and still be eligible.
    /// 0 on a single clock; set to a few hundred µs on skew-corrected
    /// multi-server bundles, where residual clock error can invert
    /// closely-spaced timestamps.
    pub negative_slack_ns: Nanos,
    /// Disable to ablate the order side channel (§5): IPID collisions are
    /// then broken by earliest send time alone, with no lookahead.
    pub use_order_channel: bool,
    /// Workers for building the per-upstream-edge streams (`0` = auto,
    /// `1` = sequential). The rx walk itself is inherently sequential (each
    /// match advances a cursor the next read depends on), but the per-edge
    /// index construction is independent per upstream. Results merge in
    /// upstream order, so output is identical for any worker count.
    pub threads: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            delay_bound_ns: 50 * nf_types::MILLIS,
            lookahead: 48,
            negative_slack_ns: 0,
            use_order_channel: true,
            threads: 1,
        }
    }
}

/// Tallies of how matching went (reported per run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// rx entries successfully attributed to an upstream send.
    pub matched: u64,
    /// rx entries with no eligible upstream candidate (should be 0).
    pub unmatched_rx: u64,
    /// upstream sends inferred dropped at the downstream ring.
    pub inferred_drops: u64,
    /// IPID collisions (multiple eligible candidates) that needed lookahead.
    pub ambiguities: u64,
    /// Collisions where lookahead overrode the earliest-send candidate.
    pub ambiguity_flips: u64,
}

/// The full matching result for one downstream NF.
#[derive(Debug)]
pub struct EdgeMatch {
    /// For each rx entry of the downstream NF: the upstream node and the
    /// edge position it was matched to.
    pub rx_origin: Vec<Option<(NodeId, usize)>>,
    /// The upstream nodes in slot order ([`Topology::upstream_nodes`] order)
    /// — the index order of `edge_outcome`.
    pub upstreams: Vec<NodeId>,
    /// Per upstream slot: outcome of every edge position.
    pub edge_outcome: Vec<Vec<MatchOutcome>>,
    /// Matching statistics.
    pub stats: MatchStats,
}

impl EdgeMatch {
    /// The per-position outcomes of the edge from `node`, if it exists.
    pub fn outcome(&self, node: NodeId) -> Option<&[MatchOutcome]> {
        self.upstreams
            .iter()
            .position(|&u| u == node)
            .map(|slot| self.edge_outcome[slot].as_slice())
    }
}

/// One upstream edge stream prepared for matching.
///
/// Positions with the same IPID form a contiguous, position-sorted *run* in
/// `ipid_pos` (built by a counting sort over the 16-bit IPID space), so a
/// candidate lookup is a bounded scan / `partition_point` over a flat slice
/// — no hashing, no per-IPID `Vec`s.
/// Sentinel in [`EdgeStream::matched`]: position not matched to any rx.
const UNMATCHED: u32 = u32::MAX;

struct EdgeStream {
    node: NodeId,
    /// (send ts) per position.
    ts: Vec<Nanos>,
    /// Positions grouped by IPID: the run for IPID `i` is
    /// `ipid_pos[run_start[i]..run_start[i + 1]]`, ascending.
    ipid_pos: Vec<u32>,
    /// Run boundaries. A fixed-size boxed array so `u16` IPID indexing
    /// needs no bounds check.
    run_start: Box<[u32; IPID_SPACE + 1]>,
    /// Lazily-advancing per-IPID cursor: index into `ipid_pos` of the first
    /// entry of that run not yet behind the committed `cursor`. Entries
    /// before it are consumed for good (the edge cursor never moves back),
    /// so each run entry is skipped at most once over the whole match.
    ipid_cursor: Box<[u32; IPID_SPACE]>,
    /// Next unconsumed position.
    cursor: usize,
    /// Matched rx index per position ([`UNMATCHED`] = skipped or unreached).
    matched: Vec<u32>,
}

/// Heap-allocates a zeroed fixed-size `u32` array directly (the IPID
/// tables are 256 KiB — too big to build on the stack and move).
fn boxed_zeroed<const N: usize>() -> Box<[u32; N]> {
    match vec![0u32; N].into_boxed_slice().try_into() {
        Ok(b) => b,
        // The vec is allocated with exactly N elements.
        Err(_) => unreachable!("boxed slice length mismatch"),
    }
}

impl EdgeStream {
    fn build(streams: &EdgeStreams, node: NodeId, down: NfId) -> Self {
        let positions = streams.edge_positions(node, down);
        let n = positions.len();
        assert!(
            u32::try_from(n).is_ok(),
            "edge stream of {n} positions must fit u32"
        );
        let mut ts: Vec<Nanos> = Vec::with_capacity(n);
        let mut ipids: Vec<Ipid> = Vec::with_capacity(n);
        match node {
            NodeId::Source => {
                for &idx in positions {
                    let e = &streams.source[idx];
                    ts.push(e.ts);
                    ipids.push(e.ipid);
                }
            }
            NodeId::Nf(u) => {
                let tx = &streams.nfs[u.0 as usize].tx;
                for &idx in positions {
                    let e = &tx[idx];
                    ts.push(e.ts);
                    ipids.push(e.ipid);
                }
            }
        }
        // Counting sort by IPID (stable, so runs stay position-ascending).
        let mut run_start: Box<[u32; IPID_SPACE + 1]> = boxed_zeroed();
        for &id in &ipids {
            run_start[id as usize + 1] += 1;
        }
        for i in 1..=IPID_SPACE {
            run_start[i] += run_start[i - 1];
        }
        let mut heads: Box<[u32; IPID_SPACE]> = boxed_zeroed();
        heads.copy_from_slice(&run_start[..IPID_SPACE]);
        let mut ipid_pos = vec![0u32; n];
        for (pos, &id) in ipids.iter().enumerate() {
            let h = &mut heads[id as usize];
            ipid_pos[*h as usize] = pos as u32;
            *h += 1;
        }
        // The scatter left `heads` at each run's end; the cursors start at
        // the run beginnings, which `run_start` still holds.
        let mut ipid_cursor = heads;
        ipid_cursor.copy_from_slice(&run_start[..IPID_SPACE]);
        Self {
            node,
            ts,
            ipid_pos,
            run_start,
            ipid_cursor,
            cursor: 0,
            matched: vec![UNMATCHED; n],
        }
    }

    /// Timing-channel check on a candidate position.
    #[inline]
    fn in_window(&self, pos: usize, read_ts: Nanos, cfg: &MatchConfig) -> Option<usize> {
        let sent = self.ts[pos];
        if sent <= read_ts.saturating_add(cfg.negative_slack_ns)
            && read_ts.saturating_sub(sent) <= cfg.delay_bound_ns
        {
            Some(pos)
        } else {
            None
        }
    }

    /// First position `>= self.cursor` with `ipid`, sent at or before
    /// `read_ts` and within the delay bound. Advances the per-IPID cursor
    /// past consumed entries (amortized O(1) over a whole match).
    fn candidate(&mut self, ipid: Ipid, read_ts: Nanos, cfg: &MatchConfig) -> Option<usize> {
        let run_end = self.run_start[ipid as usize + 1];
        let mut c = self.ipid_cursor[ipid as usize];
        while c < run_end && (self.ipid_pos[c as usize] as usize) < self.cursor {
            c += 1;
        }
        self.ipid_cursor[ipid as usize] = c;
        if c == run_end {
            return None;
        }
        self.in_window(self.ipid_pos[c as usize] as usize, read_ts, cfg)
    }

    /// Same from a speculative `cursor >= self.cursor` (lookahead): a
    /// `partition_point` over the unconsumed tail of the IPID's run.
    fn candidate_from(
        &self,
        cursor: usize,
        ipid: Ipid,
        read_ts: Nanos,
        cfg: &MatchConfig,
    ) -> Option<usize> {
        let lo = self.ipid_cursor[ipid as usize] as usize;
        let run = &self.ipid_pos[lo..self.run_start[ipid as usize + 1] as usize];
        let i = run.partition_point(|&p| (p as usize) < cursor);
        let &pos = run.get(i)?;
        self.in_window(pos as usize, read_ts, cfg)
    }
}

/// Reusable buffers for [`match_downstream`]: the per-rx candidate list and
/// the speculative per-edge cursors used by lookahead. Kept across rx
/// entries and ambiguity candidates so the hot loop never allocates.
#[derive(Default)]
struct MatchScratch {
    /// (edge idx, pos) candidates for the current rx entry.
    cands: Vec<(usize, usize)>,
    /// Speculative per-edge cursors for one lookahead playout.
    cursors: Vec<usize>,
}

/// Greedy alignment score used to break collisions: with the given per-edge
/// cursors, how many of the next `depth` rx entries match greedily
/// (earliest-send candidate, no nested ambiguity handling)?
fn lookahead_score(
    edges: &[EdgeStream],
    cursors: &mut [usize],
    rx: &[crate::streams::RxEntry],
    rx_from: usize,
    depth: usize,
    cfg: &MatchConfig,
) -> usize {
    let mut score = 0;
    for r in rx.iter().skip(rx_from).take(depth) {
        let mut best: Option<(Nanos, usize, usize)> = None; // (ts, edge, pos)
        for (e_idx, e) in edges.iter().enumerate() {
            if let Some(pos) = e.candidate_from(cursors[e_idx], r.ipid, r.ts, cfg) {
                let key = (e.ts[pos], e_idx, pos);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if let Some((_, e_idx, pos)) = best {
            score += 1;
            cursors[e_idx] = pos + 1;
        }
    }
    score
}

/// Matches the rx stream of `down` against its upstream edge streams.
pub fn match_downstream(
    streams: &EdgeStreams,
    topology: &Topology,
    down: NfId,
    cfg: &MatchConfig,
) -> EdgeMatch {
    let rx = &streams.nfs[down.0 as usize].rx;
    assert!(
        u32::try_from(rx.len()).is_ok(),
        "rx stream of {} entries must fit u32",
        rx.len()
    );
    debug_assert_eq!(streams.upstreams(down), topology.upstream_nodes(down));
    let upstreams = streams.upstreams(down).to_vec();
    let mut edges: Vec<EdgeStream> = nf_types::par_map(cfg.threads, &upstreams, |_, &node| {
        EdgeStream::build(streams, node, down)
    });
    let mut stats = MatchStats::default();
    let mut rx_origin: Vec<Option<(NodeId, usize)>> = vec![None; rx.len()];
    let mut scratch = MatchScratch::default();

    if let [e] = edges.as_mut_slice() {
        // Single upstream edge (most NFs of a chain): ambiguity is
        // impossible, so skip the candidate list and lookahead machinery.
        for (r_idx, r) in rx.iter().enumerate() {
            match e.candidate(r.ipid, r.ts, cfg) {
                None => stats.unmatched_rx += 1,
                Some(pos) => {
                    rx_origin[r_idx] = Some((e.node, pos));
                    e.matched[pos] = r_idx as u32;
                    e.cursor = pos + 1;
                    stats.matched += 1;
                }
            }
        }
        return finish(upstreams, &edges, rx_origin, stats);
    }

    for (r_idx, r) in rx.iter().enumerate() {
        // One candidate per upstream edge at most.
        scratch.cands.clear();
        for (e_idx, e) in edges.iter_mut().enumerate() {
            if let Some(pos) = e.candidate(r.ipid, r.ts, cfg) {
                scratch.cands.push((e_idx, pos));
            }
        }
        let chosen = match scratch.cands.len() {
            0 => {
                stats.unmatched_rx += 1;
                continue;
            }
            1 => scratch.cands[0],
            _ => {
                stats.ambiguities += 1;
                // Earliest send is the FIFO-plausible default...
                scratch.cands.sort_by_key(|&(e, p)| (edges[e].ts[p], e, p));
                let default = scratch.cands[0];
                if !cfg.use_order_channel {
                    // Ablated: no lookahead, timing only.
                    default
                } else {
                    // ...but let bounded lookahead overrule it (Fig. 9).
                    let mut best = default;
                    let mut best_score = None;
                    for &(e_idx, pos) in &scratch.cands {
                        scratch.cursors.clear();
                        scratch.cursors.extend(edges.iter().map(|e| e.cursor));
                        scratch.cursors[e_idx] = pos + 1;
                        let s = lookahead_score(
                            &edges,
                            &mut scratch.cursors,
                            rx,
                            r_idx + 1,
                            cfg.lookahead,
                            cfg,
                        );
                        if best_score.is_none_or(|b| s > b) {
                            best_score = Some(s);
                            best = (e_idx, pos);
                        }
                    }
                    if best != default {
                        stats.ambiguity_flips += 1;
                    }
                    best
                }
            }
        };
        let (e_idx, pos) = chosen;
        rx_origin[r_idx] = Some((edges[e_idx].node, pos));
        edges[e_idx].matched[pos] = r_idx as u32;
        edges[e_idx].cursor = pos + 1;
        stats.matched += 1;
    }

    finish(upstreams, &edges, rx_origin, stats)
}

/// The shared tail of [`match_downstream`]: classify every edge position
/// and assemble the result.
fn finish(
    upstreams: Vec<NodeId>,
    edges: &[EdgeStream],
    rx_origin: Vec<Option<(NodeId, usize)>>,
    mut stats: MatchStats,
) -> EdgeMatch {
    // Per-edge: positions behind the final cursor that never matched were
    // dropped (a later same-edge packet overtook them, impossible in FIFO);
    // positions at or past the cursor are unresolved. Slot order is the
    // upstream build order, so stats accumulate exactly as before.
    let mut edge_outcome: Vec<Vec<MatchOutcome>> = Vec::with_capacity(edges.len());
    for e in edges {
        let outcomes: Vec<MatchOutcome> = e
            .matched
            .iter()
            .enumerate()
            .map(|(pos, &m)| match m {
                UNMATCHED if pos < e.cursor => {
                    stats.inferred_drops += 1;
                    MatchOutcome::InferredDrop
                }
                UNMATCHED => MatchOutcome::Unresolved,
                rx_idx => MatchOutcome::Matched(rx_idx as usize),
            })
            .collect();
        edge_outcome.push(outcomes);
    }

    EdgeMatch {
        rx_origin,
        upstreams,
        edge_outcome,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use nf_types::{FiveTuple, NfKind, Proto, Topology};

    /// source -> nat1, nat2 -> vpn (two upstreams into one downstream).
    fn topo() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let c = b.add_nf(NfKind::Nat, "nat2");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_entry(c);
        b.add_edge(a, v);
        b.add_edge(c, v);
        b.build().unwrap()
    }

    fn meta(ipid: u16) -> PacketMeta {
        PacketMeta {
            ipid,
            flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
        }
    }

    #[test]
    fn simple_two_upstream_merge() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // nat1 sends ipids 1,2 at t=100,200; nat2 sends 3 at t=150.
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(1)]);
        c.record_tx(NfId(1), 150, Some(NfId(2)), &[meta(3)]);
        c.record_tx(NfId(0), 200, Some(NfId(2)), &[meta(2)]);
        // vpn reads them in arrival order.
        c.record_rx(NfId(2), 300, &[meta(1), meta(3), meta(2)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        assert_eq!(m.stats.matched, 3);
        assert_eq!(m.stats.unmatched_rx, 0);
        assert_eq!(m.rx_origin[0], Some((NodeId::Nf(NfId(0)), 0)));
        assert_eq!(m.rx_origin[1], Some((NodeId::Nf(NfId(1)), 0)));
        assert_eq!(m.rx_origin[2], Some((NodeId::Nf(NfId(0)), 1)));
    }

    #[test]
    fn fig9_ambiguity_resolved_by_order() {
        // The paper's Fig. 9: both upstreams send IPID 5; upstream 1 also
        // sends IPID 3 *after* its 5. If the downstream reads 5,3,...,5 then
        // the first 5 must be upstream 1's (else 3 would precede it).
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // nat2's 5 is sent *earlier*, so earliest-send alone would pick the
        // wrong origin; only the order argument fixes it.
        c.record_tx(NfId(1), 90, Some(NfId(2)), &[meta(5), meta(8)]);
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(5), meta(3)]);
        c.record_rx(NfId(2), 300, &[meta(5), meta(3), meta(5), meta(8)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        assert_eq!(m.stats.matched, 4);
        assert_eq!(m.stats.unmatched_rx, 0);
        assert_eq!(m.stats.inferred_drops, 0);
        assert_eq!(m.rx_origin[0], Some((NodeId::Nf(NfId(0)), 0)));
        assert_eq!(m.rx_origin[1], Some((NodeId::Nf(NfId(0)), 1)));
        assert_eq!(m.rx_origin[2], Some((NodeId::Nf(NfId(1)), 0)));
        assert!(m.stats.ambiguities >= 1);
        assert!(m.stats.ambiguity_flips >= 1, "lookahead had to overrule");
    }

    #[test]
    fn timing_channel_rejects_stale_candidates() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // nat1 sent ipid 7 far in the past (beyond the delay bound), then
        // nat2 sends ipid 7 close to the read.
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(7)]);
        c.record_tx(NfId(1), 80 * nf_types::MILLIS, Some(NfId(2)), &[meta(7)]);
        c.record_rx(NfId(2), 80 * nf_types::MILLIS + 500, &[meta(7)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        // The stale candidate is rejected; the fresh one matches. The stale
        // send stays unresolved (no later nat1 packet proves a drop).
        assert_eq!(m.rx_origin[0], Some((NodeId::Nf(NfId(1)), 0)));
        assert_eq!(
            m.outcome(NodeId::Nf(NfId(0))).unwrap()[0],
            MatchOutcome::Unresolved
        );
    }

    #[test]
    fn dropped_packet_inferred_from_gap() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // nat1 sends 1,2,3; downstream only reads 1,3 (2 was dropped).
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(1), meta(2), meta(3)]);
        c.record_rx(NfId(2), 200, &[meta(1), meta(3)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        let out = m.outcome(NodeId::Nf(NfId(0))).unwrap();
        assert_eq!(out[0], MatchOutcome::Matched(0));
        assert_eq!(out[1], MatchOutcome::InferredDrop);
        assert_eq!(out[2], MatchOutcome::Matched(1));
    }

    #[test]
    fn trailing_sends_stay_unresolved() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(1), meta(2)]);
        // Run ended: downstream only read the first packet.
        c.record_rx(NfId(2), 200, &[meta(1)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        let out = m.outcome(NodeId::Nf(NfId(0))).unwrap();
        assert_eq!(out[0], MatchOutcome::Matched(0));
        assert_eq!(out[1], MatchOutcome::Unresolved);
        assert_eq!(m.stats.inferred_drops, 0);
    }

    #[test]
    fn equal_timestamp_sends_from_different_upstreams() {
        // Two upstreams send different ipids at the *same* instant; the
        // downstream happens to read them in the "wrong" node order. With
        // per-edge cursors this must still match cleanly (the old global-
        // merge approach wrongly inferred a drop here).
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_tx(NfId(0), 100, Some(NfId(2)), &[meta(1)]);
        c.record_tx(NfId(1), 100, Some(NfId(2)), &[meta(2)]);
        c.record_rx(NfId(2), 200, &[meta(2), meta(1)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, NfId(2), &MatchConfig::default());
        assert_eq!(m.stats.matched, 2);
        assert_eq!(m.stats.inferred_drops, 0);
        assert_eq!(m.stats.unmatched_rx, 0);
        assert_eq!(m.rx_origin[0], Some((NodeId::Nf(NfId(1)), 0)));
        assert_eq!(m.rx_origin[1], Some((NodeId::Nf(NfId(0)), 0)));
    }

    #[test]
    fn source_edge_matches_entry_nf() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let f1 = FiveTuple::new(10, 2, 30, 4, Proto::TCP);
        let f2 = FiveTuple::new(11, 2, 31, 4, Proto::TCP);
        let e1 = t.entry_for(&f1);
        c.record_source(100, &PacketMeta { ipid: 1, flow: f1 });
        c.record_source(110, &PacketMeta { ipid: 2, flow: f2 });
        c.record_rx(e1, 200, &[PacketMeta { ipid: 1, flow: f1 }]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let m = match_downstream(&s, &t, e1, &MatchConfig::default());
        assert_eq!(m.rx_origin[0].unwrap().0, NodeId::Source);
        assert_eq!(m.stats.matched, 1);
    }
}
