//! Windowed trace reconstruction: the streaming counterpart of
//! `EdgeStreams::build → match_all → assemble`.
//!
//! The offline pipeline needs the whole run in memory three times over
//! (bundle, flattened streams, per-edge match tables). This module consumes
//! the run as time-ordered chunks instead and keeps only a *frontier*:
//! undecided rx entries, unconsumed sends, and walks of in-flight packets.
//! Everything behind the frontier is evicted as soon as it is decided, so
//! the reconstruction working set is O(window + in-flight), not O(run).
//!
//! ## Bit-identity
//!
//! The output must equal the offline reconstruction *exactly* — the offline
//! path is the oracle the equivalence suite diffs against. Two observations
//! make that possible:
//!
//! 1. **Matching is per-NF local and prefix-monotone.** The matcher's
//!    decision for rx entry `k` depends only on (a) sends within the timing
//!    window of reads `k..k+lookahead` and (b) the committed cursors, which
//!    are a pure function of decisions `0..k`. Once the watermark `W`
//!    passes `rx[k + lookahead].ts + negative_slack`, every send that could
//!    still arrive has `ts >= W` and fails the timing window for all reads
//!    the decision may consult — so deciding now equals deciding with the
//!    full run in hand. (Single-upstream NFs have no ambiguity and need no
//!    lookahead margin.)
//! 2. **Assembly order is recoverable.** Walks finalize out of emission
//!    order, but traces are committed through a reorder buffer keyed by
//!    source index, so the hop arena, path trie interning, `rx_to_trace`
//!    and report counters are appended in exactly the offline order.
//!
//! What is *not* reproduced is `Reconstruction::streams`: the flattened
//! full-run streams are the very thing streaming avoids holding, so the
//! returned reconstruction carries empty streams and the per-NF timelines
//! are built incrementally (`NfTimelineBuilder`) and returned alongside.

use crate::matching::{MatchConfig, MatchStats};
use crate::reconstruct::{
    PathTrie, ReconstructedTrace, Reconstruction, ReconstructionReport, RxTraceRef, TraceHop,
    TraceOutcome, PATH_ROOT,
};
use crate::streams::{EdgeStreams, RxBatchInfo};
use crate::timeline::{Arrival, ArrivalKind, NfTimelineBuilder, Timelines};
use msc_collector::{BundleChunk, NfLog, TraceBundle};
use nf_types::{FiveTuple, Ipid, Nanos, NfId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Errors from streaming ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A chunk's NF log count does not match the topology.
    TopologyMismatch {
        /// NFs in the topology.
        expected: usize,
        /// NF logs in the chunk.
        got: usize,
    },
    /// A source record's entry NF has no source edge in the topology.
    MissingSourceEdge {
        /// The entry NF.
        nf: NfId,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::TopologyMismatch { expected, got } => {
                write!(f, "chunk has {got} NF logs, topology has {expected} NFs")
            }
            StreamError::MissingSourceEdge { nf } => {
                write!(f, "entry NF {nf:?} has no source edge in the topology")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// What the matcher decided about one edge position.
#[derive(Debug, Clone, Copy)]
enum EdgeDecision {
    /// Matched to the downstream rx entry `rx_idx`, read at `read_ts`.
    Matched { rx_idx: usize, read_ts: Nanos },
    /// Skipped behind a later same-edge match: dropped at the ring.
    Dropped,
}

/// One upstream edge of a downstream NF, holding only unconsumed sends.
///
/// The offline matcher's per-IPID counting-sort index spans the whole run;
/// here the same "first unconsumed position with this IPID" semantics come
/// from per-IPID position deques that are evicted as the committed cursor
/// advances — a recycled 16-bit IPID therefore can never alias a consumed
/// send from an earlier window.
#[derive(Debug, Default)]
struct IncEdge {
    /// Unconsumed sends `(ts, ipid)` from global position `base`.
    entries: VecDeque<(Nanos, Ipid)>,
    /// Global position of `entries.front()`.
    base: usize,
    /// Total sends ingested on this edge (next position to assign).
    total: usize,
    /// Committed cursor: next unconsumed global position.
    cursor: usize,
    /// Unconsumed global positions per IPID, ascending (all `>= cursor`).
    by_ipid: HashMap<Ipid, VecDeque<usize>>,
    /// Decisions not yet consumed by the owning packet's walk.
    outcomes: HashMap<usize, EdgeDecision>,
    /// Walks suspended on an undecided position (trace index; at most one
    /// walk per position since each position is one upstream packet).
    waiters: HashMap<usize, usize>,
    /// Undecided positions whose upstream send was proven dead (no walk
    /// will ever consume their decision); their eventual outcome is
    /// swallowed — and a `Matched` one kills the downstream tx slot too.
    ghosts: HashSet<usize>,
}

impl IncEdge {
    /// Appends a send, returning its global edge position.
    fn push(&mut self, ts: Nanos, ipid: Ipid) -> usize {
        let pos = self.total;
        self.total += 1;
        self.entries.push_back((ts, ipid));
        self.by_ipid.entry(ipid).or_default().push_back(pos);
        pos
    }

    /// Send timestamp of an unconsumed position.
    fn ts_at(&self, pos: usize) -> Nanos {
        self.entries[pos - self.base].0
    }

    /// Timing-channel check, identical to the offline matcher's.
    fn in_window(&self, pos: usize, read_ts: Nanos, cfg: &MatchConfig) -> Option<usize> {
        let sent = self.ts_at(pos);
        if sent <= read_ts.saturating_add(cfg.negative_slack_ns)
            && read_ts.saturating_sub(sent) <= cfg.delay_bound_ns
        {
            Some(pos)
        } else {
            None
        }
    }

    /// First unconsumed position with `ipid`, window-checked. A stale first
    /// entry (outside the window) blocks, exactly as offline.
    fn candidate(&self, ipid: Ipid, read_ts: Nanos, cfg: &MatchConfig) -> Option<usize> {
        let &pos = self.by_ipid.get(&ipid)?.front()?;
        self.in_window(pos, read_ts, cfg)
    }

    /// Same from a speculative cursor `>= self.cursor` (lookahead playout).
    fn candidate_from(
        &self,
        cursor: usize,
        ipid: Ipid,
        read_ts: Nanos,
        cfg: &MatchConfig,
    ) -> Option<usize> {
        let run = self.by_ipid.get(&ipid)?;
        let i = run.partition_point(|&p| p < cursor);
        let &pos = run.get(i)?;
        self.in_window(pos, read_ts, cfg)
    }

    /// Drops everything behind the committed cursor. Each evicted position
    /// is removed from the front of its IPID deque (fronts are the lowest
    /// unconsumed positions by construction).
    fn evict(&mut self) {
        while self.base < self.cursor {
            let Some((_, ipid)) = self.entries.pop_front() else {
                break;
            };
            if let Some(run) = self.by_ipid.get_mut(&ipid) {
                run.pop_front();
                if run.is_empty() {
                    self.by_ipid.remove(&ipid);
                }
            }
            self.base += 1;
        }
    }

    /// Bytes held by the edge frontier (approximate, for accounting).
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.entries.capacity() * size_of::<(Nanos, Ipid)>()
            + self.by_ipid.len() * (size_of::<Ipid>() + size_of::<VecDeque<usize>>() + 16)
            // lint: order-insensitive(commutative sum over capacities)
            + self.by_ipid.values().map(|v| v.capacity() * 8).sum::<usize>()
            + self.outcomes.len() * 48
            + self.waiters.len() * 32
            + self.ghosts.len() * 16
    }
}

/// One undecided rx entry.
#[derive(Debug, Clone, Copy)]
struct RxPend {
    ts: Nanos,
    ipid: Ipid,
}

/// One unconsumed tx entry.
#[derive(Debug, Clone, Copy)]
struct TxSlot {
    ts: Nanos,
    to: Option<NfId>,
    /// Position within its edge stream (or exit/orphan counter).
    pos_within: usize,
    consumed: bool,
}

/// Per-NF streaming state.
#[derive(Debug)]
struct NfState {
    /// Upstream edges in slot order (`Topology::upstream_nodes` order).
    edges: Vec<IncEdge>,
    /// Undecided rx entries (the matching frontier).
    rx_pending: VecDeque<RxPend>,
    /// Flat rx index of `rx_pending.front()`.
    rx_decided: usize,
    /// Total rx entries ingested.
    rx_total: usize,
    /// Unconsumed tx entries from flat index `tx_base`.
    tx: VecDeque<TxSlot>,
    tx_base: usize,
    tx_total: usize,
    /// Walks waiting for a tx entry not yet ingested: rx/tx index → trace.
    tx_waiters: BTreeMap<usize, usize>,
    /// Matched-rx indexes proven ownerless whose tx entry is not ingested
    /// yet; the slot is dead on arrival.
    dead_rx: BTreeSet<usize>,
    /// Unconsumed exit flow records from exit position `flows_base`.
    flows: VecDeque<FiveTuple>,
    flows_base: usize,
    /// Exit sends seen so far (`to == None` position counter).
    exit_count: usize,
    /// Per-target positions of sends to NFs that are not topology edges.
    orphans: Vec<usize>,
    /// Whether exit-flow validation applies (topology exit).
    is_exit: bool,
    stats: MatchStats,
}

impl NfState {
    /// Evicts consumed tx fronts, releasing matching exit flow records.
    fn evict_tx(&mut self) {
        while let Some(front) = self.tx.front() {
            if !front.consumed {
                break;
            }
            let slot = self.tx.pop_front();
            self.tx_base += 1;
            if let Some(TxSlot { to: None, .. }) = slot {
                if self.flows.pop_front().is_some() {
                    self.flows_base += 1;
                }
            }
        }
    }

    /// The exit flow recorded for exit position `pw`, if present.
    fn flow_at(&self, pw: usize) -> Option<FiveTuple> {
        pw.checked_sub(self.flows_base)
            .and_then(|i| self.flows.get(i))
            .copied()
    }
}

/// Where a suspended walk stands.
#[derive(Debug, Clone, Copy)]
enum WalkState {
    /// Waiting on the match decision for edge position `pos` into `down`.
    AtEdge {
        down: NfId,
        node: NodeId,
        pos: usize,
        arrival: Nanos,
    },
    /// Matched to rx entry `rx_idx` of `down`; needs the tx entry.
    AtTx {
        down: NfId,
        rx_idx: usize,
        read_ts: Nanos,
        arrival: Nanos,
    },
}

/// One in-flight packet's partially assembled trace.
#[derive(Debug)]
struct Walk {
    trace: usize,
    flow: FiveTuple,
    emitted: Nanos,
    hops: Vec<TraceHop>,
    state: WalkState,
}

/// A trace whose walk finished, parked until its emission turn.
#[derive(Debug)]
struct Finished {
    flow: FiveTuple,
    emitted: Nanos,
    hops: Vec<TraceHop>,
    outcome: TraceOutcome,
}

/// Greedy lookahead alignment score over the undecided rx tail — the
/// streaming twin of the offline `lookahead_score` (the tail here *is*
/// `rx[r_idx + 1..]`, since the current entry was already popped).
fn lookahead_score(
    edges: &[IncEdge],
    cursors: &mut [usize],
    pending: &VecDeque<RxPend>,
    depth: usize,
    cfg: &MatchConfig,
) -> usize {
    let mut score = 0;
    for r in pending.iter().take(depth) {
        let mut best: Option<(Nanos, usize, usize)> = None; // (ts, edge, pos)
        for (e_idx, e) in edges.iter().enumerate() {
            if let Some(pos) = e.candidate_from(cursors[e_idx], r.ipid, r.ts, cfg) {
                let key = (e.ts_at(pos), e_idx, pos);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if let Some((_, e_idx, pos)) = best {
            score += 1;
            cursors[e_idx] = pos + 1;
        }
    }
    score
}

/// The incremental reconstructor. Feed time-ordered chunks with
/// [`Self::ingest`], then [`Self::finish`] for the reconstruction and
/// timelines — bit-identical to the offline pipeline over the concatenated
/// chunks (minus `Reconstruction::streams`, which stays empty).
#[derive(Debug)]
pub struct WindowedReconstructor {
    topo: Topology,
    cfg: MatchConfig,
    nfs: Vec<NfState>,
    /// `upstreams[d]` in slot order; `out_slot[u][d]` = slot of NF `u` on
    /// downstream `d`; `src_slot[d]` = slot of the source on `d`.
    upstreams: Vec<Vec<NodeId>>,
    out_slot: Vec<Vec<Option<usize>>>,
    src_slot: Vec<Option<usize>>,
    /// Ingestion watermark: every record with `ts < watermark` is in.
    watermark: Nanos,
    /// Walks suspended on an edge decision or a missing tx entry.
    suspended: HashMap<usize, Walk>,
    /// Finished traces awaiting their emission-order turn.
    pending: BTreeMap<usize, Finished>,
    next_commit: usize,
    source_total: usize,
    // Retained (non-evictable) diagnosis substrate.
    traces: Vec<ReconstructedTrace>,
    hops: Vec<TraceHop>,
    rx_to_trace: Vec<Vec<RxTraceRef>>,
    paths: PathTrie,
    hop_path_ids: Vec<u32>,
    report: ReconstructionReport,
    timelines: Vec<NfTimelineBuilder>,
}

impl WindowedReconstructor {
    /// A reconstructor for `topology` with the given matching parameters.
    pub fn new(topology: &Topology, cfg: MatchConfig) -> Self {
        let n = topology.len();
        let upstreams: Vec<Vec<NodeId>> = (0..n)
            .map(|d| topology.upstream_nodes(NfId(d as u16)))
            .collect();
        let out_slot: Vec<Vec<Option<usize>>> = (0..n)
            .map(|u| {
                let me = NodeId::Nf(NfId(u as u16));
                upstreams
                    .iter()
                    .map(|ups| ups.iter().position(|&node| node == me))
                    .collect()
            })
            .collect();
        let src_slot: Vec<Option<usize>> = upstreams
            .iter()
            .map(|ups| ups.iter().position(|&node| node == NodeId::Source))
            .collect();
        let nfs = (0..n)
            .map(|d| NfState {
                edges: upstreams[d].iter().map(|_| IncEdge::default()).collect(),
                rx_pending: VecDeque::new(),
                rx_decided: 0,
                rx_total: 0,
                tx: VecDeque::new(),
                tx_base: 0,
                tx_total: 0,
                tx_waiters: BTreeMap::new(),
                dead_rx: BTreeSet::new(),
                flows: VecDeque::new(),
                flows_base: 0,
                exit_count: 0,
                orphans: vec![0; n],
                is_exit: topology.exits().contains(&NfId(d as u16)),
                stats: MatchStats::default(),
            })
            .collect();
        let timelines = (0..n)
            .map(|i| NfTimelineBuilder::new(NfId(i as u16)))
            .collect();
        Self {
            topo: topology.clone(),
            cfg,
            nfs,
            upstreams,
            out_slot,
            src_slot,
            watermark: 0,
            suspended: HashMap::new(),
            pending: BTreeMap::new(),
            next_commit: 0,
            source_total: 0,
            traces: Vec::new(),
            hops: Vec::new(),
            rx_to_trace: vec![Vec::new(); n],
            paths: PathTrie::new(),
            hop_path_ids: Vec::new(),
            report: ReconstructionReport::default(),
            timelines,
        }
    }

    /// Ingests one chunk: every record with `previous until <= ts < until`.
    pub fn ingest_chunk(&mut self, chunk: &BundleChunk) -> Result<(), StreamError> {
        self.ingest(&chunk.bundle, chunk.until)
    }

    /// Ingests a record bundle whose timestamps all lie below `until` (and
    /// at or above any previous `until`), then decides everything the new
    /// watermark proves stable.
    pub fn ingest(&mut self, bundle: &TraceBundle, until: Nanos) -> Result<(), StreamError> {
        let n = self.nfs.len();
        if bundle.logs.len() != n {
            return Err(StreamError::TopologyMismatch {
                expected: n,
                got: bundle.logs.len(),
            });
        }
        // Phase 1: ingest every NF's records.
        for (i, log) in bundle.logs.iter().enumerate() {
            for b in &log.rx {
                self.timelines[i].push_read(RxBatchInfo {
                    ts: b.ts,
                    size: b.len(),
                    drained: b.drained_queue(),
                });
                for &ipid in &b.ipids {
                    self.nfs[i].rx_pending.push_back(RxPend { ts: b.ts, ipid });
                    self.nfs[i].rx_total += 1;
                    self.rx_to_trace[i].push(RxTraceRef::NONE);
                }
            }
            for b in &log.tx {
                for &ipid in &b.ipids {
                    let pos_within = match b.to {
                        Some(d) => match self.out_slot[i][d.0 as usize] {
                            Some(slot) => self.nfs[d.0 as usize].edges[slot].push(b.ts, ipid),
                            None => {
                                let c = &mut self.nfs[i].orphans[d.0 as usize];
                                let pw = *c;
                                *c += 1;
                                pw
                            }
                        },
                        None => {
                            let pw = self.nfs[i].exit_count;
                            self.nfs[i].exit_count += 1;
                            pw
                        }
                    };
                    let st = &mut self.nfs[i];
                    st.tx.push_back(TxSlot {
                        ts: b.ts,
                        to: b.to,
                        pos_within,
                        consumed: false,
                    });
                    st.tx_total += 1;
                }
            }
            for f in &log.flows {
                self.nfs[i].flows.push_back(f.flow);
            }
        }
        // Phase 2: source emissions start new walks (they suspend on their
        // entry edge until the matcher decides their position).
        for f in &bundle.source_flows {
            let entry = self.topo.entry_for(&f.flow);
            let Some(slot) = self.src_slot[entry.0 as usize] else {
                return Err(StreamError::MissingSourceEdge { nf: entry });
            };
            let pos = self.nfs[entry.0 as usize].edges[slot].push(f.ts, f.ipid);
            let trace = self.source_total;
            self.source_total += 1;
            self.report.total += 1;
            let walk = Walk {
                trace,
                flow: f.flow,
                emitted: f.ts,
                hops: Vec::new(),
                state: WalkState::AtEdge {
                    down: entry,
                    node: NodeId::Source,
                    pos,
                    arrival: f.ts,
                },
            };
            self.run_walk(walk);
        }
        // Phase 3: walks (and dead-slot markers) that were missing a tx
        // entry can proceed now.
        self.resume_tx_waiters();
        self.drain_dead_rx();
        // Phase 4: the watermark proves a prefix of each rx frontier stable.
        self.watermark = self.watermark.max(until);
        for i in 0..n {
            self.decide_nf(i, false);
        }
        Ok(())
    }

    /// Decides everything left, finalizes in-flight walks and returns the
    /// reconstruction plus the incrementally-built timelines.
    pub fn finish(mut self) -> (Reconstruction, Timelines) {
        let n = self.nfs.len();
        // All records are in: decide the full rx frontier of every NF
        // (identical to the offline matcher's main loop over the tail).
        for i in 0..n {
            self.decide_nf(i, true);
        }
        self.resume_tx_waiters();
        // Whatever is still suspended can never resolve: positions at or
        // past the final cursor are unresolved; a matched read with no tx
        // entry gets its offline half-hop.
        let mut rest: Vec<usize> = self.suspended.keys().copied().collect();
        rest.sort_unstable();
        for trace in rest {
            let Some(mut walk) = self.suspended.remove(&trace) else {
                continue;
            };
            match walk.state {
                WalkState::AtEdge { .. } => self.finalize(walk, TraceOutcome::Unresolved),
                WalkState::AtTx {
                    down,
                    rx_idx,
                    read_ts,
                    arrival,
                } => {
                    walk.hops.push(TraceHop {
                        nf: down,
                        arrival_ts: arrival,
                        read_ts,
                        sent_ts: None,
                        rx_idx,
                    });
                    self.finalize(walk, TraceOutcome::Unresolved);
                }
            }
        }
        debug_assert_eq!(self.next_commit, self.source_total);
        debug_assert!(self.pending.is_empty());
        for st in &self.nfs {
            self.report.unmatched_rx += st.stats.unmatched_rx;
            self.report.ambiguities += st.stats.ambiguities;
        }
        let empty = TraceBundle {
            logs: (0..n)
                .map(|i| NfLog {
                    nf: NfId(i as u16),
                    rx: Vec::new(),
                    tx: Vec::new(),
                    flows: Vec::new(),
                })
                .collect(),
            source_flows: Vec::new(),
        };
        let streams = EdgeStreams::build(&self.topo, &empty);
        let recon = Reconstruction {
            traces: self.traces,
            hops: self.hops,
            report: self.report,
            streams,
            rx_to_trace: self.rx_to_trace,
            paths: self.paths,
            hop_path_ids: self.hop_path_ids,
        };
        let timelines = Timelines {
            nfs: self.timelines.into_iter().map(|b| b.finish()).collect(),
        };
        (recon, timelines)
    }

    /// The reconstruction report so far (commit-order prefix of the run).
    pub fn report(&self) -> &ReconstructionReport {
        &self.report
    }

    /// Traces committed so far.
    pub fn committed(&self) -> usize {
        self.next_commit
    }

    /// Approximate bytes held by the *evictable* frontier: undecided rx,
    /// unconsumed sends and tx slots, suspended walks, and the commit
    /// reorder buffer. This is the quantity that must stay O(window); the
    /// retained diagnosis substrate (traces, hop arena, timelines, path
    /// trie) legitimately grows with the run.
    pub fn working_set(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = 0usize;
        for st in &self.nfs {
            bytes += st.rx_pending.capacity() * size_of::<RxPend>();
            bytes += st.tx.capacity() * size_of::<TxSlot>();
            bytes += st.flows.capacity() * size_of::<FiveTuple>();
            bytes += st.tx_waiters.len() * 48;
            bytes += st.dead_rx.len() * 32;
            bytes += st.edges.iter().map(IncEdge::approx_bytes).sum::<usize>();
        }
        // lint: order-insensitive(commutative sum over walk sizes)
        for w in self.suspended.values() {
            bytes += size_of::<Walk>() + w.hops.capacity() * size_of::<TraceHop>() + 48;
        }
        for f in self.pending.values() {
            bytes += size_of::<Finished>() + f.hops.capacity() * size_of::<TraceHop>() + 48;
        }
        bytes
    }

    /// Resumes every walk whose missing tx entry has since been ingested.
    fn resume_tx_waiters(&mut self) {
        for i in 0..self.nfs.len() {
            loop {
                let st = &mut self.nfs[i];
                let Some((&rx_idx, &trace)) = st.tx_waiters.first_key_value() else {
                    break;
                };
                if rx_idx >= st.tx_total {
                    break;
                }
                st.tx_waiters.pop_first();
                let Some(walk) = self.suspended.remove(&trace) else {
                    continue;
                };
                self.run_walk(walk);
            }
        }
    }

    /// Decides the stable prefix of NF `i`'s rx frontier (all of it when
    /// `finishing`). An rx entry is stable once the watermark exceeds the
    /// read time (plus slack) of the last entry its decision may consult —
    /// itself for a single-upstream NF, the `lookahead`-th successor when
    /// IPID collisions can trigger playout.
    fn decide_nf(&mut self, i: usize, finishing: bool) {
        loop {
            let st = &self.nfs[i];
            let Some(front) = st.rx_pending.front() else {
                break;
            };
            if !finishing {
                let stable = if st.edges.len() <= 1 {
                    front.ts.saturating_add(self.cfg.negative_slack_ns) < self.watermark
                } else {
                    match st.rx_pending.get(self.cfg.lookahead) {
                        Some(la) => {
                            la.ts.saturating_add(self.cfg.negative_slack_ns) < self.watermark
                        }
                        None => false,
                    }
                };
                if !stable {
                    break;
                }
            }
            self.decide_one(i);
        }
    }

    /// Pops and decides the front rx entry of NF `i`, mirroring one
    /// iteration of the offline matcher's rx loop, then resumes any walks
    /// the decision unblocked.
    fn decide_one(&mut self, i: usize) {
        let mut resumes: Vec<(usize, EdgeDecision)> = Vec::new();
        let mut dead: Vec<(usize, usize)> = Vec::new();
        'decide: {
            let st = &mut self.nfs[i];
            let Some(r) = st.rx_pending.pop_front() else {
                return;
            };
            let rx_idx = st.rx_decided;
            st.rx_decided += 1;
            let mut cands: Vec<(usize, usize)> = Vec::new();
            for (e_idx, e) in st.edges.iter().enumerate() {
                if let Some(pos) = e.candidate(r.ipid, r.ts, &self.cfg) {
                    cands.push((e_idx, pos));
                }
            }
            if cands.is_empty() {
                st.stats.unmatched_rx += 1;
                // No walk will ever consume this rx entry's tx slot.
                dead.push((i, rx_idx));
                break 'decide;
            }
            let chosen = if cands.len() == 1 {
                cands[0]
            } else {
                st.stats.ambiguities += 1;
                cands.sort_by_key(|&(e, p)| (st.edges[e].ts_at(p), e, p));
                let default = cands[0];
                if !self.cfg.use_order_channel {
                    default
                } else {
                    let mut best = default;
                    let mut best_score: Option<usize> = None;
                    let mut cursors: Vec<usize> = Vec::with_capacity(st.edges.len());
                    for &(e_idx, pos) in &cands {
                        cursors.clear();
                        cursors.extend(st.edges.iter().map(|e| e.cursor));
                        cursors[e_idx] = pos + 1;
                        let s = lookahead_score(
                            &st.edges,
                            &mut cursors,
                            &st.rx_pending,
                            self.cfg.lookahead,
                            &self.cfg,
                        );
                        if best_score.is_none_or(|b| s > b) {
                            best_score = Some(s);
                            best = (e_idx, pos);
                        }
                    }
                    if best != default {
                        st.stats.ambiguity_flips += 1;
                    }
                    best
                }
            };
            st.stats.matched += 1;
            let (e_idx, pos) = chosen;
            let skipped = pos - st.edges[e_idx].cursor;
            st.stats.inferred_drops += skipped as u64;
            let e = &mut st.edges[e_idx];
            for q in e.cursor..pos {
                if let Some(t) = e.waiters.remove(&q) {
                    resumes.push((t, EdgeDecision::Dropped));
                } else if !e.ghosts.remove(&q) {
                    e.outcomes.insert(q, EdgeDecision::Dropped);
                }
            }
            let dec = EdgeDecision::Matched {
                rx_idx,
                read_ts: r.ts,
            };
            if let Some(t) = e.waiters.remove(&pos) {
                resumes.push((t, dec));
            } else if e.ghosts.remove(&pos) {
                // An ownerless send matched this rx: its tx slot is dead.
                dead.push((i, rx_idx));
            } else {
                e.outcomes.insert(pos, dec);
            }
            e.cursor = pos + 1;
            e.evict();
        }
        for (trace, dec) in resumes {
            self.resume_edge(trace, dec);
        }
        self.mark_dead_slots(dead);
    }

    /// Consumes tx slots proven ownerless — their rx entry was unmatched,
    /// or the send that would have carried a walk to them was itself dead —
    /// so a dead slot can never block `evict_tx` for the rest of the run.
    /// A dead slot's own send is ownerless in turn: its eventual match
    /// decision is consumed by a ghost, cascading down the DAG.
    fn mark_dead_slots(&mut self, mut work: Vec<(usize, usize)>) {
        while let Some((d, j)) = work.pop() {
            let st = &mut self.nfs[d];
            if j >= st.tx_total {
                st.dead_rx.insert(j);
                continue;
            }
            let Some(slot) = j.checked_sub(st.tx_base).and_then(|k| st.tx.get_mut(k)) else {
                continue;
            };
            if slot.consumed {
                continue;
            }
            slot.consumed = true;
            let (to, pw) = (slot.to, slot.pos_within);
            st.evict_tx();
            let Some(d2) = to else { continue };
            let Some(slot_idx) = self.out_slot[d][d2.0 as usize] else {
                continue; // orphan target: there is no edge stream to poison
            };
            let e = &mut self.nfs[d2.0 as usize].edges[slot_idx];
            match e.outcomes.remove(&pw) {
                Some(EdgeDecision::Matched { rx_idx, .. }) => {
                    work.push((d2.0 as usize, rx_idx));
                }
                Some(EdgeDecision::Dropped) => {}
                None => {
                    if pw >= e.cursor {
                        e.ghosts.insert(pw);
                    }
                }
            }
        }
    }

    /// Applies dead-on-arrival markers whose tx entries have been ingested.
    fn drain_dead_rx(&mut self) {
        for i in 0..self.nfs.len() {
            let st = &mut self.nfs[i];
            let mut ready: Vec<(usize, usize)> = Vec::new();
            while let Some(&j) = st.dead_rx.first() {
                if j >= st.tx_total {
                    break;
                }
                st.dead_rx.pop_first();
                ready.push((i, j));
            }
            if !ready.is_empty() {
                self.mark_dead_slots(ready);
            }
        }
    }

    /// Applies a just-made edge decision to the walk suspended on it.
    fn resume_edge(&mut self, trace: usize, dec: EdgeDecision) {
        let Some(mut walk) = self.suspended.remove(&trace) else {
            return;
        };
        let WalkState::AtEdge { down, arrival, .. } = walk.state else {
            debug_assert!(false, "edge waiter was not at an edge");
            return;
        };
        match dec {
            EdgeDecision::Dropped => self.finalize(
                walk,
                TraceOutcome::InferredDrop {
                    nf: down,
                    at: arrival,
                },
            ),
            EdgeDecision::Matched { rx_idx, read_ts } => {
                walk.state = WalkState::AtTx {
                    down,
                    rx_idx,
                    read_ts,
                    arrival,
                };
                self.run_walk(walk);
            }
        }
    }

    /// Advances a walk until it finalizes or suspends — the streaming twin
    /// of the offline `assemble` loop body for one source packet.
    fn run_walk(&mut self, mut walk: Walk) {
        loop {
            match walk.state {
                WalkState::AtEdge {
                    down,
                    node,
                    pos,
                    arrival,
                } => {
                    let d = down.0 as usize;
                    // A send to a node that is not a topology edge has no
                    // match table offline either: unresolved.
                    let Some(slot) = self.upstreams[d].iter().position(|&u| u == node) else {
                        return self.finalize(walk, TraceOutcome::Unresolved);
                    };
                    let e = &mut self.nfs[d].edges[slot];
                    match e.outcomes.remove(&pos) {
                        Some(EdgeDecision::Dropped) => {
                            return self.finalize(
                                walk,
                                TraceOutcome::InferredDrop {
                                    nf: down,
                                    at: arrival,
                                },
                            );
                        }
                        Some(EdgeDecision::Matched { rx_idx, read_ts }) => {
                            walk.state = WalkState::AtTx {
                                down,
                                rx_idx,
                                read_ts,
                                arrival,
                            };
                        }
                        None => {
                            debug_assert!(pos >= e.cursor, "decided position lost its outcome");
                            e.waiters.insert(pos, walk.trace);
                            self.suspended.insert(walk.trace, walk);
                            return;
                        }
                    }
                }
                WalkState::AtTx {
                    down,
                    rx_idx,
                    read_ts,
                    arrival,
                } => {
                    let d = down.0 as usize;
                    if rx_idx >= self.nfs[d].tx_total {
                        self.nfs[d].tx_waiters.insert(rx_idx, walk.trace);
                        self.suspended.insert(walk.trace, walk);
                        return;
                    }
                    let st = &mut self.nfs[d];
                    let (tx_ts, tx_to, pw) = {
                        let t = &mut st.tx[rx_idx - st.tx_base];
                        t.consumed = true;
                        (t.ts, t.to, t.pos_within)
                    };
                    walk.hops.push(TraceHop {
                        nf: down,
                        arrival_ts: arrival,
                        read_ts,
                        sent_ts: Some(tx_ts),
                        rx_idx,
                    });
                    let mut flow_mismatch = false;
                    if tx_to.is_none() && st.is_exit {
                        if let Some(flow) = st.flow_at(pw) {
                            flow_mismatch = flow != walk.flow;
                        }
                    }
                    st.evict_tx();
                    if flow_mismatch {
                        self.report.flow_mismatches += 1;
                    }
                    match tx_to {
                        None => return self.finalize(walk, TraceOutcome::Delivered(tx_ts)),
                        Some(d2) => {
                            walk.state = WalkState::AtEdge {
                                down: d2,
                                node: NodeId::Nf(down),
                                pos: pw,
                                arrival: tx_ts,
                            };
                        }
                    }
                }
            }
        }
    }

    /// Parks a finished walk in the reorder buffer and commits every trace
    /// whose emission turn has come.
    fn finalize(&mut self, walk: Walk, outcome: TraceOutcome) {
        self.pending.insert(
            walk.trace,
            Finished {
                flow: walk.flow,
                emitted: walk.emitted,
                hops: walk.hops,
                outcome,
            },
        );
        while let Some(f) = self.pending.remove(&self.next_commit) {
            let trace = self.next_commit;
            self.next_commit += 1;
            self.commit(trace, &f);
        }
    }

    /// Appends one trace to the retained substrate in offline order: hop
    /// arena, path-trie interning, `rx_to_trace` back-references, timeline
    /// arrivals and report counters all replay `assemble` +
    /// `PathTrie::index` + `Timelines::build` for this trace.
    fn commit(&mut self, trace: usize, f: &Finished) {
        debug_assert!(u32::try_from(self.hops.len() + f.hops.len()).is_ok());
        // lint: lossy-cast-ok(the hop arena is u32-indexed by design, as offline)
        let hop_start = self.hops.len() as u32;
        let mut cur = PATH_ROOT;
        for (h_idx, h) in f.hops.iter().enumerate() {
            self.rx_to_trace[h.nf.0 as usize][h.rx_idx] = RxTraceRef::new(trace, h_idx);
            self.hop_path_ids.push(cur);
            cur = self.paths.child(cur, NodeId::Nf(h.nf));
            self.timelines[h.nf.0 as usize].push_arrival(Arrival {
                ts: h.arrival_ts,
                trace,
                hop: h_idx,
                kind: ArrivalKind::Queued,
            });
            self.hops.push(*h);
        }
        match f.outcome {
            TraceOutcome::Delivered(_) => self.report.delivered += 1,
            TraceOutcome::InferredDrop { nf, at } => {
                self.report.inferred_drops += 1;
                self.timelines[nf.0 as usize].push_arrival(Arrival {
                    ts: at,
                    trace,
                    hop: f.hops.len(),
                    kind: ArrivalKind::Dropped,
                });
            }
            TraceOutcome::Unresolved => self.report.unresolved += 1,
        }
        self.traces.push(ReconstructedTrace {
            flow: f.flow,
            emitted_at: f.emitted,
            // lint: lossy-cast-ok(same u32 arena bound as offline assemble)
            hops: hop_start..self.hops.len() as u32,
            outcome: f.outcome,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::{reconstruct, ReconstructionConfig};
    use msc_collector::{chunk_bundle, Collector, CollectorConfig, PacketMeta};
    use nf_types::{NfKind, Proto};

    /// Deterministic LCG (no external rand in tests).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Two entry NATs merging into one exit VPN — the smallest topology with
    /// a genuinely ambiguous multi-upstream edge.
    fn diamond() -> Topology {
        let mut b = Topology::builder();
        let n0 = b.add_nf(NfKind::Nat, "nat0");
        let n1 = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(n0);
        b.add_entry(n1);
        b.add_edge(n0, v);
        b.add_edge(n1, v);
        b.build().unwrap()
    }

    /// Single-path chain: every edge is unambiguous, decisions stream out at
    /// the watermark without any lookahead margin.
    fn chain3() -> Topology {
        let mut b = Topology::builder();
        let f = b.add_nf(NfKind::Firewall, "fw1");
        let n = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(f);
        b.add_edge(f, n);
        b.add_edge(n, v);
        b.build().unwrap()
    }

    /// Random forwarding run over any entry-layer + single-sink topology:
    /// tiny IPID alphabet (collisions), ring drops before each NF,
    /// NF-internal drops (read but never sent, desyncing the rx/tx pairing),
    /// bogus reads nothing sent, and optional truncation mid-flight.
    fn random_run(topo: &Topology, rng: &mut Lcg, n_packets: usize, truncate: bool) -> TraceBundle {
        let sink = NfId((topo.len() - 1) as u16);
        let mut c = Collector::new(topo, CollectorConfig::default());
        let mut clock: Nanos = 1_000;
        let alphabet = 4 + rng.below(8);
        let mut q: Vec<VecDeque<PacketMeta>> = vec![VecDeque::new(); topo.len()];
        let mut emitted = 0usize;
        let budget = if truncate {
            n_packets * 3 + rng.below(n_packets as u64 * 4) as usize
        } else {
            usize::MAX
        };
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > budget {
                break; // truncated run: packets left in flight everywhere
            }
            if emitted >= n_packets && q.iter().all(VecDeque::is_empty) {
                break;
            }
            clock += 1 + rng.below(700);
            match rng.below(2 + topo.len() as u64) {
                0 | 1 if emitted < n_packets => {
                    let m = PacketMeta {
                        ipid: rng.below(alphabet) as u16,
                        flow: FiveTuple::new(
                            0x0a00_0000 + rng.below(40) as u32,
                            0x1400_0001,
                            1_000 + rng.below(40) as u16,
                            443,
                            Proto::UDP,
                        ),
                    };
                    let entry = topo.entry_for(&m.flow);
                    c.record_source(clock, &m);
                    emitted += 1;
                    if rng.below(10) != 0 {
                        q[entry.0 as usize].push_back(m); // else: ring drop
                    }
                }
                act => {
                    let i = (act as usize).saturating_sub(2) % topo.len();
                    let nf = NfId(i as u16);
                    let take = 1 + rng.below(3) as usize;
                    let batch: Vec<PacketMeta> =
                        (0..take).filter_map(|_| q[i].pop_front()).collect();
                    if batch.is_empty() {
                        continue;
                    }
                    c.record_rx(nf, clock, &batch);
                    if rng.below(20) == 0 {
                        continue; // NF-internal drop of the whole batch
                    }
                    let ts2 = clock + 1 + rng.below(250);
                    clock = ts2;
                    if nf == sink {
                        c.record_tx(nf, ts2, None, &batch);
                        if rng.below(15) == 0 {
                            // A read nothing ever sent (corrupted IPID).
                            clock += 1;
                            c.record_rx(
                                nf,
                                clock,
                                &[PacketMeta {
                                    ipid: 0x3FFF,
                                    flow: FiveTuple::new(9, 9, 9, 9, Proto::TCP),
                                }],
                            );
                        }
                    } else {
                        let down = topo.downstream(nf)[0];
                        c.record_tx(nf, ts2, Some(down), &batch);
                        for m in batch {
                            if rng.below(12) != 0 {
                                q[down.0 as usize].push_back(m); // else: ring drop
                            }
                        }
                    }
                }
            }
        }
        c.into_bundle()
    }

    fn assert_stream_matches_offline(
        topo: &Topology,
        bundle: &TraceBundle,
        cfg: &MatchConfig,
        chunk_ns: Nanos,
        tag: &str,
    ) -> ReconstructionReport {
        let off = reconstruct(
            topo,
            bundle,
            &ReconstructionConfig {
                matching: cfg.clone(),
                threads: 1,
            },
        );
        let off_tl = Timelines::build(&off);
        let mut w = WindowedReconstructor::new(topo, cfg.clone());
        for chunk in chunk_bundle(bundle, chunk_ns) {
            w.ingest_chunk(&chunk).unwrap();
        }
        let (got, got_tl) = w.finish();
        assert_eq!(got.traces, off.traces, "{tag}: traces");
        assert_eq!(got.hops, off.hops, "{tag}: hop arena");
        assert_eq!(got.report, off.report, "{tag}: report");
        assert_eq!(got.rx_to_trace, off.rx_to_trace, "{tag}: rx_to_trace");
        assert_eq!(got.hop_path_ids, off.hop_path_ids, "{tag}: hop_path_ids");
        assert_eq!(got.paths.len(), off.paths.len(), "{tag}: path trie size");
        assert_eq!(got_tl, off_tl, "{tag}: timelines");
        off.report
    }

    fn sweep_configs() -> Vec<MatchConfig> {
        vec![
            MatchConfig::default(),
            // Small lookahead so multi-upstream decisions actually stream
            // out mid-run instead of piling up for finish().
            MatchConfig {
                lookahead: 3,
                ..Default::default()
            },
            MatchConfig {
                delay_bound_ns: 20_000,
                negative_slack_ns: 300,
                lookahead: 4,
                ..Default::default()
            },
            MatchConfig {
                use_order_channel: false,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn streamed_equals_offline_on_random_diamond_runs() {
        let mut totals = ReconstructionReport::default();
        for seed in 0..14u64 {
            let topo = diamond();
            let mut rng = Lcg(0x5eed_0001 ^ (seed * 0x9e37_79b9));
            let bundle = random_run(&topo, &mut rng, 60, seed % 3 == 2);
            for cfg in &sweep_configs() {
                for chunk_ns in [900, 7_000, 60_000, Nanos::MAX] {
                    let rep = assert_stream_matches_offline(
                        &topo,
                        &bundle,
                        cfg,
                        chunk_ns,
                        &format!("diamond seed {seed} chunk {chunk_ns}"),
                    );
                    totals.delivered += rep.delivered;
                    totals.inferred_drops += rep.inferred_drops;
                    totals.unresolved += rep.unresolved;
                    totals.unmatched_rx += rep.unmatched_rx;
                    totals.ambiguities += rep.ambiguities;
                }
            }
        }
        // The generator must actually exercise every interesting path.
        assert!(totals.delivered > 500, "delivered: {}", totals.delivered);
        assert!(
            totals.inferred_drops > 100,
            "drops: {}",
            totals.inferred_drops
        );
        assert!(totals.unresolved > 50, "unresolved: {}", totals.unresolved);
        assert!(
            totals.unmatched_rx > 50,
            "unmatched: {}",
            totals.unmatched_rx
        );
        assert!(
            totals.ambiguities > 100,
            "ambiguities: {}",
            totals.ambiguities
        );
    }

    #[test]
    fn streamed_equals_offline_on_random_chain_runs() {
        for seed in 0..10u64 {
            let topo = chain3();
            let mut rng = Lcg(0xc4a1 ^ (seed * 0x0123_4567));
            let bundle = random_run(&topo, &mut rng, 50, seed % 2 == 1);
            for cfg in &sweep_configs() {
                for chunk_ns in [1_500, 25_000, Nanos::MAX] {
                    assert_stream_matches_offline(
                        &topo,
                        &bundle,
                        cfg,
                        chunk_ns,
                        &format!("chain seed {seed} chunk {chunk_ns}"),
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_chunk_runs_are_handled() {
        let topo = chain3();
        let empty = Collector::new(&topo, CollectorConfig::default()).into_bundle();
        assert_stream_matches_offline(&topo, &empty, &MatchConfig::default(), 1_000, "empty");

        let mut w = WindowedReconstructor::new(&topo, MatchConfig::default());
        let wrong = TraceBundle {
            logs: Vec::new(),
            source_flows: Vec::new(),
        };
        assert_eq!(
            w.ingest(&wrong, 10),
            Err(StreamError::TopologyMismatch {
                expected: 3,
                got: 0
            })
        );
    }

    /// Regression (window-boundary IPID reuse, variant A): a 16-bit IPID is
    /// recycled in a much later window after its first carrier was inferred
    /// dropped; the cursor jump must have evicted the stale send so the
    /// recycled read matches the *new* send, bit-identically to offline.
    #[test]
    fn recycled_ipid_rematches_new_send_after_drop_eviction() {
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        let vpn = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(nat);
        b.add_edge(nat, vpn);
        let topo = b.build().unwrap();
        let f = |sport| PacketMeta {
            ipid: 5,
            flow: FiveTuple::new(1, 2, sport, 80, Proto::TCP),
        };
        let g = PacketMeta {
            ipid: 7,
            flow: FiveTuple::new(1, 2, 77, 80, Proto::TCP),
        };
        let late: Nanos = 60_000_000; // a full window past the delay bound
        let mut c = Collector::new(&topo, CollectorConfig::default());
        // p0: nat sends IPID 5, the ring drops it before vpn.
        c.record_source(1_000, &f(10));
        c.record_rx(nat, 1_500, &[f(10)]);
        c.record_tx(nat, 2_000, Some(vpn), &[f(10)]);
        // p1: IPID 7 gets through; matching it jumps vpn's cursor past p0.
        c.record_source(1_100, &g);
        c.record_rx(nat, 1_600, &[g]);
        c.record_tx(nat, 2_500, Some(vpn), &[g]);
        c.record_rx(vpn, 3_000, &[g]);
        c.record_tx(vpn, 3_200, None, &[g]);
        // p2: IPID 5 recycled in a later window.
        c.record_source(late, &f(11));
        c.record_rx(nat, late + 500, &[f(11)]);
        c.record_tx(nat, late + 1_000, Some(vpn), &[f(11)]);
        c.record_rx(vpn, late + 1_500, &[f(11)]);
        c.record_tx(vpn, late + 1_700, None, &[f(11)]);
        let bundle = c.into_bundle();

        for chunk_ns in [10_000_000, 2_000, Nanos::MAX] {
            assert_stream_matches_offline(
                &topo,
                &bundle,
                &MatchConfig::default(),
                chunk_ns,
                &format!("recycle-evict chunk {chunk_ns}"),
            );
        }
        // Pin the semantics, not just the equivalence: p0 dropped at vpn,
        // p2's vpn hop reads the *new* send.
        let mut w = WindowedReconstructor::new(&topo, MatchConfig::default());
        for chunk in chunk_bundle(&bundle, 10_000_000) {
            w.ingest_chunk(&chunk).unwrap();
        }
        let (got, _) = w.finish();
        assert_eq!(
            got.traces[0].outcome,
            TraceOutcome::InferredDrop { nf: vpn, at: 2_000 }
        );
        assert_eq!(got.traces[2].outcome, TraceOutcome::Delivered(late + 1_700));
        let vpn_hop = got.hops_of(2).last().copied().unwrap();
        assert_eq!(vpn_hop.nf, vpn);
        assert_eq!(vpn_hop.arrival_ts, late + 1_000);
        assert_eq!(vpn_hop.read_ts, late + 1_500);
    }

    /// Regression (window-boundary IPID reuse, variant B): when the stale
    /// same-IPID send was *never* passed by the cursor, it still heads the
    /// IPID run and blocks the recycled read (the offline "stale candidates
    /// block" rule) — the read must stay unmatched in streaming too, not
    /// cross-match the stale send or skip ahead to the new one.
    #[test]
    fn recycled_ipid_is_blocked_by_stale_unconsumed_candidate() {
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        let vpn = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(nat);
        b.add_edge(nat, vpn);
        let topo = b.build().unwrap();
        let f = |sport| PacketMeta {
            ipid: 5,
            flow: FiveTuple::new(1, 2, sport, 80, Proto::TCP),
        };
        let late: Nanos = 60_000_000;
        let mut c = Collector::new(&topo, CollectorConfig::default());
        // p0: nat sends IPID 5; vpn never reads anything in this window, so
        // the send stays unconsumed ahead of the cursor.
        c.record_source(1_000, &f(10));
        c.record_rx(nat, 1_500, &[f(10)]);
        c.record_tx(nat, 2_000, Some(vpn), &[f(10)]);
        // p1: IPID 5 recycled much later; its read is outside p0's delay
        // bound, and p0's send blocks the run head.
        c.record_source(late, &f(11));
        c.record_rx(nat, late + 500, &[f(11)]);
        c.record_tx(nat, late + 1_000, Some(vpn), &[f(11)]);
        c.record_rx(vpn, late + 1_500, &[f(11)]);
        let bundle = c.into_bundle();

        for chunk_ns in [10_000_000, 2_000, Nanos::MAX] {
            let rep = assert_stream_matches_offline(
                &topo,
                &bundle,
                &MatchConfig::default(),
                chunk_ns,
                &format!("recycle-block chunk {chunk_ns}"),
            );
            assert_eq!(rep.unmatched_rx, 1, "the recycled read must stay unmatched");
            assert_eq!(rep.unresolved, 2, "both carriers end unresolved");
        }
    }

    /// The evictable frontier must track queue occupancy, not run length: a
    /// 4x longer run through the same topology may not grow the peak
    /// working set materially.
    #[test]
    fn working_set_is_bounded_by_frontier_not_run_length() {
        let peak = |n_packets: usize| {
            let topo = chain3();
            let mut rng = Lcg(0xb0b0_cafe);
            let bundle = random_run(&topo, &mut rng, n_packets, false);
            let mut w = WindowedReconstructor::new(&topo, MatchConfig::default());
            let mut peak = 0usize;
            for chunk in chunk_bundle(&bundle, 5_000) {
                w.ingest_chunk(&chunk).unwrap();
                peak = peak.max(w.working_set());
            }
            let total = w.report().total;
            let (recon, _) = w.finish();
            assert_eq!(recon.report.total, total);
            peak
        };
        let small = peak(100);
        let large = peak(400);
        assert!(
            large < small.max(1) * 3,
            "frontier grew with run length: {small} -> {large}"
        );
    }
}
