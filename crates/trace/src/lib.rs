//! Offline trace reconstruction (§5 of the paper).
//!
//! The collector's records are deliberately lossy: interior NFs identify
//! packets only by their 16-bit IPID, so two packets with the same IPID can
//! be confused. This crate rebuilds the per-packet journeys across the DAG
//! using the paper's three side channels:
//!
//! 1. **Paths** — a downstream NF's input can only contain packets sent by
//!    its direct upstream NFs (and the source, whose load-balancer hash the
//!    operator knows), so matching only ever considers those streams
//!    ([`streams`]).
//! 2. **Timing** — a packet is read after it was sent upstream and within a
//!    bounded queueing delay, so candidates outside the delay bound are
//!    rejected ([`matching`]).
//! 3. **Order** — NF rings are FIFO, so the read sequence at a downstream NF
//!    is an order-preserving merge of its upstream send sequences with
//!    dropped packets removed; matching is therefore an ordered alignment,
//!    which is how the Fig. 9 ambiguity is resolved ([`matching`]).
//!
//! On top of the per-packet traces, [`timeline`] builds what the diagnosis
//! core actually consumes: per-NF arrival/read/send timelines and the
//! *queuing periods* inferred from the batch-size signal (a read of fewer
//! than [`msc_collector::MAX_BATCH`] packets means the ring was drained).

#![forbid(unsafe_code)]

pub mod matching;
pub mod reconstruct;
pub mod skew;
pub mod streams;
pub mod timeline;
pub mod windowed;

pub use matching::{match_downstream, EdgeMatch, MatchConfig, MatchOutcome, MatchStats};
pub use reconstruct::{
    assemble, match_all, reconstruct, PathTrie, ReconstructedTrace, Reconstruction,
    ReconstructionConfig, ReconstructionReport, RxTraceRef, TraceHop, TraceOutcome, PATH_ROOT,
};
pub use skew::{
    correct_bundle, estimate_offsets, estimate_offsets_detailed, estimate_offsets_refined,
    estimate_offsets_refined_detailed, SkewConfig, SkewEstimates, SkewTracker,
};
pub use streams::{EdgeStreams, PacketRef, RxBatchInfo, RxEntry, SourceEntry, TxEntry};
pub use timeline::{Arrival, ArrivalKind, NfTimeline, NfTimelineBuilder, QueuingPeriod, Timelines};
pub use windowed::{StreamError, WindowedReconstructor};
