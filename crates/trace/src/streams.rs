//! Flattening collector logs into matchable streams.
//!
//! For every NF we flatten the batched rx/tx records into ordered streams.
//! Because NF rings are FIFO and the NFs process packets in order, the i-th
//! packet an NF reads is the i-th packet it sends — so rx index and tx index
//! line up within an NF and the only hard matching problem is *across* NFs
//! (done in [`crate::matching`]).
//!
//! The source's per-entry-NF send streams are derived from the source flow
//! records and the operator-known load-balancer hash
//! ([`nf_types::Topology::entry_for`]) — the path side channel at the first
//! hop.

use msc_collector::TraceBundle;
use nf_types::{FiveTuple, Ipid, Nanos, NfId, NodeId, Topology};

/// One packet appearance in an NF's rx stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxEntry {
    /// Read (batch) timestamp.
    pub ts: Nanos,
    /// IPID.
    pub ipid: Ipid,
    /// Index of the batch this entry came from.
    pub batch: usize,
}

/// One packet appearance in an NF's tx stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxEntry {
    /// Send (batch) timestamp.
    pub ts: Nanos,
    /// IPID.
    pub ipid: Ipid,
    /// Next hop (`None` = leaves the graph).
    pub to: Option<NfId>,
}

/// A packet emitted by the traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceEntry {
    /// Emission timestamp.
    pub ts: Nanos,
    /// IPID.
    pub ipid: Ipid,
    /// The full flow key (the source keeps flow info).
    pub flow: FiveTuple,
    /// The entry NF the load balancer sends this flow to.
    pub entry: NfId,
}

/// Reference to a packet instance: its position in one NF's rx stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    /// The NF.
    pub nf: NfId,
    /// Flat index into that NF's rx stream.
    pub rx_idx: usize,
}

/// One rx batch's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxBatchInfo {
    /// Read timestamp.
    pub ts: Nanos,
    /// Batch size.
    pub size: usize,
    /// Whether this read drained the ring (`size <` max batch).
    pub drained: bool,
}

/// All streams of one NF.
#[derive(Debug, Default)]
pub struct NfStreams {
    /// Flattened rx entries in read order.
    pub rx: Vec<RxEntry>,
    /// Batch metadata, in order.
    pub rx_batches: Vec<RxBatchInfo>,
    /// Flattened tx entries in send order (all targets interleaved as
    /// recorded — the NF's global FIFO order).
    pub tx: Vec<TxEntry>,
}

/// Flattened streams for the whole deployment, plus edge position indexes.
///
/// All per-edge indexes are dense: every downstream NF's upstream edges are
/// numbered by *slot* (the position of the upstream node in
/// [`Topology::upstream_nodes`], which is also the order
/// [`crate::matching::EdgeMatch`] reports outcomes in), so edge lookups are
/// array indexing instead of hashing.
#[derive(Debug)]
pub struct EdgeStreams {
    /// Per-NF streams, indexed by `NfId`.
    pub nfs: Vec<NfStreams>,
    /// Source emissions in time order.
    pub source: Vec<SourceEntry>,
    /// Per downstream NF: its upstream nodes in [`Topology::upstream_nodes`]
    /// order — the slot order of `edge_pos`.
    upstreams: Vec<Vec<NodeId>>,
    /// `edge_pos[down][slot]`: ordered indices into the upstream's tx stream
    /// (or the source stream) of the packets sent on that edge.
    edge_pos: Vec<Vec<Vec<usize>>>,
    /// Inverse of `edge_pos` for NF upstreams: `tx_edge_pos[nf][i]` is the
    /// position of tx entry `i` within its edge stream.
    pub tx_edge_pos: Vec<Vec<usize>>,
    /// Inverse for the source stream.
    pub source_edge_pos: Vec<usize>,
    /// For each exit NF: ordered indices into its tx stream of exit sends
    /// (`to == None`), aligned with the NF's flow records.
    exit_pos: Vec<Vec<usize>>,
}

impl EdgeStreams {
    /// Builds streams from a bundle.
    pub fn build(topology: &Topology, bundle: &TraceBundle) -> Self {
        let mut nfs: Vec<NfStreams> = Vec::with_capacity(topology.len());
        for log in &bundle.logs {
            let mut s = NfStreams::default();
            for (bi, b) in log.rx.iter().enumerate() {
                s.rx_batches.push(RxBatchInfo {
                    ts: b.ts,
                    size: b.len(),
                    drained: b.drained_queue(),
                });
                for &ipid in &b.ipids {
                    s.rx.push(RxEntry {
                        ts: b.ts,
                        ipid,
                        batch: bi,
                    });
                }
            }
            for b in &log.tx {
                for &ipid in &b.ipids {
                    s.tx.push(TxEntry {
                        ts: b.ts,
                        ipid,
                        to: b.to,
                    });
                }
            }
            nfs.push(s);
        }

        let source: Vec<SourceEntry> = bundle
            .source_flows
            .iter()
            .map(|f| SourceEntry {
                ts: f.ts,
                ipid: f.ipid,
                flow: f.flow,
                entry: topology.entry_for(&f.flow),
            })
            .collect();

        let n = topology.len();
        let upstreams: Vec<Vec<NodeId>> = (0..n)
            .map(|d| topology.upstream_nodes(NfId(d as u16)))
            .collect();
        let mut edge_pos: Vec<Vec<Vec<usize>>> = upstreams
            .iter()
            .map(|u| vec![Vec::new(); u.len()])
            .collect();
        let mut exit_pos: Vec<Vec<usize>> = vec![Vec::new(); n];

        // NF -> NF edges and exits. Slot of `nf` in each target's upstream
        // list is resolved once per NF, then each tx entry is O(1).
        let mut tx_edge_pos: Vec<Vec<usize>> = Vec::with_capacity(nfs.len());
        for (nf_idx, s) in nfs.iter().enumerate() {
            let me = NodeId::Nf(NfId(nf_idx as u16));
            let my_slot: Vec<Option<usize>> = upstreams
                .iter()
                .map(|u| u.iter().position(|&node| node == me))
                .collect();
            // Sends to targets outside the topology still need consistent
            // inverse positions even though their edge stream is not kept.
            let mut orphan_count: Vec<usize> = vec![0; n];
            let mut pos_within: Vec<usize> = Vec::with_capacity(s.tx.len());
            for (i, e) in s.tx.iter().enumerate() {
                match e.to {
                    Some(d) => match my_slot[d.0 as usize] {
                        Some(slot) => {
                            let v = &mut edge_pos[d.0 as usize][slot];
                            pos_within.push(v.len());
                            v.push(i);
                        }
                        None => {
                            pos_within.push(orphan_count[d.0 as usize]);
                            orphan_count[d.0 as usize] += 1;
                        }
                    },
                    None => {
                        let v = &mut exit_pos[nf_idx];
                        pos_within.push(v.len());
                        v.push(i);
                    }
                }
            }
            tx_edge_pos.push(pos_within);
        }

        // Source -> entry edges.
        let src_slot: Vec<Option<usize>> = upstreams
            .iter()
            .map(|u| u.iter().position(|&node| node == NodeId::Source))
            .collect();
        let mut source_edge_pos: Vec<usize> = Vec::with_capacity(source.len());
        for (i, e) in source.iter().enumerate() {
            let slot = src_slot[e.entry.0 as usize].expect("entry NF has a source upstream");
            let v = &mut edge_pos[e.entry.0 as usize][slot];
            source_edge_pos.push(v.len());
            v.push(i);
        }

        Self {
            nfs,
            source,
            upstreams,
            edge_pos,
            tx_edge_pos,
            source_edge_pos,
            exit_pos,
        }
    }

    /// The upstream nodes of `down` in slot order
    /// ([`Topology::upstream_nodes`] order).
    pub fn upstreams(&self, down: NfId) -> &[NodeId] {
        &self.upstreams[down.0 as usize]
    }

    /// The slot of upstream `node` on downstream `down`, if the edge exists.
    pub fn slot_of(&self, node: NodeId, down: NfId) -> Option<usize> {
        self.upstreams[down.0 as usize]
            .iter()
            .position(|&u| u == node)
    }

    /// Ordered indices into the upstream's tx stream (or the source stream)
    /// of the packets sent on `(node, down)`; empty if the edge does not
    /// exist.
    pub fn edge_positions(&self, node: NodeId, down: NfId) -> &[usize] {
        match self.slot_of(node, down) {
            Some(slot) => &self.edge_pos[down.0 as usize][slot],
            None => &[],
        }
    }

    /// Same as [`Self::edge_positions`] by upstream slot.
    pub fn edge_positions_slot(&self, down: NfId, slot: usize) -> &[usize] {
        &self.edge_pos[down.0 as usize][slot]
    }

    /// Ordered indices into `nf`'s tx stream of exit sends (`to == None`),
    /// aligned with the NF's flow records.
    pub fn exit_positions(&self, nf: NfId) -> &[usize] {
        &self.exit_pos[nf.0 as usize]
    }

    /// The (ts, ipid) of the `pos`-th packet sent on `(node, down)`.
    pub fn edge_entry(&self, node: NodeId, down: NfId, pos: usize) -> (Nanos, Ipid) {
        let idx = self.edge_positions(node, down)[pos];
        match node {
            NodeId::Source => {
                let e = &self.source[idx];
                (e.ts, e.ipid)
            }
            NodeId::Nf(u) => {
                let e = &self.nfs[u.0 as usize].tx[idx];
                (e.ts, e.ipid)
            }
        }
    }

    /// Number of packets sent on an edge.
    pub fn edge_len(&self, node: NodeId, down: NfId) -> usize {
        self.edge_positions(node, down).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use nf_types::{NfKind, Proto};

    fn topo() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let c = b.add_nf(NfKind::Nat, "nat2");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_entry(c);
        b.add_edge(a, v);
        b.add_edge(c, v);
        b.build().unwrap()
    }

    fn meta(ipid: u16, sport: u16) -> PacketMeta {
        PacketMeta {
            ipid,
            flow: FiveTuple::new(0x0a000001, 0x14000001, sport, 80, Proto::TCP),
        }
    }

    #[test]
    fn flattening_preserves_order_and_batches() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_rx(NfId(0), 100, &[meta(1, 1), meta(2, 2)]);
        c.record_rx(NfId(0), 200, &[meta(3, 3)]);
        c.record_tx(NfId(0), 150, Some(NfId(2)), &[meta(1, 1), meta(2, 2)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let nat = &s.nfs[0];
        assert_eq!(nat.rx.len(), 3);
        assert_eq!(nat.rx[0].batch, 0);
        assert_eq!(nat.rx[2].batch, 1);
        assert_eq!(nat.rx_batches.len(), 2);
        assert!(nat.rx_batches[0].drained); // 2 < 32
        assert_eq!(nat.tx.len(), 2);
        assert_eq!(s.edge_len(NodeId::Nf(NfId(0)), NfId(2)), 2);
        assert_eq!(s.edge_entry(NodeId::Nf(NfId(0)), NfId(2), 1), (150, 2));
    }

    #[test]
    fn source_streams_split_by_lb_hash() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        // 40 flows spread over both entries by hash.
        for i in 0..40u16 {
            c.record_source(i as u64 * 10, &meta(i, 1000 + i));
        }
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let a = s.edge_len(NodeId::Source, NfId(0));
        let b = s.edge_len(NodeId::Source, NfId(1));
        assert_eq!(a + b, 40);
        assert!(a > 5 && b > 5, "lb skew: {a}/{b}");
        // Position inverse is consistent.
        for (i, e) in s.source.iter().enumerate() {
            let pos = s.source_edge_pos[i];
            assert_eq!(s.edge_positions(NodeId::Source, e.entry)[pos], i);
        }
    }

    #[test]
    fn exit_positions_track_exit_sends() {
        let t = topo();
        let mut c = Collector::new(&t, CollectorConfig::default());
        c.record_tx(NfId(2), 500, None, &[meta(9, 1)]);
        c.record_tx(NfId(2), 600, None, &[meta(10, 2), meta(11, 3)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        let exits = s.exit_positions(NfId(2));
        assert_eq!(exits.len(), 3);
        assert_eq!(s.nfs[2].tx[exits[2]].ipid, 11);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use nf_types::{NfKind, Proto};

    #[test]
    fn empty_bundle_builds_empty_streams() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        b.add_entry(a);
        let t = b.build().unwrap();
        let c = Collector::new(&t, CollectorConfig::default());
        let s = EdgeStreams::build(&t, &c.into_bundle());
        assert!(s.source.is_empty());
        assert!(s.nfs[0].rx.is_empty());
        assert_eq!(s.edge_len(NodeId::Source, a), 0);
    }

    #[test]
    fn tx_edge_pos_inverse_holds_for_every_entry() {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v1 = b.add_nf(NfKind::Vpn, "vpn1");
        let v2 = b.add_nf(NfKind::Vpn, "vpn2");
        b.add_entry(a);
        b.add_edge(a, v1);
        b.add_edge(a, v2);
        let t = b.build().unwrap();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m = |ipid: u16| PacketMeta {
            ipid,
            flow: FiveTuple::new(1, 2, 3, 4, Proto::TCP),
        };
        // Interleave targets across batches.
        c.record_tx(NfId(0), 100, Some(v1), &[m(1), m(2)]);
        c.record_tx(NfId(0), 200, Some(v2), &[m(3)]);
        c.record_tx(NfId(0), 300, Some(v1), &[m(4)]);
        let s = EdgeStreams::build(&t, &c.into_bundle());
        for (i, e) in s.nfs[0].tx.iter().enumerate() {
            let pos = s.tx_edge_pos[0][i];
            match e.to {
                Some(d) => {
                    assert_eq!(s.edge_positions(NodeId::Nf(NfId(0)), d)[pos], i);
                }
                None => {
                    assert_eq!(s.exit_positions(NfId(0))[pos], i);
                }
            }
        }
        assert_eq!(s.edge_len(NodeId::Nf(NfId(0)), v1), 3);
        assert_eq!(s.edge_len(NodeId::Nf(NfId(0)), v2), 1);
    }
}
