//! End-to-end trace assembly: source emissions → per-packet journeys.

use crate::matching::{match_downstream, EdgeMatch, MatchConfig, MatchOutcome};
use crate::streams::{EdgeStreams, PacketRef};
use msc_collector::TraceBundle;
use nf_types::{FiveTuple, Nanos, NfId, NodeId, Topology};
use std::collections::HashMap;
use std::ops::Range;

/// One reconstructed hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHop {
    /// The NF.
    pub nf: NfId,
    /// When the packet arrived at the NF's ring (the upstream send time —
    /// link delay is not observable and treated as zero, as in the paper).
    pub arrival_ts: Nanos,
    /// When the NF read it.
    pub read_ts: Nanos,
    /// When the NF sent it on (`None` if the run ended mid-NF).
    pub sent_ts: Option<Nanos>,
    /// Flat rx index at the NF (keys into timelines).
    pub rx_idx: usize,
}

/// How a reconstructed journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Left the exit NF at this time.
    Delivered(Nanos),
    /// Inferred dropped at this NF's ring around this (arrival) time.
    InferredDrop {
        /// Where.
        nf: NfId,
        /// Arrival time of the dropped packet.
        at: Nanos,
    },
    /// Fate not visible in the records (run cut off, or matching failed).
    Unresolved,
}

/// One packet's reconstructed journey. Flow and emission time come from the
/// source record; everything else from matched NF records.
///
/// The hops themselves live in the shared arena [`Reconstruction::hops`]:
/// one trace is a contiguous range there, so reconstructing ~10^5 traces
/// costs one `Vec` instead of one per trace. Use
/// [`Reconstruction::hops_of`] to read them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconstructedTrace {
    /// The flow (from the source's flow info).
    pub flow: FiveTuple,
    /// Source emission time.
    pub emitted_at: Nanos,
    /// This trace's hop range in the shared arena, in path order.
    pub hops: Range<u32>,
    /// Terminal outcome.
    pub outcome: TraceOutcome,
}

impl ReconstructedTrace {
    /// Number of hops reconstructed for this trace.
    pub fn hop_count(&self) -> usize {
        (self.hops.end - self.hops.start) as usize
    }

    /// End-to-end latency for delivered packets. Saturates at zero:
    /// residual clock skew on multi-server bundles can leave a corrected
    /// delivery timestamp slightly before the emission.
    pub fn latency(&self) -> Option<Nanos> {
        match self.outcome {
            TraceOutcome::Delivered(at) => Some(at.saturating_sub(self.emitted_at)),
            _ => None,
        }
    }

    /// True if inferred dropped.
    pub fn dropped(&self) -> bool {
        matches!(self.outcome, TraceOutcome::InferredDrop { .. })
    }
}

/// Reconstruction quality report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconstructionReport {
    /// Packets the source offered.
    pub total: u64,
    /// Traces ending in delivery.
    pub delivered: u64,
    /// Traces ending in an inferred drop.
    pub inferred_drops: u64,
    /// Traces with unresolved fate.
    pub unresolved: u64,
    /// rx entries that could not be attributed to any upstream send.
    pub unmatched_rx: u64,
    /// IPID collisions that needed lookahead.
    pub ambiguities: u64,
    /// Delivered traces whose exit flow record disagrees with the source
    /// flow (§5's correctness check). In practice these are pairs of
    /// same-IPID packets read in the *same* batch: their records are
    /// byte-identical except for the exit five-tuple, so the matcher can
    /// swap their identities — the §7-acknowledged limit of IPID-based
    /// reconstruction. Timing analysis is unaffected (the swapped packets
    /// share timestamps); rates stay well under 0.1%.
    pub flow_mismatches: u64,
}

/// Reconstruction configuration (wraps [`MatchConfig`]).
#[derive(Debug, Clone, Default)]
pub struct ReconstructionConfig {
    /// Cross-NF matching parameters.
    pub matching: MatchConfig,
    /// Workers for the per-NF matching fan-out (`0` = auto, `1` =
    /// sequential). Every NF's matching is independent and results merge in
    /// NF order, so the reconstruction is bit-identical for any worker
    /// count.
    pub threads: usize,
}

/// Interned upstream-path prefixes, shared by every trace.
///
/// The propagation analysis (§4.2) groups PreSet packets by the node
/// sequence they traversed to reach the victim NF. Paths through a DAG are
/// few but packets are many, so the sequences are interned once here as a
/// trie: id `ROOT` is `[Source]`, and every other id appends one node to its
/// parent's path. A path is then a single `u32` — cheap to store per hop,
/// cheap to hash as a group key, and expandable back to the node list when a
/// group actually needs it.
#[derive(Debug)]
pub struct PathTrie {
    /// `nodes[id] = (parent, last node)`; the root is its own parent.
    nodes: Vec<(u32, NodeId)>,
    children: HashMap<(u32, NodeId), u32>,
}

/// The trie id of the bare `[Source]` path.
pub const PATH_ROOT: u32 = 0;

impl PathTrie {
    /// A trie holding only the root `[Source]` path.
    pub fn new() -> Self {
        Self {
            nodes: vec![(PATH_ROOT, NodeId::Source)],
            children: HashMap::new(),
        }
    }

    /// The id of `parent`'s path extended by `node`, interning it if new.
    pub fn child(&mut self, parent: u32, node: NodeId) -> u32 {
        if let Some(&id) = self.children.get(&(parent, node)) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("fewer than 2^32 distinct paths");
        self.nodes.push((parent, node));
        self.children.insert((parent, node), id);
        id
    }

    /// Number of nodes on the path `id` (the root has length 1).
    pub fn path_len(&self, id: u32) -> usize {
        let mut n = 1;
        let mut cur = id;
        while cur != PATH_ROOT {
            cur = self.nodes[cur as usize].0;
            n += 1;
        }
        n
    }

    /// The full node sequence of path `id`, root first.
    pub fn path(&self, id: u32) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.path_len(id));
        let mut cur = id;
        loop {
            v.push(self.nodes[cur as usize].1);
            if cur == PATH_ROOT {
                break;
            }
            cur = self.nodes[cur as usize].0;
        }
        v.reverse();
        v
    }

    /// Number of interned paths (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: the trie is constructed holding the root `[Source]`
    /// path and nothing ever removes it.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Interns every hop-prefix path of `traces` (whose hops live in the
    /// arena `hops`). Returns the trie and, aligned with the arena, per hop
    /// the id of the node sequence *strictly before* that hop
    /// (`[Source, hops[0].nf, .., hops[h-1].nf]`) — exactly the group key
    /// the §4.2 timespan analysis needs for a victim at hop `h`.
    pub fn index(traces: &[ReconstructedTrace], hops: &[TraceHop]) -> (PathTrie, Vec<u32>) {
        let mut trie = PathTrie::new();
        let mut hop_path_ids = vec![PATH_ROOT; hops.len()];
        for tr in traces {
            let mut cur = PATH_ROOT;
            for i in tr.hops.start..tr.hops.end {
                hop_path_ids[i as usize] = cur;
                cur = trie.child(cur, NodeId::Nf(hops[i as usize].nf));
            }
        }
        (trie, hop_path_ids)
    }
}

impl Default for PathTrie {
    fn default() -> Self {
        Self::new()
    }
}

/// Packed back-reference from one rx entry to its `(trace, hop)` — 8 bytes
/// instead of 24 for `Option<(usize, usize)>`, so the per-NF `rx_to_trace`
/// arrays stay cache-resident. Hop indexes are bounded by the path length
/// (a DAG walk, well under 2^16); trace indexes get the remaining 48 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxTraceRef(u64);

impl RxTraceRef {
    /// The rx entry was never attributed to a trace.
    pub const NONE: Self = Self(u64::MAX);
    const HOP_BITS: u32 = 16;

    pub(crate) fn new(trace: usize, hop: usize) -> Self {
        debug_assert!(hop < (1 << Self::HOP_BITS));
        debug_assert!((trace as u64) < (u64::MAX >> Self::HOP_BITS));
        Self(((trace as u64) << Self::HOP_BITS) | hop as u64)
    }

    /// Unpacks to `(trace index, hop index)`; `None` when unattributed.
    pub fn get(self) -> Option<(usize, usize)> {
        if self == Self::NONE {
            None
        } else {
            Some((
                (self.0 >> Self::HOP_BITS) as usize,
                (self.0 & ((1 << Self::HOP_BITS) - 1)) as usize,
            ))
        }
    }
}

/// The full reconstruction: traces plus indexes for the diagnosis layer.
#[derive(Debug)]
pub struct Reconstruction {
    /// One trace per source emission, in emission order.
    pub traces: Vec<ReconstructedTrace>,
    /// The shared hop arena: `traces[t].hops` is a range in here (traces
    /// appear in emission order, so the ranges tile the arena).
    pub hops: Vec<TraceHop>,
    /// Quality report.
    pub report: ReconstructionReport,
    /// The flattened streams (timelines are built from these).
    pub streams: EdgeStreams,
    /// For every NF: rx flat index → packed (trace, hop) back-reference.
    pub rx_to_trace: Vec<Vec<RxTraceRef>>,
    /// Interned upstream-path prefixes (see [`PathTrie`]).
    pub paths: PathTrie,
    /// Per arena hop (aligned with `hops`): the interned id of the path
    /// prefix strictly before that hop. `paths.path(id)` is the node
    /// sequence `[Source, ..]` the packet took to arrive there.
    pub hop_path_ids: Vec<u32>,
}

impl Reconstruction {
    /// The hops of trace `t`, in path order.
    pub fn hops_of(&self, t: usize) -> &[TraceHop] {
        let r = &self.traces[t].hops;
        &self.hops[r.start as usize..r.end as usize]
    }

    /// The path-prefix ids of trace `t`'s hops (see `hop_path_ids`).
    pub fn hop_path_ids_of(&self, t: usize) -> &[u32] {
        let r = &self.traces[t].hops;
        &self.hop_path_ids[r.start as usize..r.end as usize]
    }

    /// The trace and hop a packet instance belongs to.
    pub fn trace_of(&self, pref: PacketRef) -> Option<(usize, usize)> {
        self.rx_to_trace[pref.nf.0 as usize][pref.rx_idx].get()
    }

    /// The flow of a packet instance, if its trace was resolved.
    pub fn flow_of(&self, pref: PacketRef) -> Option<FiveTuple> {
        self.trace_of(pref).map(|(t, _)| self.traces[t].flow)
    }
}

/// Stage 2 of [`reconstruct`]: matches every NF against its upstreams.
///
/// Independent per NF, so the fan-out is sharded into contiguous chunks
/// ([`nf_types::chunk_ranges`], clamped to the host's CPUs — a single-CPU
/// host runs strictly sequentially with no worker overhead); concatenating
/// chunk results in order keeps the output bit-identical to the sequential
/// path for any worker count. When the NF fan-out is active, the per-edge
/// parallelism inside `match_downstream` is disabled rather than
/// oversubscribing with nested worker pools.
pub fn match_all(
    streams: &EdgeStreams,
    topology: &Topology,
    cfg: &ReconstructionConfig,
) -> Vec<EdgeMatch> {
    let match_cfg = if nf_types::effective_threads(cfg.threads) > 1 {
        MatchConfig {
            threads: 1,
            ..cfg.matching.clone()
        }
    } else {
        cfg.matching.clone()
    };
    let chunks = nf_types::chunk_ranges(cfg.threads, topology.len());
    let per_chunk: Vec<Vec<EdgeMatch>> = nf_types::par_map(cfg.threads, &chunks, |_, r| {
        r.clone()
            .map(|nf| match_downstream(streams, topology, NfId(nf as u16), &match_cfg))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Stages 3+4 of [`reconstruct`]: walks every source emission through the
/// per-NF match outcomes, assembling traces into the shared hop arena and
/// the flat per-NF `rx_to_trace` back-references in one pass, then interns
/// the path prefixes.
pub fn assemble(
    topology: &Topology,
    bundle: &TraceBundle,
    streams: EdgeStreams,
    matches: &[EdgeMatch],
) -> Reconstruction {
    let mut report = ReconstructionReport {
        total: streams.source.len() as u64,
        ..Default::default()
    };
    for m in matches {
        report.unmatched_rx += m.stats.unmatched_rx;
        report.ambiguities += m.stats.ambiguities;
    }

    // Exit flow records per NF for validation (empty for non-exits).
    let mut exit_flows: Vec<&[msc_collector::FlowRecord]> = vec![&[]; topology.len()];
    for &e in topology.exits() {
        exit_flows[e.0 as usize] = bundle.log(e).flows.as_slice();
    }

    let mut rx_to_trace: Vec<Vec<RxTraceRef>> = streams
        .nfs
        .iter()
        .map(|s| vec![RxTraceRef::NONE; s.rx.len()])
        .collect();

    // Every hop is a matched rx entry, so the total rx count bounds the
    // arena exactly once (no per-trace reallocation).
    let mut hops: Vec<TraceHop> = Vec::with_capacity(streams.nfs.iter().map(|s| s.rx.len()).sum());
    let mut traces = Vec::with_capacity(streams.source.len());
    for (src_idx, s) in streams.source.iter().enumerate() {
        let hop_start = u32::try_from(hops.len()).expect("hop arena fits u32 offsets");
        let trace_outcome;
        let mut node = NodeId::Source;
        let mut pos = streams.source_edge_pos[src_idx];
        let mut down = s.entry;
        let mut arrival = s.ts;
        loop {
            let outcome = matches[down.0 as usize]
                .outcome(node)
                .and_then(|v| v.get(pos))
                .copied()
                .unwrap_or(MatchOutcome::Unresolved);
            match outcome {
                MatchOutcome::InferredDrop => {
                    trace_outcome = TraceOutcome::InferredDrop {
                        nf: down,
                        at: arrival,
                    };
                    break;
                }
                MatchOutcome::Unresolved => {
                    trace_outcome = TraceOutcome::Unresolved;
                    break;
                }
                MatchOutcome::Matched(rx_idx) => {
                    let nf_streams = &streams.nfs[down.0 as usize];
                    let read_ts = nf_streams.rx[rx_idx].ts;
                    rx_to_trace[down.0 as usize][rx_idx] =
                        RxTraceRef::new(src_idx, hops.len() - hop_start as usize);
                    if rx_idx >= nf_streams.tx.len() {
                        // Read but never sent: run ended inside this NF.
                        hops.push(TraceHop {
                            nf: down,
                            arrival_ts: arrival,
                            read_ts,
                            sent_ts: None,
                            rx_idx,
                        });
                        trace_outcome = TraceOutcome::Unresolved;
                        break;
                    }
                    let tx = nf_streams.tx[rx_idx];
                    hops.push(TraceHop {
                        nf: down,
                        arrival_ts: arrival,
                        read_ts,
                        sent_ts: Some(tx.ts),
                        rx_idx,
                    });
                    match tx.to {
                        None => {
                            trace_outcome = TraceOutcome::Delivered(tx.ts);
                            // Validate against the exit flow record.
                            let exit_pos = streams.tx_edge_pos[down.0 as usize][rx_idx];
                            if let Some(fr) = exit_flows[down.0 as usize].get(exit_pos) {
                                if fr.flow != s.flow {
                                    report.flow_mismatches += 1;
                                }
                            }
                            break;
                        }
                        Some(d2) => {
                            node = NodeId::Nf(down);
                            pos = streams.tx_edge_pos[down.0 as usize][rx_idx];
                            arrival = tx.ts;
                            down = d2;
                        }
                    }
                }
            }
        }
        match trace_outcome {
            TraceOutcome::Delivered(_) => report.delivered += 1,
            TraceOutcome::InferredDrop { .. } => report.inferred_drops += 1,
            TraceOutcome::Unresolved => report.unresolved += 1,
        }
        traces.push(ReconstructedTrace {
            flow: s.flow,
            emitted_at: s.ts,
            // lint: lossy-cast-ok(the hop arena is u32-indexed by design; 4B hops is ~100x the largest experiment)
            hops: hop_start..hops.len() as u32,
            outcome: trace_outcome,
        });
    }

    let (paths, hop_path_ids) = PathTrie::index(&traces, &hops);
    Reconstruction {
        traces,
        hops,
        report,
        streams,
        rx_to_trace,
        paths,
        hop_path_ids,
    }
}

/// Runs matching for every NF and assembles per-packet traces.
pub fn reconstruct(
    topology: &Topology,
    bundle: &TraceBundle,
    cfg: &ReconstructionConfig,
) -> Reconstruction {
    let streams = EdgeStreams::build(topology, bundle);
    let matches = match_all(&streams, topology, cfg);
    assemble(topology, bundle, streams, &matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use nf_types::{NfKind, Proto};

    fn chain() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        b.build().unwrap()
    }

    fn meta(ipid: u16, sport: u16) -> PacketMeta {
        PacketMeta {
            ipid,
            flow: FiveTuple::new(0x0a000001, 0x14000001, sport, 80, Proto::TCP),
        }
    }

    #[test]
    fn delivered_trace_assembles_full_journey() {
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m = meta(1, 1000);
        c.record_source(100, &m);
        c.record_rx(NfId(0), 150, &[m]);
        c.record_tx(NfId(0), 180, Some(NfId(1)), &[m]);
        c.record_rx(NfId(1), 200, &[m]);
        c.record_tx(NfId(1), 250, None, &[m]);
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        assert_eq!(r.traces.len(), 1);
        let tr = &r.traces[0];
        assert_eq!(tr.outcome, TraceOutcome::Delivered(250));
        assert_eq!(tr.latency(), Some(150));
        let hops = r.hops_of(0);
        assert_eq!(tr.hop_count(), 2);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].nf, NfId(0));
        assert_eq!(hops[0].arrival_ts, 100);
        assert_eq!(hops[0].read_ts, 150);
        assert_eq!(hops[0].sent_ts, Some(180));
        assert_eq!(hops[1].arrival_ts, 180);
        assert_eq!(r.report.delivered, 1);
        assert_eq!(r.report.flow_mismatches, 0);
    }

    #[test]
    fn drop_at_second_nf_is_inferred() {
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m1 = meta(1, 1000);
        let m2 = meta(2, 1001);
        c.record_source(100, &m1);
        c.record_source(110, &m2);
        c.record_rx(NfId(0), 150, &[m1, m2]);
        c.record_tx(NfId(0), 180, Some(NfId(1)), &[m1, m2]);
        // VPN only ever reads packet 2: packet 1 dropped at its ring.
        c.record_rx(NfId(1), 200, &[m2]);
        c.record_tx(NfId(1), 250, None, &[m2]);
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        assert_eq!(
            r.traces[0].outcome,
            TraceOutcome::InferredDrop {
                nf: NfId(1),
                at: 180
            }
        );
        assert_eq!(r.hops_of(0).len(), 1, "NAT hop still reconstructed");
        assert_eq!(r.traces[1].outcome, TraceOutcome::Delivered(250));
        assert_eq!(r.report.inferred_drops, 1);
    }

    #[test]
    fn unresolved_when_run_cut_off() {
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m = meta(1, 1000);
        c.record_source(100, &m);
        c.record_rx(NfId(0), 150, &[m]);
        // NAT never sent it (in-flight at cutoff).
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        assert_eq!(r.traces[0].outcome, TraceOutcome::Unresolved);
        assert_eq!(r.hops_of(0).len(), 1);
        assert_eq!(r.hops_of(0)[0].sent_ts, None);
    }

    #[test]
    fn rx_to_trace_links_packet_instances() {
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m = meta(1, 1000);
        c.record_source(100, &m);
        c.record_rx(NfId(0), 150, &[m]);
        c.record_tx(NfId(0), 180, Some(NfId(1)), &[m]);
        c.record_rx(NfId(1), 200, &[m]);
        c.record_tx(NfId(1), 250, None, &[m]);
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        let pref = PacketRef {
            nf: NfId(1),
            rx_idx: 0,
        };
        assert_eq!(r.trace_of(pref), Some((0, 1)));
        assert_eq!(r.flow_of(pref), Some(r.traces[0].flow));
    }

    #[test]
    fn path_trie_interns_hop_prefixes() {
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let m = meta(1, 1000);
        c.record_source(100, &m);
        c.record_rx(NfId(0), 150, &[m]);
        c.record_tx(NfId(0), 180, Some(NfId(1)), &[m]);
        c.record_rx(NfId(1), 200, &[m]);
        c.record_tx(NfId(1), 250, None, &[m]);
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        // Hop 0 (at the NAT) was reached via [Source]; hop 1 (at the VPN)
        // via [Source, nat1].
        let ids = r.hop_path_ids_of(0);
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], PATH_ROOT);
        assert_eq!(r.paths.path(ids[0]), vec![NodeId::Source]);
        assert_eq!(
            r.paths.path(ids[1]),
            vec![NodeId::Source, NodeId::Nf(NfId(0))]
        );
        // A second packet down the same chain shares the interned ids.
        let mut c2 = Collector::new(&t, CollectorConfig::default());
        for (i, mm) in [meta(1, 1000), meta(2, 1001)].iter().enumerate() {
            c2.record_source(100 + i as u64, mm);
        }
        let ms = [meta(1, 1000), meta(2, 1001)];
        c2.record_rx(NfId(0), 150, &ms);
        c2.record_tx(NfId(0), 180, Some(NfId(1)), &ms);
        c2.record_rx(NfId(1), 200, &ms);
        c2.record_tx(NfId(1), 250, None, &ms);
        let r2 = reconstruct(&t, &c2.into_bundle(), &ReconstructionConfig::default());
        assert_eq!(r2.hop_path_ids_of(0), r2.hop_path_ids_of(1));
        // Root + one path per hop depth.
        assert_eq!(r2.paths.len(), 3);
    }

    #[test]
    fn path_trie_default_matches_new_and_is_never_empty() {
        let d = PathTrie::default();
        let n = PathTrie::new();
        assert_eq!(d.len(), n.len());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty(), "the root [Source] path always exists");
        assert!(!n.is_empty());
        assert_eq!(d.path(PATH_ROOT), n.path(PATH_ROOT));
        let mut t = PathTrie::new();
        let id = t.child(PATH_ROOT, NodeId::Nf(NfId(0)));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        assert_eq!(t.path(id), vec![NodeId::Source, NodeId::Nf(NfId(0))]);
    }

    #[test]
    fn rx_trace_ref_packs_and_unpacks() {
        assert_eq!(RxTraceRef::NONE.get(), None);
        for &(t, h) in &[(0usize, 0usize), (1, 15), (164_359, 12), (1 << 30, 65_535)] {
            assert_eq!(RxTraceRef::new(t, h).get(), Some((t, h)));
        }
    }

    #[test]
    fn ipid_collision_across_hosts_resolved() {
        // Two different source hosts use the same IPID sequence (per-host
        // counters): flows with equal ipids must still reconstruct right.
        let t = chain();
        let mut c = Collector::new(&t, CollectorConfig::default());
        let fa = FiveTuple::new(0x0a000001, 0x14000001, 1000, 80, Proto::TCP);
        let fb = FiveTuple::new(0x0b000002, 0x14000001, 2000, 80, Proto::TCP);
        let ma = PacketMeta { ipid: 0, flow: fa };
        let mb = PacketMeta { ipid: 0, flow: fb };
        c.record_source(100, &ma);
        c.record_source(105, &mb);
        c.record_rx(NfId(0), 150, &[ma, mb]);
        c.record_tx(NfId(0), 180, Some(NfId(1)), &[ma, mb]);
        c.record_rx(NfId(1), 200, &[ma, mb]);
        c.record_tx(NfId(1), 250, None, &[ma, mb]);
        let r = reconstruct(&t, &c.into_bundle(), &ReconstructionConfig::default());
        // Order channel: first-in is first; flows must not be swapped.
        assert_eq!(r.report.flow_mismatches, 0);
        assert_eq!(r.traces[0].flow, fa);
        assert_eq!(r.traces[1].flow, fb);
        assert_eq!(r.report.delivered, 2);
    }
}
