//! Emission schedules: composable plans of when which flow sends a packet.

use nf_types::{FiveTuple, Nanos, Packet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One planned packet emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledPacket {
    /// Emission time at the traffic source.
    pub at: Nanos,
    /// Flow the packet belongs to.
    pub flow: FiveTuple,
    /// Wire size in bytes.
    pub size: u16,
}

/// A time-sorted emission plan.
///
/// Schedules from different generators are merged with [`Schedule::merge`]
/// and only converted into concrete packets (ids, IPIDs) at the very end via
/// [`Schedule::finalize`], so composition never has to worry about id spaces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schedule {
    packets: Vec<ScheduledPacket>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from raw entries (sorts them).
    pub fn from_entries(mut packets: Vec<ScheduledPacket>) -> Self {
        packets.sort_by_key(|p| p.at);
        Self { packets }
    }

    /// Appends one entry (keeps the schedule sorted lazily — sorting happens
    /// on merge/finalize).
    pub fn push(&mut self, at: Nanos, flow: FiveTuple, size: u16) {
        self.packets.push(ScheduledPacket { at, flow, size });
    }

    /// Number of planned packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The planned entries in time order.
    pub fn entries(&self) -> Vec<ScheduledPacket> {
        let mut v = self.packets.clone();
        v.sort_by_key(|p| p.at);
        v
    }

    /// Merges any number of schedules into one.
    pub fn merge(parts: impl IntoIterator<Item = Schedule>) -> Schedule {
        let mut packets: Vec<ScheduledPacket> = parts.into_iter().flat_map(|s| s.packets).collect();
        packets.sort_by_key(|p| p.at);
        Schedule { packets }
    }

    /// Converts the plan into concrete packets.
    ///
    /// Ids are assigned in emission order starting at `first_id`. IPIDs are
    /// modelled the way end hosts set them: a per-source-host 16-bit counter,
    /// so packets from the same host get consecutive IPIDs and different
    /// hosts collide freely — the regime §5's disambiguation must handle.
    pub fn finalize(&self, first_id: u64) -> Vec<Packet> {
        let mut entries = self.packets.clone();
        entries.sort_by_key(|p| p.at);
        let mut ipid_counters: HashMap<u32, u16> = HashMap::new();
        let mut out = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let ctr = ipid_counters.entry(e.flow.src_ip).or_insert(0);
            let ipid = *ctr;
            *ctr = ctr.wrapping_add(1);
            out.push(Packet::with_ipid(
                first_id + i as u64,
                e.flow,
                ipid,
                e.size,
                e.at,
            ));
        }
        out
    }

    /// The time of the last planned emission, if any.
    pub fn end_time(&self) -> Option<Nanos> {
        self.packets.iter().map(|p| p.at).max()
    }

    /// Average packet rate in packets/second over `[0, end_time]`.
    pub fn mean_rate_pps(&self) -> f64 {
        match self.end_time() {
            Some(end) if end > 0 => self.packets.len() as f64 / (end as f64 / 1e9),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::Proto;

    fn flow(src_ip: u32) -> FiveTuple {
        FiveTuple::new(src_ip, 0x20000001, 1000, 80, Proto::TCP)
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = Schedule::new();
        a.push(300, flow(1), 64);
        a.push(100, flow(1), 64);
        let mut b = Schedule::new();
        b.push(200, flow(2), 64);
        let m = Schedule::merge([a, b]);
        let times: Vec<Nanos> = m.entries().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn finalize_assigns_sequential_ids_in_time_order() {
        let mut s = Schedule::new();
        s.push(500, flow(1), 64);
        s.push(100, flow(1), 64);
        let pkts = s.finalize(10);
        assert_eq!(pkts[0].id.0, 10);
        assert_eq!(pkts[0].created_at, 100);
        assert_eq!(pkts[1].id.0, 11);
        assert_eq!(pkts[1].created_at, 500);
    }

    #[test]
    fn ipids_count_per_source_host() {
        let mut s = Schedule::new();
        s.push(0, flow(1), 64);
        s.push(1, flow(2), 64);
        s.push(2, flow(1), 64);
        s.push(3, flow(2), 64);
        let pkts = s.finalize(0);
        // Host 1's packets: ipid 0 then 1; host 2 likewise — collisions!
        assert_eq!(pkts[0].ipid, 0);
        assert_eq!(pkts[1].ipid, 0);
        assert_eq!(pkts[2].ipid, 1);
        assert_eq!(pkts[3].ipid, 1);
    }

    #[test]
    fn mean_rate() {
        let mut s = Schedule::new();
        for i in 0..1000u64 {
            s.push(i * 1000, flow(1), 64); // 1 packet per µs = 1 Mpps
        }
        let r = s.mean_rate_pps();
        assert!((r - 1_001_001.0).abs() < 2_000.0, "rate {r}"); // n/(n-1) edge
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.end_time(), None);
        assert_eq!(s.mean_rate_pps(), 0.0);
        assert!(s.finalize(0).is_empty());
    }
}
