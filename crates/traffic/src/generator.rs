//! Workload generators: CAIDA-like background traffic and injectable
//! anomalies.

use crate::distributions::{Exponential, Pareto, Zipf};
use crate::schedule::Schedule;
use nf_types::{FiveTuple, Nanos, Proto};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the CAIDA-like background traffic.
///
/// Defaults approximate the paper's evaluation workload: 1.2 Mpps aggregate
/// of 64-byte packets, thousands of concurrent flows with heavy-tailed sizes.
#[derive(Debug, Clone)]
pub struct CaidaLikeConfig {
    /// Aggregate packet rate in packets/second.
    pub rate_pps: f64,
    /// Number of simultaneously active flow slots.
    pub active_flows: usize,
    /// Zipf exponent of flow-slot popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Pareto shape for flow sizes in packets (smaller = heavier tail).
    pub flow_size_alpha: f64,
    /// Pareto scale: minimum flow size in packets.
    pub flow_size_min: f64,
    /// Packet size in bytes (the paper uses 64).
    pub packet_size: u16,
    /// Number of distinct source /24 networks flows are drawn from.
    pub src_networks: u32,
    /// Number of distinct destination /24 networks.
    pub dst_networks: u32,
    /// Probability that a flow emission is a back-to-back clump (a TCP
    /// window's worth of packets) instead of a single packet. Real CAIDA
    /// traces are strongly bursty at the flow level; §6.5 of the paper
    /// observes that "some flows are more likely to form bursts and lead to
    /// problems".
    pub clump_prob: f64,
    /// Maximum clump size in packets (uniform 2..=max when clumping).
    pub clump_max: u64,
    /// Intra-clump packet gap in nanoseconds (near line rate).
    pub clump_gap_ns: Nanos,
}

impl Default for CaidaLikeConfig {
    fn default() -> Self {
        Self {
            rate_pps: 1_200_000.0,
            active_flows: 2048,
            zipf_exponent: 1.0,
            flow_size_alpha: 1.3,
            flow_size_min: 8.0,
            packet_size: 64,
            src_networks: 256,
            dst_networks: 256,
            clump_prob: 0.04,
            clump_max: 48,
            clump_gap_ns: 300,
        }
    }
}

/// Deterministic CAIDA-like traffic generator.
///
/// Aggregate arrivals are Poisson at `rate_pps`; each arrival is charged to a
/// flow slot drawn from a Zipf popularity distribution; each slot holds a
/// five-tuple flow with a Pareto-distributed remaining budget and re-keys to
/// a fresh flow when the budget is exhausted (flow churn). The result has the
/// three properties the evaluation leans on: constant average rate,
/// fine-timescale burstiness, and a skewed flow mix.
pub struct CaidaLike {
    cfg: CaidaLikeConfig,
    rng: StdRng,
    zipf: Zipf,
    gap: Exponential,
    sizes: Pareto,
    slots: Vec<SlotState>,
    next_ephemeral: u16,
}

struct SlotState {
    flow: FiveTuple,
    remaining: u64,
}

impl CaidaLike {
    /// Creates a generator with the given seed.
    pub fn new(cfg: CaidaLikeConfig, seed: u64) -> Self {
        assert!(cfg.rate_pps > 0.0, "rate must be positive");
        assert!(cfg.active_flows > 0, "need at least one flow slot");
        assert!((0.0..1.0).contains(&cfg.clump_prob), "clump_prob in [0,1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(cfg.active_flows, cfg.zipf_exponent);
        // Emission opportunities arrive Poisson; each yields one packet or
        // a clump, so scale the opportunity rate down by the expected
        // packets per opportunity to hold the aggregate rate at target.
        let mean_clump = 1.0 + (cfg.clump_max.max(2) as f64) / 2.0;
        let packets_per_opp = (1.0 - cfg.clump_prob) + cfg.clump_prob * mean_clump;
        let gap = Exponential::new(cfg.rate_pps / packets_per_opp / 1e9); // events per ns
        let sizes = Pareto::new(cfg.flow_size_min, cfg.flow_size_alpha);
        let mut next_ephemeral = 1024;
        let slots = (0..cfg.active_flows)
            .map(|_| SlotState {
                flow: random_flow(&cfg, &mut rng, &mut next_ephemeral),
                remaining: sizes.sample(&mut rng).ceil() as u64,
            })
            .collect();
        Self {
            cfg,
            rng,
            zipf,
            gap,
            sizes,
            slots,
            next_ephemeral,
        }
    }

    /// Generates traffic for `[start, start+duration)`.
    pub fn generate(&mut self, start: Nanos, duration: Nanos) -> Schedule {
        let mut sched = Schedule::new();
        let mut t = start as f64;
        let end = (start + duration) as f64;
        loop {
            t += self.gap.sample(&mut self.rng);
            if t >= end {
                break;
            }
            let slot_idx = self.zipf.sample(&mut self.rng);
            let clump = if self.cfg.clump_prob > 0.0 && self.rng.gen_bool(self.cfg.clump_prob) {
                self.rng.gen_range(2..=self.cfg.clump_max.max(2))
            } else {
                1
            };
            let slot = &mut self.slots[slot_idx];
            // A clump may run past the flow's remaining budget (the flow
            // simply ends afterwards): truncating instead would bias the
            // aggregate rate below target.
            let n = clump;
            for i in 0..n {
                sched.push(
                    t as Nanos + i * self.cfg.clump_gap_ns,
                    slot.flow,
                    self.cfg.packet_size,
                );
            }
            slot.remaining = slot.remaining.saturating_sub(n);
            if slot.remaining == 0 {
                slot.flow = random_flow(&self.cfg, &mut self.rng, &mut self.next_ephemeral);
                slot.remaining = self.sizes.sample(&mut self.rng).ceil() as u64;
            }
        }
        sched
    }

    /// A snapshot of the currently active flows (useful to pick burst
    /// victims from live traffic, as the paper does: "we randomly select 5
    /// five-tuple flows").
    pub fn active_flows(&self) -> Vec<FiveTuple> {
        self.slots.iter().map(|s| s.flow).collect()
    }
}

fn random_flow(cfg: &CaidaLikeConfig, rng: &mut StdRng, next_ephemeral: &mut u16) -> FiveTuple {
    // Addresses: pick a /24 network and a host inside it. Networks are laid
    // out under 10.0.0.0/8 (sources) and 20.0.0.0/8 (destinations).
    let src_net: u32 = rng.gen_range(0..cfg.src_networks);
    let dst_net: u32 = rng.gen_range(0..cfg.dst_networks);
    let src_ip = (10 << 24) | (src_net << 8) | rng.gen_range(1..255);
    let dst_ip = (20 << 24) | (dst_net << 8) | rng.gen_range(1..255);
    let src_port = {
        let p = *next_ephemeral;
        *next_ephemeral = next_ephemeral.checked_add(1).unwrap_or(1024).max(1024);
        p
    };
    const SERVICES: [u16; 7] = [80, 443, 53, 22, 8080, 25, 993];
    let dst_port = SERVICES[rng.gen_range(0..SERVICES.len())];
    let proto = if rng.gen_bool(0.85) {
        Proto::TCP
    } else {
        Proto::UDP
    };
    FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto)
}

/// A line-rate traffic burst: `count` packets of `size` bytes from `flow`,
/// spaced `gap_ns` apart starting at `start`.
///
/// This reproduces the paper's injected bursts (§6.2: 500–2500 packets).
pub fn burst(flow: FiveTuple, start: Nanos, count: u64, gap_ns: Nanos, size: u16) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..count {
        s.push(start + i * gap_ns, flow, size);
    }
    s
}

/// A constant-rate flow from `start` (inclusive) to `end` (exclusive) at
/// `rate_pps` — the paper's "flow A" probes and fixed-rate feeds (Fig. 2/3).
pub fn cbr(flow: FiveTuple, start: Nanos, end: Nanos, rate_pps: f64, size: u16) -> Schedule {
    assert!(rate_pps > 0.0, "rate must be positive");
    let gap = (1e9 / rate_pps) as Nanos;
    let mut s = Schedule::new();
    let mut t = start;
    while t < end {
        s.push(t, flow, size);
        t += gap.max(1);
    }
    s
}

/// Intermittent short flows (the §6.4 bug-trigger pattern): every `period`,
/// one of the `flows` (round-robin) sends `flow_size` packets back-to-back at
/// `burst_gap_ns` spacing.
pub fn intermittent_flows(
    flows: &[FiveTuple],
    start: Nanos,
    end: Nanos,
    period: Nanos,
    flow_size: u64,
    burst_gap_ns: Nanos,
    size: u16,
) -> Schedule {
    assert!(!flows.is_empty(), "need at least one flow");
    assert!(period > 0, "period must be positive");
    let mut parts = Vec::new();
    let mut t = start;
    let mut i = 0usize;
    while t < end {
        parts.push(burst(
            flows[i % flows.len()],
            t,
            flow_size,
            burst_gap_ns,
            size,
        ));
        i += 1;
        t += period;
    }
    Schedule::merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::new(0x64000001, 0x20000001, 2004, 6004, Proto::TCP)
    }

    #[test]
    fn caida_like_hits_target_rate() {
        let cfg = CaidaLikeConfig {
            rate_pps: 1_200_000.0,
            ..Default::default()
        };
        let mut g = CaidaLike::new(cfg, 7);
        let s = g.generate(0, 40 * nf_types::MILLIS);
        // Expect ~48000 packets in 40 ms; clumping widens the variance, so
        // allow ~5%.
        let n = s.len() as f64;
        assert!((n - 48_000.0).abs() < 2_400.0, "n = {n}");
    }

    #[test]
    fn caida_like_is_deterministic() {
        let mk = || {
            let mut g = CaidaLike::new(CaidaLikeConfig::default(), 99);
            g.generate(0, nf_types::MILLIS).entries()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn caida_like_seeds_differ() {
        let mk = |seed| {
            let mut g = CaidaLike::new(CaidaLikeConfig::default(), seed);
            g.generate(0, nf_types::MILLIS).entries()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn caida_like_has_many_flows_with_skew() {
        let mut g = CaidaLike::new(CaidaLikeConfig::default(), 3);
        let s = g.generate(0, 5 * nf_types::MILLIS);
        let mut counts = std::collections::HashMap::new();
        for e in s.entries() {
            *counts.entry(e.flow).or_insert(0usize) += 1;
        }
        assert!(counts.len() > 200, "only {} flows", counts.len());
        let max = counts.values().max().unwrap();
        let mean = s.len() / counts.len();
        assert!(*max > 5 * mean, "max {max} mean {mean} — no skew?");
    }

    #[test]
    fn burst_is_back_to_back() {
        let s = burst(flow(), 1000, 5, 20, 64);
        let e = s.entries();
        assert_eq!(e.len(), 5);
        assert_eq!(e[0].at, 1000);
        assert_eq!(e[4].at, 1080);
        assert!(e.iter().all(|p| p.flow == flow()));
    }

    #[test]
    fn cbr_rate() {
        let s = cbr(flow(), 0, nf_types::MILLIS, 100_000.0, 64);
        // 100 kpps for 1 ms = 100 packets.
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn cbr_respects_window() {
        let s = cbr(flow(), 500, 1000, 1e9, 64);
        for e in s.entries() {
            assert!(e.at >= 500 && e.at < 1000);
        }
    }

    #[test]
    fn intermittent_flows_round_robin() {
        let f1 = flow();
        let mut f2 = flow();
        f2.src_port = 2005;
        let s = intermittent_flows(&[f1, f2], 0, 4000, 1000, 3, 10, 64);
        let e = s.entries();
        assert_eq!(e.len(), 12); // 4 bursts × 3 packets
        assert_eq!(e[0].flow, f1);
        assert_eq!(e[3].flow, f2);
        assert_eq!(e[6].flow, f1);
    }
}
