//! Synthetic workload generation for the Microscope reproduction.
//!
//! The paper replays CAIDA traces with MoonGen. We do not have CAIDA data, so
//! this crate synthesises traffic with the properties the evaluation actually
//! depends on (DESIGN.md §1):
//!
//! * many concurrent five-tuple flows with heavy-tailed (Pareto) sizes and
//!   skewed (Zipf) address popularity — [`CaidaLike`];
//! * a controlled aggregate packet rate (the paper runs 1.2 and 1.6 Mpps of
//!   64-byte packets);
//! * deterministic replay from a seed, so experiments are reproducible;
//! * injectable anomalies: line-rate bursts ([`burst`]), constant-rate probe
//!   flows ([`cbr`]) and intermittent bug-trigger flows
//!   ([`intermittent_flows`]).
//!
//! A [`Schedule`] is an emission plan: a time-sorted list of (time, flow,
//! size) entries. Schedules compose with [`Schedule::merge`] and turn into
//! concrete [`nf_types::Packet`]s (with unique ids and realistic colliding IPIDs) via
//! [`Schedule::finalize`].

#![forbid(unsafe_code)]

pub mod distributions;
pub mod generator;
pub mod schedule;

pub use distributions::{Exponential, Pareto, Zipf};
pub use generator::{burst, cbr, intermittent_flows, CaidaLike, CaidaLikeConfig};
pub use schedule::{Schedule, ScheduledPacket};
