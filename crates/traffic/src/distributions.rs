//! Small, self-contained samplers for the distributions the workload model
//! needs.
//!
//! `rand` ships uniform sampling; the heavy-tailed and skewed distributions
//! (Pareto flow sizes, Zipf address popularity, exponential inter-arrivals)
//! live in `rand_distr`, which is not on the approved dependency list — so we
//! implement the three samplers directly. All use inverse-transform sampling
//! and are deterministic given the RNG.

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson inter-arrival gaps of the background traffic.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution. Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive"
        );
        Self { lambda }
    }

    /// From the mean instead of the rate.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: -ln(U)/λ with U in (0,1].
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.lambda
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Pareto (type I) distribution: `P(X > x) = (xm/x)^alpha` for `x >= xm`.
///
/// Used for flow sizes: most flows are mice, a few are elephants — the shape
/// that makes some flow aggregates dominate queue build-ups (§6.5 of the
/// paper observes exactly this).
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates the distribution. Panics unless both parameters are positive.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && xm.is_finite(), "xm must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        Self { xm, alpha }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.xm / u.powf(1.0 / self.alpha)
    }

    /// The scale (minimum) parameter.
    pub fn min(&self) -> f64 {
        self.xm
    }

    /// The mean, infinite when `alpha <= 1`.
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1/(k+1)^s`.
///
/// Used for flow-slot popularity (which flows the next packet belongs to),
/// giving the skewed flow mix of real traces. Sampling is O(log n) via a
/// precomputed CDF table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `n` ranks. Panics if `n == 0` or `s`
    /// is negative/non-finite (`s == 0` degenerates to uniform, allowed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // `new` guarantees n > 0; kept for API symmetry with clippy.
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(250.0);
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(3.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(50.0, 1.3);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 50.0);
        }
    }

    #[test]
    fn pareto_mean_converges_when_finite() {
        let d = Pareto::new(10.0, 3.0); // mean = 15
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn pareto_infinite_mean_flagged() {
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn zipf_is_skewed() {
        let d = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[d.sample(&mut r)] += 1;
        }
        // Rank 0 should be roughly 10x more popular than rank 9 under s=1...
        // (1/1)/(1/10) = 10. Allow generous slack.
        assert!(counts[0] > 5 * counts[9], "{} vs {}", counts[0], counts[9]);
        // Every rank reachable in principle; at least the head is hit.
        assert!(counts[99] < counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let d = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let d = Zipf::new(3, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) < 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Pareto::new(1.0, 1.5);
        let a: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
