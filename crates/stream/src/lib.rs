//! Streaming diagnosis engine.
//!
//! The offline pipeline loads a whole collector bundle, reconstructs every
//! trace, then diagnoses. [`StreamEngine`] consumes the same records as a
//! stream of time-ordered [`msc_collector::BundleChunk`]s instead:
//!
//! * **Windowed reconstruction** — each chunk advances the watermark of a
//!   [`msc_trace::WindowedReconstructor`], which matches, walks and commits
//!   every trace the new watermark proves stable and evicts the consumed
//!   frontier, so peak memory is bounded by the in-flight window rather
//!   than the run length.
//! * **Rolling period tracking** — the per-read drain bit folds into a
//!   [`microscope::PeriodTracker`] for live congestion stats.
//! * **Optional skew tracking** — with [`StreamConfig::skew`] set, a
//!   [`msc_trace::SkewTracker`] re-estimates clock offsets per chunk and
//!   corrects timestamps before ingestion, carrying the last-known offset
//!   across quiet windows (and saying so in [`StreamEngine::skew_notes`]).
//!
//! With skew correction off (the default), the streamed reconstruction,
//! timelines, and diagnoses are **bit-identical** to the offline pipeline
//! on the concatenated bundle — the offline path stays the oracle, and the
//! equivalence suite diffs the two. The only intentional difference is
//! `Reconstruction::streams`, which streaming leaves empty (nothing
//! downstream of timeline construction reads it). Skew mode is *not*
//! bit-identical: offsets are estimated per window, not over the full run.

#![forbid(unsafe_code)]

use microscope::{CacheStats, Diagnosis, DiagnosisConfig, Microscope, PeriodTracker};
use msc_collector::BundleChunk;
use msc_trace::{
    correct_bundle, MatchConfig, Reconstruction, ReconstructionReport, SkewConfig, SkewTracker,
    StreamError, Timelines, WindowedReconstructor,
};
use nf_types::{Nanos, Topology, MILLIS};

/// Configuration for a [`StreamEngine`].
#[derive(Debug, Clone, Default)]
pub struct StreamConfig {
    /// Matcher configuration (delay bound, lookahead, order channel...);
    /// must equal the offline run's for bit-identity.
    pub matching: MatchConfig,
    /// Enable per-window clock-offset estimation and correction. `None`
    /// (default) trusts the timestamps and keeps bit-identity.
    pub skew: Option<SkewConfig>,
    /// With skew on, the watermark lags each chunk boundary by this guard
    /// so records whose *corrected* timestamps land below the boundary are
    /// still undecided when they arrive. Must cover the largest plausible
    /// offset magnitude; 0 means use the 5 ms default.
    pub skew_guard_ns: Nanos,
}

/// Everything the finished stream yields.
pub struct StreamOutcome {
    /// The reconstruction (identical to offline except `streams` is empty).
    pub recon: Reconstruction,
    /// Per-NF timelines (identical to offline).
    pub timelines: Timelines,
    /// Diagnoses from the period-keyed engine (identical to offline).
    pub diagnoses: Vec<Diagnosis>,
    /// Step-cache statistics from the diagnosis pass.
    pub cache_stats: CacheStats,
    /// Skew fallback notes (empty when skew tracking was off or every
    /// window produced a fresh estimate).
    pub skew_notes: Vec<String>,
}

/// Incremental diagnosis engine over a stream of collector chunks.
pub struct StreamEngine {
    topology: Topology,
    recon: WindowedReconstructor,
    periods: PeriodTracker,
    skew: Option<SkewTracker>,
    skew_guard_ns: Nanos,
    // Per-NF (rx, tx, flows) clamp floors: window-to-window jitter in the
    // skew estimate may shift a later chunk slightly below the previous
    // chunk's corrected timestamps, and the matcher's binary searches need
    // each log to stay nondecreasing.
    skew_floors: Vec<(Nanos, Nanos, Nanos)>,
    chunks: u64,
    working_set_peak: usize,
}

impl StreamEngine {
    /// An engine expecting chunks recorded on `topology`.
    pub fn new(topology: &Topology, cfg: StreamConfig) -> Self {
        let guard = if cfg.skew_guard_ns == 0 {
            5 * MILLIS
        } else {
            cfg.skew_guard_ns
        };
        Self {
            topology: topology.clone(),
            recon: WindowedReconstructor::new(topology, cfg.matching),
            periods: PeriodTracker::new(topology.len()),
            skew: cfg.skew.map(|sc| SkewTracker::new(topology.len(), sc)),
            skew_guard_ns: guard,
            skew_floors: vec![(0, 0, 0); topology.len()],
            chunks: 0,
            working_set_peak: 0,
        }
    }

    /// Consumes one chunk: updates skew offsets (if enabled), feeds the
    /// rolling period tracker, and advances the reconstruction watermark.
    pub fn push_chunk(&mut self, chunk: &BundleChunk) -> Result<(), StreamError> {
        if chunk.bundle.logs.len() != self.topology.len() {
            return Err(StreamError::TopologyMismatch {
                expected: self.topology.len(),
                got: chunk.bundle.logs.len(),
            });
        }
        let has_records = !chunk.bundle.source_flows.is_empty()
            || chunk
                .bundle
                .logs
                .iter()
                .any(|l| !l.rx.is_empty() || !l.tx.is_empty());
        if let Some(tracker) = &mut self.skew {
            // A record-free chunk carries no skew information: advance the
            // watermark without charging the tracker a missed window.
            let offsets = if has_records {
                tracker.observe(&self.topology, &chunk.bundle).to_vec()
            } else {
                tracker.offsets().to_vec()
            };
            let mut corrected = correct_bundle(&chunk.bundle, &offsets);
            self.clamp_monotone(&mut corrected);
            self.track_reads(&corrected);
            // Corrected timestamps can land up to one offset magnitude
            // below the chunk boundary; lag the watermark so they are
            // still undecided when they arrive.
            self.recon
                .ingest(&corrected, chunk.until.saturating_sub(self.skew_guard_ns))?;
        } else {
            self.track_reads(&chunk.bundle);
            self.recon.ingest_chunk(chunk)?;
        }
        self.chunks += 1;
        self.working_set_peak = self.working_set_peak.max(self.recon.working_set());
        Ok(())
    }

    fn clamp_monotone(&mut self, bundle: &mut msc_collector::TraceBundle) {
        for log in &mut bundle.logs {
            let floors = &mut self.skew_floors[log.nf.0 as usize];
            for r in &mut log.rx {
                r.ts = r.ts.max(floors.0);
                floors.0 = r.ts;
            }
            for t in &mut log.tx {
                t.ts = t.ts.max(floors.1);
                floors.1 = t.ts;
            }
            for f in &mut log.flows {
                f.ts = f.ts.max(floors.2);
                floors.2 = f.ts;
            }
        }
    }

    fn track_reads(&mut self, bundle: &msc_collector::TraceBundle) {
        for log in &bundle.logs {
            for r in &log.rx {
                self.periods.on_read(log.nf, r.ts, r.drained_queue());
            }
        }
    }

    /// Rolling queuing-period stats.
    pub fn periods(&self) -> &PeriodTracker {
        &self.periods
    }

    /// Reconstruction counters so far (totals settle at [`finish`]).
    ///
    /// [`finish`]: StreamEngine::finish
    pub fn report(&self) -> &ReconstructionReport {
        self.recon.report()
    }

    /// Traces committed so far.
    pub fn committed(&self) -> usize {
        self.recon.committed()
    }

    /// Chunks consumed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Approximate bytes held by the evictable frontier right now.
    pub fn working_set(&self) -> usize {
        self.recon.working_set()
    }

    /// Largest frontier observed at any chunk boundary — the quantity that
    /// must stay O(window) regardless of run length.
    pub fn working_set_peak(&self) -> usize {
        self.working_set_peak
    }

    /// Skew fallback notes accumulated so far (empty when skew is off).
    pub fn skew_notes(&self) -> Vec<String> {
        self.skew
            .as_ref()
            .map(|t| t.notes(&self.topology))
            .unwrap_or_default()
    }

    /// Drains everything still in flight and returns the reconstruction
    /// and timelines (bit-identical to offline when skew is off).
    pub fn finish(self) -> (Reconstruction, Timelines) {
        self.recon.finish()
    }

    /// [`finish`], then the full diagnosis pass — same period-keyed
    /// [`microscope::DiagnosisCache`] reuse as the offline engine, so the
    /// diagnoses match offline byte for byte.
    ///
    /// [`finish`]: StreamEngine::finish
    pub fn finish_and_diagnose(self, peak_rates: Vec<f64>, dcfg: DiagnosisConfig) -> StreamOutcome {
        let topology = self.topology.clone();
        let skew_notes = self.skew_notes();
        let (recon, timelines) = self.recon.finish();
        let engine = Microscope::new(topology, peak_rates, dcfg);
        let (diagnoses, cache_stats) = engine.diagnose_all_stats(&recon, &timelines);
        StreamOutcome {
            recon,
            timelines,
            diagnoses,
            cache_stats,
            skew_notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscope::LatencyThreshold;
    use msc_collector::chunk_bundle;
    use msc_trace::{reconstruct, ReconstructionConfig};
    use nf_sim::{paper_nf_configs, Fault, SimConfig, Simulation};
    use nf_traffic::{CaidaLike, CaidaLikeConfig};
    use nf_types::{paper_topology, NfId, MICROS};

    fn paper_run(seed: u64, millis: u64) -> (Topology, Vec<f64>, msc_collector::TraceBundle) {
        let topology = paper_topology();
        let cfgs = paper_nf_configs(&topology);
        let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
        let mut sim = Simulation::new(
            topology.clone(),
            cfgs,
            SimConfig {
                seed,
                record_fates: false,
                ..Default::default()
            },
        );
        sim.add_fault(Fault::Interrupt {
            nf: topology.by_name("nat2").expect("paper topology has nat2"),
            at: millis / 2 * MILLIS,
            duration: 600 * MICROS,
        });
        let mut gen = CaidaLike::new(
            CaidaLikeConfig {
                rate_pps: 1.0e6,
                ..Default::default()
            },
            seed,
        );
        let packets = gen.generate(0, millis * MILLIS).finalize(0);
        (topology, rates, sim.run(&packets).bundle)
    }

    fn dcfg() -> DiagnosisConfig {
        let mut dc = DiagnosisConfig::default();
        dc.victims.latency = LatencyThreshold::Quantile(0.99);
        dc.victims.max_victims = Some(500);
        dc
    }

    #[test]
    fn streamed_diagnosis_matches_offline() {
        let (topology, rates, bundle) = paper_run(11, 30);
        let offline = reconstruct(&topology, &bundle, &ReconstructionConfig::default());
        let off_tl = Timelines::build(&offline);
        let off_engine = Microscope::new(topology.clone(), rates.clone(), dcfg());
        let (off_diag, _) = off_engine.diagnose_all_stats(&offline, &off_tl);

        for chunk_ms in [7, 25] {
            let mut engine = StreamEngine::new(&topology, StreamConfig::default());
            for chunk in chunk_bundle(&bundle, chunk_ms * MILLIS) {
                engine.push_chunk(&chunk).expect("chunk fits topology");
            }
            assert!(engine.chunks() > 0);
            assert!(engine.committed() <= offline.traces.len());
            let out = engine.finish_and_diagnose(rates.clone(), dcfg());
            assert_eq!(out.recon.traces, offline.traces, "chunk_ms={chunk_ms}");
            assert_eq!(out.recon.report, offline.report, "chunk_ms={chunk_ms}");
            assert_eq!(out.timelines, off_tl, "chunk_ms={chunk_ms}");
            assert_eq!(out.diagnoses, off_diag, "chunk_ms={chunk_ms}");
            assert!(out.skew_notes.is_empty());
        }
    }

    #[test]
    fn period_tracker_sees_the_interrupt_congestion() {
        let (topology, _, bundle) = paper_run(5, 30);
        let mut engine = StreamEngine::new(&topology, StreamConfig::default());
        for chunk in chunk_bundle(&bundle, 5 * MILLIS) {
            engine.push_chunk(&chunk).expect("chunk fits topology");
        }
        // The interrupt at nat2 must have produced at least one closed
        // queuing period somewhere, and the longest must be visible.
        assert!(engine.periods().closed_periods() > 0);
        assert!(engine.periods().longest_ns() > 0);
        let nat2 = topology.by_name("nat2").expect("nat2 exists");
        assert!(engine.periods().nf(nat2).last_read.is_some());
    }

    #[test]
    fn working_set_peak_is_monotone_and_bounded() {
        let (topology, _, bundle) = paper_run(7, 20);
        let mut engine = StreamEngine::new(&topology, StreamConfig::default());
        let mut prev_peak = 0;
        for chunk in chunk_bundle(&bundle, 4 * MILLIS) {
            engine.push_chunk(&chunk).expect("chunk fits topology");
            assert!(engine.working_set_peak() >= prev_peak);
            assert!(engine.working_set_peak() >= engine.working_set());
            prev_peak = engine.working_set_peak();
        }
        assert!(prev_peak > 0);
    }

    #[test]
    fn topology_mismatch_is_reported() {
        let (topology, _, bundle) = paper_run(3, 5);
        let wrong = {
            let mut sb = nf_sim::ScenarioBuilder::new();
            let a = sb.nf(nf_types::NfKind::Nat, "only");
            sb.entry(a);
            sb.build().0
        };
        let mut engine = StreamEngine::new(&wrong, StreamConfig::default());
        let chunks = chunk_bundle(&bundle, 5 * MILLIS);
        assert!(matches!(
            engine.push_chunk(&chunks[0]),
            Err(StreamError::TopologyMismatch { .. })
        ));
        let _ = topology;
    }

    #[test]
    fn skew_mode_corrects_offsets_and_reports_fallbacks() {
        let topology = paper_topology();
        let cfgs = paper_nf_configs(&topology);
        let rates: Vec<f64> = cfgs.iter().map(|c| c.service.peak_rate_pps()).collect();
        let offsets: Vec<i64> = (0..topology.len() as i64)
            .map(|i| (i % 5 - 2) * 1_000_000)
            .collect();
        let mut sim = Simulation::new(
            topology.clone(),
            cfgs,
            SimConfig {
                seed: 9,
                record_fates: false,
                clock_offsets_ns: offsets,
                ..Default::default()
            },
        );
        let mut gen = CaidaLike::new(
            CaidaLikeConfig {
                rate_pps: 1.0e6,
                ..Default::default()
            },
            9,
        );
        let packets = gen.generate(0, 30 * MILLIS).finalize(0);
        let bundle = sim.run(&packets).bundle;

        let cfg = StreamConfig {
            matching: MatchConfig {
                negative_slack_ns: 20 * MICROS,
                ..Default::default()
            },
            skew: Some(SkewConfig::default()),
            ..Default::default()
        };
        let mut engine = StreamEngine::new(&topology, cfg);
        for chunk in chunk_bundle(&bundle, 10 * MILLIS) {
            engine.push_chunk(&chunk).expect("chunk fits topology");
        }
        let out = engine.finish_and_diagnose(rates, dcfg());
        // With ±2 ms offsets and no correction the matcher would reject
        // nearly everything; corrected streaming must deliver the bulk.
        assert!(
            out.recon.report.delivered * 10 >= out.recon.report.total * 8,
            "delivered {} of {}",
            out.recon.report.delivered,
            out.recon.report.total
        );
        let _ = NfId(0);
    }
}
