//! The two-phase causal-pattern aggregation of §4.4.
//!
//! Input: packet-level causal relations
//! `<culprit flow?, culprit location> → <victim flow?, victim location>:
//! score`. Output: a short ranked list of [`Pattern`]s.
//!
//! Running AutoFocus over all twelve dimensions at once would be hopeless;
//! the paper's observation is that a culprit affects a limited set of
//! victims and vice versa, so the aggregation decouples: (1) group relations
//! by exact culprit and aggregate the *victim* side within each group;
//! (2) group the intermediate results by victim aggregate and aggregate the
//! *culprit* side across groups.

use crate::cluster::{aggregate_side, ClusterConfig, Location, SideAggregate, SideItem};
use nf_types::{FiveTuple, NfId, NfKind, PortRange};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One packet-level causal relation from the diagnosis core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CausalRelation {
    /// Culprit flow (None when the culprit is an NF-level event with no
    /// specific flow attached).
    pub culprit_flow: Option<FiveTuple>,
    /// Culprit location.
    pub culprit_loc: Location,
    /// Victim flow (None for victims whose flow could not be resolved).
    pub victim_flow: Option<FiveTuple>,
    /// Victim location.
    pub victim_loc: Location,
    /// Score mass (the paper's per-relation score; packets' worth of blame).
    pub score: f64,
}

/// One aggregated causal pattern: the Fig. 14 row format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// Culprit side.
    pub culprit: SideAggregate,
    /// Victim side.
    pub victim: SideAggregate,
    /// Total claimed score.
    pub score: f64,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} => {} {} : {:.1}",
            self.culprit.flow, self.culprit.loc, self.victim.flow, self.victim.loc, self.score
        )
    }
}

/// Pattern-aggregation parameters.
#[derive(Debug, Clone, Default)]
pub struct PatternConfig {
    /// Side-clustering parameters (threshold `th` etc.).
    pub cluster: ClusterConfig,
    /// Post-merge adjacent exact-port patterns into ranges (the adaptive
    /// port optimisation the paper suggests for Fig. 14).
    pub adaptive_ports: bool,
}

/// Exact culprit key for phase-1 grouping.
type CulpritKey = (Option<FiveTuple>, Location);

/// Runs the two-phase aggregation.
pub fn aggregate_patterns(
    relations: &[CausalRelation],
    cfg: &PatternConfig,
    kind_of: &impl Fn(NfId) -> NfKind,
) -> Vec<Pattern> {
    if relations.is_empty() {
        return Vec::new();
    }

    // Phase 1: per exact culprit, aggregate the victim side. Groups are
    // kept in first-seen order (side index map), NOT HashMap iteration
    // order: group order decides the phase-2 item order and therefore every
    // downstream float accumulation and tie ordering — iterating the map
    // directly would leak the per-process hasher seed into the output.
    let mut group_idx: HashMap<CulpritKey, usize> = HashMap::new();
    let mut groups: Vec<(CulpritKey, Vec<SideItem>)> = Vec::new();
    for r in relations {
        let key = (r.culprit_flow, r.culprit_loc);
        let i = *group_idx.entry(key).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[i].1.push(SideItem {
            flow: r.victim_flow,
            loc: r.victim_loc,
            weight: r.score,
        });
    }
    // Intermediate: (victim aggregate) -> culprit-side items, again in
    // first-seen order.
    let mut victim_idx: HashMap<SideAggregate, usize> = HashMap::new();
    let mut by_victim: Vec<(SideAggregate, Vec<SideItem>)> = Vec::new();
    for ((c_flow, c_loc), victims) in groups {
        let aggs = aggregate_side(&victims, &cfg.cluster, kind_of);
        for (victim_agg, weight) in aggs {
            let i = *victim_idx.entry(victim_agg).or_insert_with(|| {
                by_victim.push((victim_agg, Vec::new()));
                by_victim.len() - 1
            });
            by_victim[i].1.push(SideItem {
                flow: c_flow,
                loc: c_loc,
                weight,
            });
        }
    }

    // Phase 2: per victim aggregate, aggregate the culprit side. The
    // threshold is applied against the global score mass so tiny victim
    // groups don't spawn patterns.
    let total: f64 = relations.iter().map(|r| r.score).sum();
    let mut out: Vec<Pattern> = Vec::new();
    for (victim_agg, culprits) in by_victim {
        let group_total: f64 = culprits.iter().map(|c| c.weight).sum();
        // Scale the per-group threshold so that it corresponds to the
        // global `th * total` cut.
        let local_cfg = ClusterConfig {
            threshold: (cfg.cluster.threshold * total / group_total).min(1.0),
            ..cfg.cluster.clone()
        };
        for (culprit_agg, weight) in aggregate_side(&culprits, &local_cfg, kind_of) {
            if weight >= cfg.cluster.threshold * total {
                out.push(Pattern {
                    culprit: culprit_agg,
                    victim: victim_agg,
                    score: weight,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| (a.culprit, a.victim).cmp(&(b.culprit, b.victim)))
    });
    if cfg.adaptive_ports {
        out = merge_adjacent_port_patterns(out, 16);
    }
    out
}

/// Merges patterns that are identical except for nearby exact culprit port
/// values into single range patterns — e.g. the paper's bug-trigger flows
/// `sport 2000-2008 / dport 6000-6008`, which the static hierarchy reports
/// as nine separate rows.
pub fn merge_adjacent_port_patterns(patterns: Vec<Pattern>, max_gap: u16) -> Vec<Pattern> {
    // Group key: everything except the culprit ports.
    #[derive(PartialEq, Eq, Hash)]
    struct Key {
        c_src: nf_types::Prefix,
        c_dst: nf_types::Prefix,
        c_proto: nf_types::ProtoMatch,
        c_loc: crate::cluster::LocationAgg,
        victim: SideAggregate,
    }
    // First-seen group order (index map), for the same reason as in
    // aggregate_patterns: map iteration order would randomise the relative
    // order of equal-score merged patterns.
    let mut grouped_idx: HashMap<Key, usize> = HashMap::new();
    let mut grouped: Vec<Vec<Pattern>> = Vec::new();
    let mut passthrough: Vec<Pattern> = Vec::new();
    for p in patterns {
        if p.culprit.flow.src_port.is_exact() || p.culprit.flow.dst_port.is_exact() {
            let key = Key {
                c_src: p.culprit.flow.src,
                c_dst: p.culprit.flow.dst,
                c_proto: p.culprit.flow.proto,
                c_loc: p.culprit.loc,
                victim: p.victim,
            };
            let i = *grouped_idx.entry(key).or_insert_with(|| {
                grouped.push(Vec::new());
                grouped.len() - 1
            });
            grouped[i].push(p);
        } else {
            passthrough.push(p);
        }
    }

    for mut group in grouped {
        group.sort_by_key(|p| (p.culprit.flow.src_port.lo, p.culprit.flow.dst_port.lo));
        let mut merged: Vec<Pattern> = Vec::new();
        for p in group {
            match merged.last_mut() {
                Some(last)
                    if p.culprit.flow.src_port.lo
                        <= last.culprit.flow.src_port.hi.saturating_add(max_gap)
                        && p.culprit.flow.dst_port.lo
                            <= last.culprit.flow.dst_port.hi.saturating_add(max_gap) =>
                {
                    last.culprit.flow.src_port = PortRange::new(
                        last.culprit
                            .flow
                            .src_port
                            .lo
                            .min(p.culprit.flow.src_port.lo),
                        last.culprit
                            .flow
                            .src_port
                            .hi
                            .max(p.culprit.flow.src_port.hi),
                    );
                    last.culprit.flow.dst_port = PortRange::new(
                        last.culprit
                            .flow
                            .dst_port
                            .lo
                            .min(p.culprit.flow.dst_port.lo),
                        last.culprit
                            .flow
                            .dst_port
                            .hi
                            .max(p.culprit.flow.dst_port.hi),
                    );
                    last.score += p.score;
                }
                _ => merged.push(p),
            }
        }
        passthrough.extend(merged);
    }
    passthrough.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| (a.culprit, a.victim).cmp(&(b.culprit, b.victim)))
    });
    passthrough
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocationAgg;
    use nf_types::{parse_ip, Proto};

    fn kind_of(id: NfId) -> NfKind {
        match id.0 {
            0..=3 => NfKind::Nat,
            4..=8 => NfKind::Firewall,
            _ => NfKind::Vpn,
        }
    }

    fn bug_flow(sport: u16, dport: u16) -> FiveTuple {
        FiveTuple::new(
            parse_ip("100.0.0.1").unwrap(),
            parse_ip("32.0.0.1").unwrap(),
            sport,
            dport,
            Proto::TCP,
        )
    }

    fn victim_flow(i: u16) -> FiveTuple {
        FiveTuple::new(
            parse_ip("100.0.0.1").unwrap(),
            parse_ip("1.2.3.4").unwrap(),
            10_000 + i,
            443,
            Proto::TCP,
        )
    }

    /// The §6.4 scenario in miniature: bug-trigger flows at fw2 (NfId 5)
    /// hurt many victim flows at fw2.
    fn bug_relations() -> Vec<CausalRelation> {
        let mut rels = Vec::new();
        for k in 0..5u16 {
            for v in 0..20u16 {
                rels.push(CausalRelation {
                    culprit_flow: Some(bug_flow(2000 + k, 6000 + k)),
                    culprit_loc: Location::Nf(NfId(5)),
                    victim_flow: Some(victim_flow(v)),
                    victim_loc: Location::Nf(NfId(5)),
                    score: 3.0,
                });
            }
        }
        // Background noise.
        for v in 0..30u16 {
            rels.push(CausalRelation {
                culprit_flow: None,
                culprit_loc: Location::Source,
                victim_flow: Some(victim_flow(100 + v)),
                victim_loc: Location::Nf(NfId(9)),
                score: 0.2,
            });
        }
        rels
    }

    #[test]
    fn bug_trigger_flows_surface_as_top_patterns() {
        let pats = aggregate_patterns(&bug_relations(), &PatternConfig::default(), &kind_of);
        assert!(!pats.is_empty());
        // Top patterns blame the bug flows at fw2 (NfId 5).
        let top = &pats[0];
        assert_eq!(top.culprit.loc, LocationAgg::Exact(Location::Nf(NfId(5))));
        assert!(
            top.culprit.flow.matches(&bug_flow(2000, 6000))
                || top.culprit.flow.matches(&bug_flow(2004, 6004)),
            "top culprit {:?}",
            top.culprit.flow
        );
        // Aggregation is concise: 100 bug relations + 30 noise collapse to
        // a handful of patterns.
        assert!(pats.len() < 30, "{} patterns", pats.len());
    }

    #[test]
    fn scores_roughly_conserved() {
        let rels = bug_relations();
        let total: f64 = rels.iter().map(|r| r.score).sum();
        let pats = aggregate_patterns(&rels, &PatternConfig::default(), &kind_of);
        let sum: f64 = pats.iter().map(|p| p.score).sum();
        // Patterns below the global threshold are suppressed, so the sum can
        // be below the total, but most of the mass must be covered.
        assert!(sum <= total + 1e-6);
        assert!(sum > 0.8 * total, "covered {sum} of {total}");
    }

    #[test]
    fn adaptive_ports_merge_the_fig14_rows() {
        let cfg = PatternConfig {
            adaptive_ports: true,
            ..Default::default()
        };
        let pats = aggregate_patterns(&bug_relations(), &cfg, &kind_of);
        // The 5 per-port patterns merge into one ranged pattern.
        let ranged: Vec<&Pattern> = pats
            .iter()
            .filter(|p| {
                p.culprit.flow.src_port.covers(&PortRange::new(2000, 2004))
                    && p.culprit.flow.dst_port.covers(&PortRange::new(6000, 6004))
            })
            .collect();
        assert!(
            !ranged.is_empty(),
            "expected a merged port-range pattern: {pats:?}"
        );
    }

    #[test]
    fn merge_respects_gap() {
        let mk = |sport: u16, score: f64| Pattern {
            culprit: SideAggregate {
                flow: nf_types::FlowAggregate::exact(&bug_flow(sport, 6000)),
                loc: LocationAgg::Exact(Location::Nf(NfId(5))),
            },
            victim: SideAggregate {
                flow: nf_types::FlowAggregate::ANY,
                loc: LocationAgg::Any,
            },
            score,
        };
        // 2000 and 2004 merge (gap 16), 40000 does not.
        let merged =
            merge_adjacent_port_patterns(vec![mk(2000, 1.0), mk(2004, 1.0), mk(40_000, 1.0)], 16);
        assert_eq!(merged.len(), 2);
        let big = merged
            .iter()
            .find(|p| p.culprit.flow.src_port.contains(2000))
            .unwrap();
        assert!(big.culprit.flow.src_port.contains(2004));
        assert!((big.score - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_relations() {
        assert!(aggregate_patterns(&[], &PatternConfig::default(), &kind_of).is_empty());
    }

    #[test]
    fn pattern_display_is_fig14_like() {
        let p = Pattern {
            culprit: SideAggregate {
                flow: nf_types::FlowAggregate::exact(&bug_flow(2004, 6004)),
                loc: LocationAgg::Exact(Location::Nf(NfId(5))),
            },
            victim: SideAggregate {
                flow: nf_types::FlowAggregate::ANY,
                loc: LocationAgg::Exact(Location::Nf(NfId(5))),
            },
            score: 12.5,
        };
        let s = p.to_string();
        assert!(s.contains("100.0.0.1/32"));
        assert!(s.contains("=>"));
        assert!(s.contains("nf5"));
    }
}
