//! Exact one-dimensional hierarchical heavy hitters.
//!
//! Every dimension is a tree: each value has at most one parent, reached by
//! one generalisation step. The HHH of a weighted multiset of leaves are the
//! nodes whose weight — after *excluding* the weight already reported at
//! more specific descendants — reaches the threshold. Because each dimension
//! is a tree (not a lattice), a simple leaf-to-root roll-up computes this
//! exactly.

use std::collections::HashMap;
use std::hash::Hash;

/// Computes one-dimensional hierarchical heavy hitters.
///
/// * `items` — weighted exact values (duplicates allowed; weights add up).
/// * `parent` — one generalisation step; `None` at the root.
/// * `threshold` — absolute weight needed to report a node.
///
/// Returns `(value, residual_weight)` pairs, most specific first. The root
/// is always reported last with whatever weight remains unclaimed, so the
/// output always accounts for the full input weight.
pub fn hhh_1d<K, I, P>(items: I, parent: P, threshold: f64) -> Vec<(K, f64)>
where
    K: Eq + Hash + Ord + Clone,
    I: IntoIterator<Item = (K, f64)>,
    P: Fn(&K) -> Option<K>,
{
    // Accumulate exact weights.
    let mut weights: HashMap<K, f64> = HashMap::new();
    for (k, w) in items {
        *weights.entry(k).or_insert(0.0) += w;
    }
    if weights.is_empty() {
        return Vec::new();
    }

    // Depth of each key = number of generalisation steps to the root.
    let depth = |k: &K| -> usize {
        let mut d = 0;
        let mut cur = k.clone();
        while let Some(p) = parent(&cur) {
            d += 1;
            cur = p;
        }
        d
    };

    // Bucket keys by depth so every node is processed strictly before its
    // parent (parent depth = child depth − 1).
    let mut levels: std::collections::BTreeMap<usize, Vec<K>> = std::collections::BTreeMap::new();
    // lint: order-insensitive(keys are bucketed into the BTreeMap above and every level is sorted before use below)
    for k in weights.keys() {
        levels.entry(depth(k)).or_default().push(k.clone());
    }

    let mut out: Vec<(K, f64)> = Vec::new();
    while let Some((&d, _)) = levels.iter().next_back() {
        let mut keys = levels.remove(&d).expect("level exists");
        // The level was populated from HashMap iteration (and roll-up
        // insertion) order; sort so the output order and the float roll-up
        // accumulation are identical on every run.
        keys.sort_unstable();
        for k in keys {
            let w = weights[&k];
            match parent(&k) {
                Some(_) if w >= threshold => out.push((k, w)),
                Some(p) => {
                    // Roll the unreported weight up one level.
                    if !weights.contains_key(&p) {
                        levels.entry(d - 1).or_default().push(p.clone());
                        weights.insert(p.clone(), 0.0);
                    }
                    *weights.get_mut(&p).expect("just ensured") += w;
                }
                None => {
                    // Root: report the remainder (even below threshold) so
                    // weights are conserved.
                    if w > 0.0 {
                        out.push((k, w));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy hierarchy: integers, parent = n/10, root = 0.
    fn parent(n: &u32) -> Option<u32> {
        if *n == 0 {
            None
        } else {
            Some(n / 10)
        }
    }

    #[test]
    fn significant_leaf_reported_directly() {
        let out = hhh_1d(vec![(123u32, 10.0), (124, 0.5)], parent, 5.0);
        assert!(out.contains(&(123, 10.0)));
        // 124's weight rolls up to 12, then 1, then 0 (root).
        let root_w = out.iter().find(|(k, _)| *k == 0).map(|(_, w)| *w);
        assert_eq!(root_w, Some(0.5));
    }

    #[test]
    fn siblings_combine_at_parent() {
        // Three siblings of 2.0 each — none significant alone, parent 12 is.
        let out = hhh_1d(vec![(121u32, 2.0), (122, 2.0), (123, 2.0)], parent, 5.0);
        assert_eq!(out, vec![(12, 6.0)]);
    }

    #[test]
    fn descendant_exclusion() {
        // 121 significant alone; 122+123 only significant combined at 12.
        let out = hhh_1d(vec![(121u32, 7.0), (122, 3.0), (123, 3.0)], parent, 5.0);
        assert!(out.contains(&(121, 7.0)));
        // Parent reports only the residual 6.0, not 13.0.
        assert!(out.contains(&(12, 6.0)));
    }

    #[test]
    fn weights_are_conserved() {
        let items: Vec<(u32, f64)> = (100..200).map(|k| (k, 0.37)).collect();
        let total: f64 = items.iter().map(|(_, w)| w).sum();
        let out = hhh_1d(items, parent, 3.0);
        let reported: f64 = out.iter().map(|(_, w)| w).sum();
        assert!((reported - total).abs() < 1e-9, "{reported} vs {total}");
    }

    #[test]
    fn root_catches_scraps() {
        let out = hhh_1d(vec![(5u32, 0.1)], parent, 100.0);
        assert_eq!(out, vec![(0, 0.1)]);
    }

    #[test]
    fn empty_input() {
        let out = hhh_1d(Vec::<(u32, f64)>::new(), parent, 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_keys_merge() {
        let out = hhh_1d(vec![(7u32, 3.0), (7, 4.0)], parent, 5.0);
        assert!(out.contains(&(7, 7.0)));
    }
}

#[cfg(test)]
mod prefix_tests {
    use super::*;
    use nf_types::{parse_ip, Prefix};

    #[test]
    fn ipv4_prefix_hierarchy_rolls_up_32_levels() {
        // Two /32 hosts under one /31; weight splits below threshold and
        // meets it exactly at the /31.
        let a = Prefix::host(parse_ip("10.0.0.2").unwrap());
        let b = Prefix::host(parse_ip("10.0.0.3").unwrap());
        let out = hhh_1d(vec![(a, 3.0), (b, 3.0)], |p: &Prefix| p.parent(), 5.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Prefix::new(parse_ip("10.0.0.2").unwrap(), 31));
        assert!((out[0].1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn distant_hosts_meet_high_in_the_tree() {
        let a = Prefix::host(parse_ip("10.0.0.1").unwrap());
        let b = Prefix::host(parse_ip("10.128.0.1").unwrap());
        let out = hhh_1d(vec![(a, 3.0), (b, 3.0)], |p: &Prefix| p.parent(), 5.0);
        assert_eq!(out.len(), 1);
        // First common ancestor of 10.0.0.1 and 10.128.0.1 is 10.0.0.0/8.
        assert_eq!(out[0].0, Prefix::new(parse_ip("10.0.0.0").unwrap(), 8));
    }

    #[test]
    fn port_hierarchy_is_two_level() {
        use nf_types::PortRange;
        // 4 exact high ports of 2.0 each; threshold 5 → the HIGH range.
        let items: Vec<(PortRange, f64)> =
            (0..4).map(|i| (PortRange::exact(2000 + i), 2.0)).collect();
        let out = hhh_1d(items, |p: &PortRange| p.static_parent(), 5.0);
        assert_eq!(out, vec![(PortRange::HIGH, 8.0)]);
    }
}
