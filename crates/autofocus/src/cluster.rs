//! Multi-dimensional clustering of one side of a causal relation
//! (flow five-tuple × location).
//!
//! Following AutoFocus: first find the unidimensionally significant values
//! per dimension (exact 1-D HHH), then form candidate multi-dimensional
//! clusters from their cross product, then *compress* — walk candidates from
//! most specific to most general, report a candidate when the weight of the
//! items it matches that are not already claimed by a reported (more
//! specific) cluster reaches the threshold.

use crate::hierarchy::hhh_1d;
use nf_types::{FiveTuple, FlowAggregate, NfId, NfKind, PortRange, Prefix, ProtoMatch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Where a culprit or victim lives: the traffic source or an NF instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// The traffic source.
    Source,
    /// One NF instance.
    Nf(NfId),
}

/// The location generalisation ladder: instance → NF kind → anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LocationAgg {
    /// Exactly this location.
    Exact(Location),
    /// Any instance of this NF kind.
    Kind(NfKind),
    /// Anywhere.
    Any,
}

impl LocationAgg {
    /// One generalisation step; needs the instance→kind mapping.
    pub fn parent(&self, kind_of: &impl Fn(NfId) -> NfKind) -> Option<LocationAgg> {
        match self {
            LocationAgg::Exact(Location::Nf(id)) => Some(LocationAgg::Kind(kind_of(*id))),
            LocationAgg::Exact(Location::Source) => Some(LocationAgg::Any),
            LocationAgg::Kind(_) => Some(LocationAgg::Any),
            LocationAgg::Any => None,
        }
    }

    /// Does this aggregate match a concrete location?
    pub fn matches(&self, loc: Location, kind_of: &impl Fn(NfId) -> NfKind) -> bool {
        match self {
            LocationAgg::Exact(l) => *l == loc,
            LocationAgg::Kind(k) => matches!(loc, Location::Nf(id) if kind_of(id) == *k),
            LocationAgg::Any => true,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Source => write!(f, "source"),
            Location::Nf(id) => write!(f, "{id}"),
        }
    }
}

impl fmt::Display for LocationAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationAgg::Exact(l) => write!(f, "{l}"),
            LocationAgg::Kind(k) => write!(f, "{k}*"),
            LocationAgg::Any => write!(f, "*"),
        }
    }
}

/// An aggregated side: flow aggregate plus location aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SideAggregate {
    /// Flow-space part (ANY when the items carried no flow).
    pub flow: FlowAggregate,
    /// Location part.
    pub loc: LocationAgg,
}

impl SideAggregate {
    /// Does this aggregate match a concrete (flow, location) item?
    pub fn matches(
        &self,
        flow: Option<&FiveTuple>,
        loc: Location,
        kind_of: &impl Fn(NfId) -> NfKind,
    ) -> bool {
        let flow_ok = match flow {
            Some(ft) => self.flow.matches(ft),
            // Flow-less items are matched only by the ANY flow aggregate.
            None => self.flow == FlowAggregate::ANY,
        };
        flow_ok && self.loc.matches(loc, kind_of)
    }

    /// Specificity for most-specific-first compression ordering.
    pub fn specificity(&self) -> u32 {
        self.flow.specificity()
            + match self.loc {
                LocationAgg::Exact(_) => 16,
                LocationAgg::Kind(_) => 8,
                LocationAgg::Any => 0,
            }
    }
}

/// Clustering parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fraction of the total weight a cluster must claim (the paper's `th`,
    /// 1% in the evaluation).
    pub threshold: f64,
    /// Cap on unidimensionally significant values kept per dimension
    /// (safety valve against candidate blow-up).
    pub max_per_dim: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            threshold: 0.01,
            max_per_dim: 48,
        }
    }
}

/// One weighted input item for side aggregation.
#[derive(Debug, Clone, Copy)]
pub struct SideItem {
    /// Exact flow, if the relation carries one.
    pub flow: Option<FiveTuple>,
    /// Concrete location.
    pub loc: Location,
    /// Score mass.
    pub weight: f64,
}

/// The least common generalisation (meet) of a set of items in our
/// lattice: longest common IP prefixes, tightest static port level, exact
/// or wildcard protocol, and the location ladder (exact → kind → any).
fn meet_of(items: &[SideItem], kind_of: &impl Fn(NfId) -> NfKind) -> SideAggregate {
    fn common_prefix(a: Prefix, ip: u32) -> Prefix {
        let mut p = a;
        while !p.contains(ip) {
            p = p.parent().expect("/0 contains everything");
        }
        p
    }
    let mut it = items.iter();
    let first = it.next().expect("meet of a non-empty set");
    let mut loc = LocationAgg::Exact(first.loc);
    let mut flow = first
        .flow
        .map_or(FlowAggregate::ANY, |f| FlowAggregate::exact(&f));
    for i in it {
        if !loc.matches(i.loc, kind_of) {
            loc = match (loc, i.loc) {
                (LocationAgg::Exact(Location::Nf(a)), Location::Nf(b))
                    if kind_of(a) == kind_of(b) =>
                {
                    LocationAgg::Kind(kind_of(a))
                }
                (LocationAgg::Kind(k), Location::Nf(b)) if k == kind_of(b) => LocationAgg::Kind(k),
                _ => LocationAgg::Any,
            };
        }
        match i.flow {
            None => flow = FlowAggregate::ANY,
            Some(f) => {
                flow.src = common_prefix(flow.src, f.src_ip);
                flow.dst = common_prefix(flow.dst, f.dst_ip);
                if !flow.proto.contains(f.proto) {
                    flow.proto = ProtoMatch::Any;
                }
                while !flow.src_port.contains(f.src_port) {
                    flow.src_port = flow.src_port.static_parent().expect("ANY contains all");
                }
                while !flow.dst_port.contains(f.dst_port) {
                    flow.dst_port = flow.dst_port.static_parent().expect("ANY contains all");
                }
            }
        }
    }
    SideAggregate { flow, loc }
}

fn top<K: Clone>(mut v: Vec<(K, f64)>, cap: usize) -> Vec<K> {
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
    v.truncate(cap);
    v.into_iter().map(|(k, _)| k).collect()
}

/// Aggregates one side of the relations into significant
/// (flow, location) clusters with descendant-exclusion scores.
///
/// Returned clusters are sorted by descending weight; their weights sum to
/// (almost) the input weight — every item is claimed by exactly one
/// reported cluster, with an `(ANY, ANY)` catch-all absorbing the scraps.
pub fn aggregate_side(
    items: &[SideItem],
    cfg: &ClusterConfig,
    kind_of: &impl Fn(NfId) -> NfKind,
) -> Vec<(SideAggregate, f64)> {
    let total: f64 = items.iter().map(|i| i.weight).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let th = cfg.threshold * total;

    // Fast path: when every distinct exact value already clears the
    // threshold (typical for the small per-culprit victim groups of the
    // §4.4 phase-1 pass), the full lattice machinery provably reports
    // exactly the distinct values — most-specific candidates claim their
    // items first and nothing is left to generalise. Emit them directly.
    {
        let mut exact: HashMap<(Option<FiveTuple>, Location), f64> = HashMap::new();
        for i in items {
            *exact.entry((i.flow, i.loc)).or_insert(0.0) += i.weight;
        }
        // lint: order-insensitive(`all` is a pure predicate — true/false regardless of visit order)
        if exact.len() <= 16 && exact.values().all(|&w| w >= th) {
            let mut out: Vec<(SideAggregate, f64)> = exact
                .into_iter()
                .map(|((flow, loc), w)| {
                    (
                        SideAggregate {
                            flow: flow.map_or(FlowAggregate::ANY, |f| FlowAggregate::exact(&f)),
                            loc: LocationAgg::Exact(loc),
                        },
                        w,
                    )
                })
                .collect();
            // Full tie-break: the entries come out of a HashMap, so a
            // weight-only sort would leave equal-weight clusters in
            // per-process-random order.
            out.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite weights")
                    .then_with(|| a.0.cmp(&b.0))
            });
            return out;
        }
    }

    // Second fast path: when the threshold is at (or above) the whole
    // group's weight, only a cluster matching *every* item can be reported
    // and the most specific such cluster is the items' meet (least common
    // generalisation). This happens constantly in the §4.4 phase-2 pass,
    // where small victim groups get a globally-scaled threshold.
    if th >= total * 0.999 {
        return vec![(meet_of(items, kind_of), total)];
    }

    // 1. Unidimensional HHH per dimension.
    let src: Vec<Prefix> = top(
        hhh_1d(
            items
                .iter()
                .filter_map(|i| i.flow.map(|f| (Prefix::host(f.src_ip), i.weight))),
            |p: &Prefix| p.parent(),
            th,
        ),
        cfg.max_per_dim,
    );
    let dst: Vec<Prefix> = top(
        hhh_1d(
            items
                .iter()
                .filter_map(|i| i.flow.map(|f| (Prefix::host(f.dst_ip), i.weight))),
            |p: &Prefix| p.parent(),
            th,
        ),
        cfg.max_per_dim,
    );
    let sport: Vec<PortRange> = top(
        hhh_1d(
            items
                .iter()
                .filter_map(|i| i.flow.map(|f| (PortRange::exact(f.src_port), i.weight))),
            |p: &PortRange| p.static_parent(),
            th,
        ),
        cfg.max_per_dim,
    );
    let dport: Vec<PortRange> = top(
        hhh_1d(
            items
                .iter()
                .filter_map(|i| i.flow.map(|f| (PortRange::exact(f.dst_port), i.weight))),
            |p: &PortRange| p.static_parent(),
            th,
        ),
        cfg.max_per_dim,
    );
    let proto: Vec<ProtoMatch> = top(
        hhh_1d(
            items
                .iter()
                .filter_map(|i| i.flow.map(|f| (ProtoMatch::Exact(f.proto), i.weight))),
            |p: &ProtoMatch| match p {
                ProtoMatch::Exact(_) => Some(ProtoMatch::Any),
                ProtoMatch::Any => None,
            },
            th,
        ),
        cfg.max_per_dim,
    );
    let locs: Vec<LocationAgg> = top(
        hhh_1d(
            items.iter().map(|i| (LocationAgg::Exact(i.loc), i.weight)),
            |l: &LocationAgg| l.parent(kind_of),
            th,
        ),
        cfg.max_per_dim,
    );

    // Always include the wildcard in every dimension so the catch-all
    // cluster exists.
    let with_any = |mut v: Vec<Prefix>| {
        if !v.contains(&Prefix::ANY) {
            v.push(Prefix::ANY);
        }
        v
    };
    let src = with_any(src);
    let dst = with_any(dst);
    let add_any_port = |mut v: Vec<PortRange>| {
        if !v.contains(&PortRange::ANY) {
            v.push(PortRange::ANY);
        }
        v
    };
    let sport = add_any_port(sport);
    let dport = add_any_port(dport);
    let mut proto = proto;
    if !proto.contains(&ProtoMatch::Any) {
        proto.push(ProtoMatch::Any);
    }
    let mut locs = locs;
    if !locs.contains(&LocationAgg::Any) {
        locs.push(LocationAgg::Any);
    }

    // Per-dimension weight of each kept value (total weight of the items it
    // matches). A multi-dimensional cluster can never claim more than the
    // weight of any single value it is built from, so the minimum over its
    // dimensions is an upper bound — AutoFocus's candidate-pruning trick,
    // which keeps the cross product tractable.
    let weight_of = |pred: &dyn Fn(&SideItem) -> bool| -> f64 {
        items.iter().filter(|i| pred(i)).map(|i| i.weight).sum()
    };
    let src_w: Vec<f64> = src
        .iter()
        .map(|p| weight_of(&|i: &SideItem| i.flow.map_or(p.is_any(), |f| p.contains(f.src_ip))))
        .collect();
    let dst_w: Vec<f64> = dst
        .iter()
        .map(|p| weight_of(&|i: &SideItem| i.flow.map_or(p.is_any(), |f| p.contains(f.dst_ip))))
        .collect();
    let sport_w: Vec<f64> = sport
        .iter()
        .map(|r| weight_of(&|i: &SideItem| i.flow.map_or(r.is_any(), |f| r.contains(f.src_port))))
        .collect();
    let dport_w: Vec<f64> = dport
        .iter()
        .map(|r| weight_of(&|i: &SideItem| i.flow.map_or(r.is_any(), |f| r.contains(f.dst_port))))
        .collect();
    let proto_w: Vec<f64> = proto
        .iter()
        .map(|p| {
            weight_of(&|i: &SideItem| {
                i.flow
                    .map_or(matches!(p, ProtoMatch::Any), |f| p.contains(f.proto))
            })
        })
        .collect();
    let locs_w: Vec<f64> = locs
        .iter()
        .map(|l| weight_of(&|i: &SideItem| l.matches(i.loc, kind_of)))
        .collect();

    // 2. Candidate cross product, pruned by the upper bound.
    let mut candidates: Vec<SideAggregate> = Vec::new();
    for (si, &s) in src.iter().enumerate() {
        for (di, &d) in dst.iter().enumerate() {
            let b2 = src_w[si].min(dst_w[di]);
            if b2 < th {
                continue;
            }
            for (pi, &pr) in proto.iter().enumerate() {
                let b3 = b2.min(proto_w[pi]);
                if b3 < th {
                    continue;
                }
                for (spi, &sp) in sport.iter().enumerate() {
                    let b4 = b3.min(sport_w[spi]);
                    if b4 < th {
                        continue;
                    }
                    for (dpi, &dp) in dport.iter().enumerate() {
                        let b5 = b4.min(dport_w[dpi]);
                        if b5 < th {
                            continue;
                        }
                        for (li, &l) in locs.iter().enumerate() {
                            if b5.min(locs_w[li]) < th {
                                continue;
                            }
                            candidates.push(SideAggregate {
                                flow: FlowAggregate {
                                    src: s,
                                    dst: d,
                                    proto: pr,
                                    src_port: sp,
                                    dst_port: dp,
                                },
                                loc: l,
                            });
                        }
                    }
                }
            }
        }
    }
    // The catch-all must always be present even when its bound fell under
    // the threshold (weights must be conserved).
    let catch_all = SideAggregate {
        flow: FlowAggregate::ANY,
        loc: LocationAgg::Any,
    };
    if !candidates.contains(&catch_all) {
        candidates.push(catch_all);
    }

    // 3. Compression: most specific first; a candidate claims the items it
    // matches that no reported cluster has claimed; report if the claim
    // reaches the threshold. The (ANY, ANY) catch-all is always reported
    // last with the remainder. Claimed items leave the working list, so
    // later candidates scan ever-shorter lists.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.specificity()));
    let mut remaining: Vec<&SideItem> = items.iter().collect();
    let mut out: Vec<(SideAggregate, f64)> = Vec::new();
    for cand in candidates {
        if remaining.is_empty() {
            break;
        }
        let is_catch_all = cand == catch_all;
        let claim: f64 = remaining
            .iter()
            .filter(|item| cand.matches(item.flow.as_ref(), item.loc, kind_of))
            .map(|item| item.weight)
            .sum();
        if claim >= th || (is_catch_all && claim > 0.0) {
            remaining.retain(|item| !cand.matches(item.flow.as_ref(), item.loc, kind_of));
            out.push((cand, claim));
        }
    }
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite weights")
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::{parse_ip, Proto};

    fn kind_of(_: NfId) -> NfKind {
        NfKind::Firewall
    }

    fn ft(src: &str, sport: u16, dport: u16) -> FiveTuple {
        FiveTuple::new(
            parse_ip(src).unwrap(),
            parse_ip("32.0.0.1").unwrap(),
            sport,
            dport,
            Proto::TCP,
        )
    }

    #[test]
    fn single_hot_flow_reported_exactly() {
        let mut items = vec![SideItem {
            flow: Some(ft("100.0.0.1", 2004, 6004)),
            loc: Location::Nf(NfId(1)),
            weight: 90.0,
        }];
        // Background noise spread over many flows.
        for i in 0..10 {
            items.push(SideItem {
                flow: Some(ft("10.0.0.9", 5000 + i, 80)),
                loc: Location::Nf(NfId(2)),
                weight: 1.0,
            });
        }
        let out = aggregate_side(&items, &ClusterConfig::default(), &kind_of);
        let top = &out[0];
        assert!(top.1 >= 90.0);
        assert!(top.0.flow.matches(&ft("100.0.0.1", 2004, 6004)));
        assert_eq!(top.0.loc, LocationAgg::Exact(Location::Nf(NfId(1))));
        // And it is the *specific* flow, not a wildcard.
        assert_eq!(top.0.flow.src, Prefix::host(parse_ip("100.0.0.1").unwrap()));
    }

    #[test]
    fn sibling_flows_aggregate_to_shared_prefix() {
        // 8 hosts under 100.0.0.0/28 each carry 5% — individually below a
        // 10% threshold, only significant as prefix groups. Every other
        // dimension is identical across all items, so the src dimension is
        // the only one that can separate them.
        let mut items = Vec::new();
        for h in 1..=8u32 {
            items.push(SideItem {
                flow: Some(FiveTuple::new(
                    parse_ip("100.0.0.0").unwrap() + h,
                    parse_ip("32.0.0.1").unwrap(),
                    2000,
                    6000,
                    Proto::TCP,
                )),
                loc: Location::Nf(NfId(1)),
                weight: 5.0,
            });
        }
        // Background with a different src but everything else equal.
        for _ in 0..60 {
            items.push(SideItem {
                flow: Some(FiveTuple::new(
                    parse_ip("10.0.0.9").unwrap(),
                    parse_ip("32.0.0.1").unwrap(),
                    2000,
                    6000,
                    Proto::TCP,
                )),
                loc: Location::Nf(NfId(1)),
                weight: 1.0,
            });
        }
        let cfg = ClusterConfig {
            threshold: 0.1,
            ..Default::default()
        };
        let out = aggregate_side(&items, &cfg, &kind_of);
        // The sibling hosts' 40.0 of weight must be claimed by prefix
        // clusters under 100.0.0.0/24 (generalised, yet excluding the
        // 10.0.0.9 background).
        let umbrella = Prefix::new(parse_ip("100.0.0.0").unwrap(), 24);
        let sibling_weight: f64 = out
            .iter()
            .filter(|(agg, _)| umbrella.covers(&agg.flow.src))
            .map(|(_, w)| w)
            .sum();
        assert!(
            sibling_weight >= 40.0 - 1e-9,
            "prefix clusters claim {sibling_weight}, output {out:?}"
        );
        // At least one cluster generalised beyond a single host.
        assert!(
            out.iter()
                .any(|(agg, _)| umbrella.covers(&agg.flow.src) && agg.flow.src.len() < 32),
            "no generalised prefix cluster: {out:?}"
        );
    }

    #[test]
    fn weights_conserved_via_catch_all() {
        let items: Vec<SideItem> = (0..50)
            .map(|i| SideItem {
                flow: Some(ft("10.0.0.9", 1024 + i, 80)),
                loc: Location::Nf(NfId(i % 4)),
                weight: 1.0,
            })
            .collect();
        let out = aggregate_side(&items, &ClusterConfig::default(), &kind_of);
        let sum: f64 = out.iter().map(|(_, w)| w).sum();
        assert!((sum - 50.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn flowless_items_fall_into_any_flow_clusters() {
        let items = vec![
            SideItem {
                flow: None,
                loc: Location::Nf(NfId(3)),
                weight: 10.0,
            },
            SideItem {
                flow: None,
                loc: Location::Nf(NfId(3)),
                weight: 10.0,
            },
        ];
        let out = aggregate_side(&items, &ClusterConfig::default(), &kind_of);
        assert!(!out.is_empty());
        let top = &out[0];
        assert_eq!(top.0.flow, FlowAggregate::ANY);
        assert_eq!(top.0.loc, LocationAgg::Exact(Location::Nf(NfId(3))));
        assert!((top.1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn location_generalises_to_kind() {
        // Weight spread over 6 firewall instances, none significant alone
        // with a high threshold, but the kind is.
        let items: Vec<SideItem> = (0..6)
            .map(|i| SideItem {
                flow: Some(ft("100.0.0.1", 2000, 6000)),
                loc: Location::Nf(NfId(i)),
                weight: 5.0,
            })
            .collect();
        let cfg = ClusterConfig {
            threshold: 0.3, // 9.0 absolute: single instances (5.0) miss it
            ..Default::default()
        };
        let out = aggregate_side(&items, &cfg, &kind_of);
        let top = &out[0];
        assert_eq!(top.0.loc, LocationAgg::Kind(NfKind::Firewall));
        assert!((top.1 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = aggregate_side(&[], &ClusterConfig::default(), &kind_of);
        assert!(out.is_empty());
    }
}
