//! AutoFocus-style hierarchical heavy-hitter aggregation (§4.4 of the
//! paper, after Estan, Savage & Varghese, SIGCOMM'03).
//!
//! Microscope produces one packet-level causal relation per (culprit packet,
//! victim packet) pair — tens of thousands per run. Operators need a handful
//! of *patterns*: `<culprit flow aggregate, culprit location> → <victim flow
//! aggregate, victim location>: score`. This crate turns the relations into
//! patterns:
//!
//! * [`hierarchy`] — exact one-dimensional hierarchical heavy hitters over
//!   each generalisation ladder (IPv4 prefix bit-by-bit, exact port →
//!   static range → wildcard, exact protocol → wildcard, NF instance → NF
//!   kind → anywhere);
//! * [`cluster`] — multi-dimensional clustering of one side (flow ×
//!   location): candidates are cross products of unidimensionally
//!   significant values, compressed most-specific-first with
//!   descendant-score exclusion;
//! * [`pattern`] — the paper's two-phase decoupling: aggregate victims per
//!   culprit first, then aggregate the culprit side, which keeps the
//!   12-dimensional problem tractable. Includes the adaptive port-range
//!   merging the paper lists as a future optimisation.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod hierarchy;
pub mod pattern;

pub use cluster::{aggregate_side, ClusterConfig, Location, LocationAgg, SideAggregate};
pub use pattern::{
    aggregate_patterns, merge_adjacent_port_patterns, CausalRelation, Pattern, PatternConfig,
};
