//! Exhaustive interleaving checks of the diagnosis cache's sharded
//! insert/lookup protocol, run with `msc-model` shims in place of
//! `std::sync` (see DESIGN.md §7).
//!
//! A single shard (`with_shards(1)`) forces every key through one lock, so
//! these schedules maximise contention: every read/write interleaving of
//! two racing threads is explored, and `stats.complete` asserts the
//! exploration exhausted. The property under test is the one the diagnosis
//! pipeline relies on for bit-identical output: a lookup never surfaces a
//! value under the wrong key, no matter how inserts race.

use microscope::{DiagnosisCacheCore, DiagnosisStep};
use msc_model::model;
use msc_model::shim::ModelPrims;
use msc_trace::QueuingPeriod;
use nf_types::{Interval, NfId};
use std::sync::{Arc, OnceLock};

type ModelCache = DiagnosisCacheCore<ModelPrims>;

/// A step whose payload encodes `n`, so wrong-key mixups are observable.
fn step(n: u64) -> DiagnosisStep {
    DiagnosisStep {
        qp: QueuingPeriod {
            interval: Interval::new(0, n),
            preset: 0..0,
            n_arrived: n,
            n_processed: 0,
        },
        scores: microscope::LocalScores { si: 0.0, sp: 0.0 },
        preset_flows: Vec::new(),
        shares: OnceLock::new(),
    }
}

/// Two threads populate *distinct* keys through the same shard lock: each
/// must read back its own payload in every schedule, and both entries must
/// be resident afterwards.
#[test]
fn racing_inserts_of_distinct_keys_never_cross() {
    let stats = model(|| {
        let cache = Arc::new(ModelCache::with_shards(1));
        let racer = {
            let cache = Arc::clone(&cache);
            msc_model::thread::spawn(move || {
                let a = cache.step((NfId(1), 10, 0), || step(10));
                a.qp.n_arrived
            })
        };
        let b = cache.step((NfId(2), 20, 0), || step(20));
        assert_eq!(b.qp.n_arrived, 20, "lookup surfaced the wrong key's value");
        let a = racer.join();
        assert_eq!(a, 10, "lookup surfaced the wrong key's value");
        let s = cache.stats();
        assert_eq!(s.entries, 2, "distinct keys must not collapse");
        assert_eq!((s.hits, s.misses), (0, 2));
    });
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    assert!(
        stats.interleavings >= 2,
        "shard lock must branch: {stats:?}"
    );
}

/// Two threads race the *same* key: every schedule ends with exactly one
/// resident entry carrying the key's payload, and the counters account for
/// both lookups. (First-insert-wins means a racing duplicate computation is
/// dropped, never swapped in.)
#[test]
fn racing_inserts_of_one_key_share_a_single_entry() {
    let stats = model(|| {
        let cache = Arc::new(ModelCache::with_shards(1));
        let key = (NfId(7), 1_000, 0);
        let racer = {
            let cache = Arc::clone(&cache);
            msc_model::thread::spawn(move || cache.step(key, || step(7)).qp.n_arrived)
        };
        let mine = cache.step(key, || step(7)).qp.n_arrived;
        let theirs = racer.join();
        assert_eq!((mine, theirs), (7, 7), "both racers see the key's value");
        let s = cache.stats();
        assert_eq!(s.entries, 1, "one key, one resident entry");
        assert_eq!(
            s.hits + s.misses,
            2,
            "every lookup was either a hit or a miss: {s:?}"
        );
        assert!(s.misses >= 1, "somebody computed the entry: {s:?}");
    });
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    assert!(
        stats.interleavings >= 2,
        "shard lock must branch: {stats:?}"
    );
}
