//! Local diagnosis: the input-workload and processing scores of §4.1.

use msc_trace::QueuingPeriod;

/// The two §4.1 scores, in packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalScores {
    /// `Si` (eq. 1): extra input packets beyond what the NF could process at
    /// its peak rate during the queuing period — blame upstream.
    pub si: f64,
    /// `Sp` (eq. 2): packets *not* processed although the peak rate allowed
    /// it — blame the local NF (interrupts, cache misses, bugs).
    pub sp: f64,
}

impl LocalScores {
    /// `Si + Sp`, which equals the queue length the victim found (§4.1).
    pub fn total(&self) -> f64 {
        self.si + self.sp
    }
}

/// Computes `Si` and `Sp` for a queuing period given the NF's peak
/// processing rate `r_i` in packets/second.
///
/// Definitions from the paper (eqs. 1 and 2), with `n_i`/`n_p` the packets
/// arrived/processed during the period of length `T`:
///
/// ```text
/// Si = n_i − r_i·T   if n_i > r_i·T, else 0
/// Sp = r_i·T − n_p   if n_i > r_i·T, else n_i − n_p
/// ```
pub fn local_scores(qp: &QueuingPeriod, peak_rate_pps: f64) -> LocalScores {
    assert!(peak_rate_pps > 0.0, "peak rate must be positive");
    let n_i = qp.n_arrived as f64;
    let n_p = qp.n_processed as f64;
    let expected = peak_rate_pps * qp.len() as f64 / 1e9;
    if n_i > expected {
        LocalScores {
            si: n_i - expected,
            sp: expected - n_p,
        }
    } else {
        LocalScores {
            si: 0.0,
            sp: n_i - n_p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::Interval;

    fn qp(len_ns: u64, n_arrived: u64, n_processed: u64) -> QueuingPeriod {
        QueuingPeriod {
            interval: Interval::new(1_000, 1_000 + len_ns),
            preset: 0..0,
            n_arrived,
            n_processed,
        }
    }

    #[test]
    fn pure_input_burst() {
        // 1 Mpps peak; in 100 µs the NF can do 100 packets. 300 arrived,
        // 100 processed (NF at peak): all blame on input.
        let s = local_scores(&qp(100_000, 300, 100), 1e6);
        assert!((s.si - 200.0).abs() < 1e-9);
        assert!(s.sp.abs() < 1e-9);
        assert!((s.total() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pure_slow_processing() {
        // 80 arrived (under the 100 expected), only 20 processed: local.
        let s = local_scores(&qp(100_000, 80, 20), 1e6);
        assert_eq!(s.si, 0.0);
        assert!((s.sp - 60.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_blame() {
        // 150 arrived (> 100 expected), 70 processed: Si = 50, Sp = 30.
        let s = local_scores(&qp(100_000, 150, 70), 1e6);
        assert!((s.si - 50.0).abs() < 1e-9);
        assert!((s.sp - 30.0).abs() < 1e-9);
    }

    #[test]
    fn identity_si_plus_sp_is_queue_length() {
        for (n_i, n_p) in [(300u64, 100u64), (80, 20), (150, 70), (100, 100)] {
            let q = qp(100_000, n_i, n_p);
            let s = local_scores(&q, 1e6);
            assert!(
                (s.total() - q.queue_len() as f64).abs() < 1e-9,
                "ni={n_i} np={n_p}"
            );
        }
    }

    #[test]
    fn degenerate_period() {
        let s = local_scores(&qp(0, 0, 0), 1e6);
        assert_eq!(s.si, 0.0);
        assert_eq!(s.sp, 0.0);
    }

    #[test]
    fn sp_can_go_negative_when_nf_overperforms() {
        // NF drained faster than its nominal peak (jitter): Sp < 0 is kept
        // as-is; the caller clamps when splitting blame.
        let s = local_scores(&qp(100_000, 150, 120), 1e6);
        assert!(s.sp < 0.0);
        assert!((s.total() - 30.0).abs() < 1e-9);
    }
}
