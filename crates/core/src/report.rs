//! Turning diagnoses into ranked culprit lists and causal relations.

use crate::diagnose::{CulpritKind, Diagnosis};
use autofocus::{CausalRelation, Location};
use msc_trace::Reconstruction;
use nf_types::{Interval, NodeId};

/// A culprit entry in the per-victim ranked list used for accuracy scoring
/// (§6.2's rank metric).
#[derive(Debug, Clone)]
pub struct RankedCulprit {
    /// The culprit node.
    pub node: NodeId,
    /// Local slowdown or source burst.
    pub kind: CulpritKind,
    /// Blame mass.
    pub score: f64,
    /// Culprit activity window.
    pub window: Interval,
    /// Dominant culprit flows (by packet count), if any.
    pub top_flows: Vec<nf_types::FiveTuple>,
}

/// The ranked culprit list of one diagnosis (already sorted by the engine;
/// this extracts the scoring-relevant view).
pub fn rank_culprits(d: &Diagnosis) -> Vec<RankedCulprit> {
    d.culprits
        .iter()
        .map(|c| RankedCulprit {
            node: c.node,
            kind: c.kind,
            score: c.score,
            window: c.window,
            top_flows: c.flows.iter().take(8).map(|(f, _)| *f).collect(),
        })
        .collect()
}

/// Converts diagnoses into packet-level causal relations for §4.4 pattern
/// aggregation.
///
/// Each (victim, culprit) pair yields one relation per culprit flow, with
/// the culprit's score split proportionally to flow packet counts; culprits
/// without flow information yield a single flow-less relation.
pub fn diagnoses_to_relations(
    recon: &Reconstruction,
    diagnoses: &[Diagnosis],
) -> Vec<CausalRelation> {
    let mut out = Vec::new();
    for d in diagnoses {
        let victim_flow = recon.traces.get(d.victim.trace).map(|t| t.flow);
        let victim_loc = Location::Nf(d.victim.nf);
        for c in &d.culprits {
            let culprit_loc = match c.node {
                NodeId::Source => Location::Source,
                NodeId::Nf(nf) => Location::Nf(nf),
            };
            let flow_total: f64 = c.flows.iter().map(|(_, w)| w).sum();
            if c.flows.is_empty() || flow_total <= 0.0 {
                out.push(CausalRelation {
                    culprit_flow: None,
                    culprit_loc,
                    victim_flow,
                    victim_loc,
                    score: c.score,
                });
            } else {
                for (f, w) in &c.flows {
                    out.push(CausalRelation {
                        culprit_flow: Some(*f),
                        culprit_loc,
                        victim_flow,
                        victim_loc,
                        score: c.score * w / flow_total,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::Culprit;
    use crate::victim::{Victim, VictimKind};
    use nf_types::{FiveTuple, NfId, Proto};

    fn flow(p: u16) -> FiveTuple {
        FiveTuple::new(1, 2, p, 80, Proto::TCP)
    }

    fn diag() -> Diagnosis {
        Diagnosis {
            victim: Victim {
                trace: 0,
                nf: NfId(1),
                hop: 0,
                arrival_ts: 100,
                observed_ts: 200,
                kind: VictimKind::HighLatency,
            },
            culprits: vec![
                Culprit {
                    node: NodeId::Nf(NfId(0)),
                    kind: CulpritKind::LocalProcessing,
                    score: 10.0,
                    window: Interval::new(0, 100),
                    flows: vec![(flow(1), 3.0), (flow(2), 1.0)],
                },
                Culprit {
                    node: NodeId::Source,
                    kind: CulpritKind::SourceBurst,
                    score: 4.0,
                    window: Interval::new(0, 50),
                    flows: vec![],
                },
            ],
            recursions: 1,
        }
    }

    fn recon_stub() -> Reconstruction {
        let mut b = nf_types::Topology::builder();
        let a = b.add_nf(nf_types::NfKind::Nat, "nat1");
        b.add_entry(a);
        let topo = b.build().unwrap();
        let bundle = msc_collector::TraceBundle {
            logs: vec![msc_collector::NfLog {
                nf: NfId(0),
                rx: vec![],
                tx: vec![],
                flows: vec![],
            }],
            source_flows: vec![msc_collector::FlowRecord {
                ipid: 0,
                flow: flow(99),
                ts: 0,
            }],
        };
        msc_trace::reconstruct(&topo, &bundle, &msc_trace::ReconstructionConfig::default())
    }

    #[test]
    fn relations_split_scores_by_flow_weight() {
        let recon = recon_stub();
        let rels = diagnoses_to_relations(&recon, &[diag()]);
        assert_eq!(rels.len(), 3); // 2 flows + 1 flow-less
        let r1 = rels
            .iter()
            .find(|r| r.culprit_flow == Some(flow(1)))
            .unwrap();
        assert!((r1.score - 7.5).abs() < 1e-9); // 10 × 3/4
        let r2 = rels
            .iter()
            .find(|r| r.culprit_flow == Some(flow(2)))
            .unwrap();
        assert!((r2.score - 2.5).abs() < 1e-9);
        let r3 = rels.iter().find(|r| r.culprit_flow.is_none()).unwrap();
        assert!((r3.score - 4.0).abs() < 1e-9);
        assert_eq!(r3.culprit_loc, Location::Source);
        // Victim flow comes from the trace.
        assert_eq!(r1.victim_flow, Some(flow(99)));
        assert_eq!(r1.victim_loc, Location::Nf(NfId(1)));
    }

    #[test]
    fn ranked_culprits_preserve_order_and_windows() {
        let ranked = rank_culprits(&diag());
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].node, NodeId::Nf(NfId(0)));
        assert_eq!(ranked[0].window, Interval::new(0, 100));
        assert_eq!(ranked[0].top_flows.len(), 2);
        assert!(ranked[1].top_flows.is_empty());
    }
}
