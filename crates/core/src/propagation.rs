//! Propagation diagnosis (§4.2): attributing the input score `Si` of a
//! victim NF to its upstream nodes by timespan analysis.
//!
//! The PreSet packets took `T` to arrive at the victim NF `f`; had they been
//! spread over their *expected* timespan `Texp = n_i / r_f`, the queue would
//! not have built. Every upstream hop either squeezed their timespan
//! (buffering them behind an interrupt or an existing queue, then releasing
//! them back-to-back) or stretched it. The squeezers are the culprits; a
//! stretcher cancels credit from the squeezers before it (the paper's `B`
//! case, where `A`'s effective reduction becomes `Tsource − TB`).

use msc_trace::{ArrivalKind, NfTimeline, Reconstruction};
use nf_types::{Nanos, NfId, NodeId};
use std::collections::HashMap;
use std::ops::Range;

/// The final per-upstream-node share of `Si`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpstreamShare {
    /// The upstream node (source or NF).
    pub node: NodeId,
    /// Fraction of `Si` attributed (0..=1; all shares sum to ≤ 1).
    pub fraction: f64,
    /// Earliest arrival time of PreSet packets at this node.
    pub first_arrival: Option<Nanos>,
    /// Latest arrival time of PreSet packets at this node — where the
    /// recursive diagnosis of §4.3 anchors its queuing period (the period
    /// ending here reaches back past the first PreSet arrival to the last
    /// queue-empty point, covering the whole build-up — "the queuing
    /// period after the arrival of the first packet of PreSet(p)").
    pub last_arrival: Option<Nanos>,
}

/// The §4.2 credit walk along one path.
///
/// `timespans[i]` is the PreSet group's timespan when *leaving* node `i`
/// (for the source: the emission spread). `texp` is the expected timespan.
/// Returns per-node credited reductions; their sum is
/// `max(0, texp − final_effective_timespan)`.
pub fn credit_walk(texp: Nanos, timespans: &[Nanos]) -> Vec<Nanos> {
    let mut credits = Vec::new();
    let mut stack = Vec::new();
    credit_walk_into(texp, timespans, &mut credits, &mut stack);
    credits
}

/// [`credit_walk`] into caller-owned buffers, so the per-victim hot path
/// allocates nothing. `stack` holds the indices that still carry credit
/// (always in increasing order), which turns the stretch-cancellation scan
/// into an amortised O(1) pop: each index is pushed once and removed at
/// most once, instead of being revisited by every later stretch.
pub fn credit_walk_into(
    texp: Nanos,
    timespans: &[Nanos],
    credits: &mut Vec<Nanos>,
    stack: &mut Vec<usize>,
) {
    credits.clear();
    credits.resize(timespans.len(), 0);
    stack.clear();
    let mut prev_out = texp;
    for (i, &out) in timespans.iter().enumerate() {
        if out < prev_out {
            credits[i] = prev_out - out;
            stack.push(i);
            prev_out = out;
        } else {
            // Stretch: cancel credit from the most recent squeezers.
            let mut excess = out - prev_out;
            while excess > 0 {
                let Some(&j) = stack.last() else { break };
                let cancel = excess.min(credits[j]);
                credits[j] -= cancel;
                excess -= cancel;
                if credits[j] == 0 {
                    stack.pop();
                }
            }
            prev_out = out.min(texp);
        }
    }
}

/// Reusable buffers for [`attribute_upstream_with`]: one per worker thread
/// keeps the §4.2 inner loop allocation-free across victims.
#[derive(Debug, Default)]
pub struct UpstreamScratch {
    walk: Vec<Nanos>,
    credits: Vec<Nanos>,
    stack: Vec<usize>,
}

/// Groups the PreSet packets by upstream path and attributes `Si` across
/// upstream nodes (§4.2, including the DAG generalisation).
///
/// * `recon` — to look up each PreSet packet's trace and hops.
/// * `timeline` — the victim NF's timeline holding the PreSet arrivals.
/// * `preset` — index range of PreSet arrivals in `timeline.arrivals`.
/// * `victim_nf` — the NF being diagnosed.
/// * `peak_rate_pps` — the victim NF's `r_f`, defining `Texp`.
///
/// Returns shares summing to at most 1 (scaled down when per-path credits
/// overlap, as the paper prescribes).
pub fn attribute_upstream(
    recon: &Reconstruction,
    timeline: &NfTimeline,
    preset: &Range<usize>,
    victim_nf: NfId,
    peak_rate_pps: f64,
) -> Vec<UpstreamShare> {
    attribute_upstream_with(
        recon,
        timeline,
        preset,
        victim_nf,
        peak_rate_pps,
        &mut UpstreamScratch::default(),
    )
}

/// [`attribute_upstream`] with caller-owned scratch buffers (one per worker
/// thread), so diagnosing many victims allocates per distinct path group,
/// not per packet.
pub fn attribute_upstream_with(
    recon: &Reconstruction,
    timeline: &NfTimeline,
    preset: &Range<usize>,
    victim_nf: NfId,
    peak_rate_pps: f64,
    scratch: &mut UpstreamScratch,
) -> Vec<UpstreamShare> {
    // Group PreSet packets by their path prefix up to (excluding) victim_nf.
    // Keyed by the interned path id from reconstruction, so per packet the
    // group lookup hashes one u32 instead of cloning a node sequence.
    struct Group {
        nodes: Vec<NodeId>,
        /// Per node position: (min departure ts, max departure ts).
        spans: Vec<(Nanos, Nanos)>,
        /// (min, max) arrival at the victim NF.
        final_span: (Nanos, Nanos),
        /// (earliest, latest) arrival ts at each node.
        arrival_span: Vec<(Nanos, Nanos)>,
        packets: usize,
    }
    let mut groups: HashMap<u32, Group> = HashMap::new();
    let mut total_packets = 0usize;

    // Wild-run queuing periods at a near-saturated NF can hold 10^5+
    // arrivals; the timespan statistics converge long before that, so
    // sample a bounded stride. (Spans are min/max statistics; sampling can
    // only narrow them slightly, which under-attributes conservatively.)
    const MAX_PRESET_SAMPLES: usize = 8_192;
    let stride = (preset.len() / MAX_PRESET_SAMPLES).max(1);

    for a in timeline.arrivals[preset.clone()].iter().step_by(stride) {
        if a.kind != ArrivalKind::Queued {
            continue;
        }
        let tr = &recon.traces[a.trace];
        let hops = recon.hops_of(a.trace);
        // Hops strictly before the victim hop.
        let victim_hop = a.hop;
        let path_id = recon.hop_path_ids_of(a.trace)[victim_hop];
        debug_assert!(
            hops.get(victim_hop).is_none_or(|h| h.nf == victim_nf),
            "preset arrival hop mismatch"
        );
        total_packets += 1;
        let g = groups.entry(path_id).or_insert_with(|| Group {
            nodes: recon.paths.path(path_id),
            spans: vec![(Nanos::MAX, 0); victim_hop + 1],
            final_span: (Nanos::MAX, 0),
            arrival_span: vec![(Nanos::MAX, 0); victim_hop + 1],
            packets: 0,
        });
        g.packets += 1;
        // Position 0 is the source (departure == arrival == emission),
        // position i+1 the i-th upstream hop.
        g.spans[0].0 = g.spans[0].0.min(tr.emitted_at);
        g.spans[0].1 = g.spans[0].1.max(tr.emitted_at);
        g.arrival_span[0].0 = g.arrival_span[0].0.min(tr.emitted_at);
        g.arrival_span[0].1 = g.arrival_span[0].1.max(tr.emitted_at);
        for (i, h) in hops[..victim_hop].iter().enumerate() {
            let d = h.sent_ts.unwrap_or(h.read_ts);
            g.spans[i + 1].0 = g.spans[i + 1].0.min(d);
            g.spans[i + 1].1 = g.spans[i + 1].1.max(d);
            g.arrival_span[i + 1].0 = g.arrival_span[i + 1].0.min(h.arrival_ts);
            g.arrival_span[i + 1].1 = g.arrival_span[i + 1].1.max(h.arrival_ts);
        }
        g.final_span.0 = g.final_span.0.min(a.ts);
        g.final_span.1 = g.final_span.1.max(a.ts);
    }

    if total_packets == 0 {
        return Vec::new();
    }

    // Texp is shared across paths: n_i(T) / r_f (§4.2's DAG rule).
    let texp = (total_packets as f64 / peak_rate_pps * 1e9).round() as Nanos;

    // Per path: credit walk, then convert credits into Si fractions
    // weighted by the path's packet share. Paths are walked in canonical
    // (node-sequence) order: the fractions accumulate in floating point, so
    // HashMap iteration order would otherwise leak run-to-run last-ulp
    // differences into the shares.
    let mut ordered: Vec<Group> = groups.into_values().collect();
    ordered.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    let mut shares: HashMap<NodeId, (f64, Nanos, Nanos)> = HashMap::new();
    for g in &ordered {
        let final_ts = g.final_span.1 - g.final_span.0;
        // The victim-facing reduction includes the last wire hop: the
        // timespan as the packets *arrive* at f.
        scratch.walk.clear();
        scratch.walk.extend(g.spans.iter().map(|&(lo, hi)| hi - lo));
        // If the arrival spread differs from the last node's departure
        // spread, fold it in as the effective output of the last node.
        if let Some(last) = scratch.walk.last_mut() {
            *last = (*last).min(final_ts.max(1));
        }
        credit_walk_into(
            texp,
            &scratch.walk,
            &mut scratch.credits,
            &mut scratch.stack,
        );
        let credits = &scratch.credits;
        let denom = texp.saturating_sub(final_ts.min(texp)) as f64;
        let path_weight = g.packets as f64 / total_packets as f64;
        if denom <= 0.0 {
            // No compression on this path: these packets arrived at (or
            // slower than) the expected spacing, so they carry no burst
            // blame — the compressed paths sharing the queue do. Their
            // share of Si stays unattributed rather than being dumped on
            // the source.
            continue;
        }
        for (i, &c) in credits.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let frac = (c as f64 / denom).min(1.0) * path_weight;
            let e = shares.entry(g.nodes[i]).or_insert((0.0, Nanos::MAX, 0));
            e.0 += frac;
            e.1 = e.1.min(g.arrival_span[i].0);
            e.2 = e.2.max(g.arrival_span[i].1);
        }
    }

    // Scale down if the overlapping per-path credits exceed 1. Entries are
    // summed and emitted in node order, then ranked with a node tie-break:
    // both keep the result independent of HashMap iteration order.
    let mut entries: Vec<(NodeId, (f64, Nanos, Nanos))> = shares.into_iter().collect();
    entries.sort_by_key(|&(node, _)| node);
    let total: f64 = entries.iter().map(|(_, (f, _, _))| f).sum();
    let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
    let mut out: Vec<UpstreamShare> = entries
        .into_iter()
        .map(|(node, (f, fa, la))| UpstreamShare {
            node,
            fraction: f * scale,
            first_arrival: if fa == Nanos::MAX { None } else { Some(fa) },
            last_arrival: if fa == Nanos::MAX { None } else { Some(la) },
        })
        .collect();
    out.sort_by(|a, b| {
        b.fraction
            .partial_cmp(&a.fraction)
            .expect("finite")
            .then_with(|| a.node.cmp(&b.node))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_walk_simple_squeeze() {
        // Texp 1000; source emits over 800; NF A squeezes to 200.
        let credits = credit_walk(1000, &[800, 200]);
        assert_eq!(credits, vec![200, 600]);
    }

    #[test]
    fn credit_walk_paper_example() {
        // Fig. 6: source 900, A squeezes to 300 (interrupt), B stretches to
        // 500, C squeezes to 100. Texp = 1000.
        // Paper: src = 1000−900=100, A = 900−500=400 (after B's
        // cancellation), B = 0, C = 500−100=400.
        let credits = credit_walk(1000, &[900, 300, 500, 100]);
        assert_eq!(credits, vec![100, 400, 0, 400]);
        let total: u64 = credits.iter().sum();
        assert_eq!(total, 1000 - 100);
    }

    #[test]
    fn credit_walk_stretch_cancels_multiple() {
        // A stretch bigger than the last squeeze eats into earlier ones.
        // Texp 1000: src→600 (credit 400), A→400 (credit 200), B→900
        // (stretch 500: cancels A's 200 and 300 of src's 400), C→100.
        let credits = credit_walk(1000, &[600, 400, 900, 100]);
        assert_eq!(credits, vec![100, 0, 0, 800]);
        assert_eq!(credits.iter().sum::<u64>(), 1000 - 100);
    }

    #[test]
    fn credit_walk_no_compression() {
        // Timespans never below Texp: nobody gets credit.
        let credits = credit_walk(500, &[800, 900, 700]);
        assert_eq!(credits, vec![0, 0, 0]);
    }

    #[test]
    fn credit_walk_conserves_reduction() {
        let texp = 10_000;
        let spans = [9_000u64, 2_000, 7_000, 1_500, 1_200];
        let credits = credit_walk(texp, &spans);
        let final_eff = *spans.last().unwrap();
        assert_eq!(credits.iter().sum::<u64>(), texp - final_eff);
    }

    #[test]
    fn credit_walk_stretch_past_texp_resets_baseline_to_texp() {
        // Texp 1000: src→500 (credit 500), A stretches to 1500 — past Texp.
        // The stretch cancels src's whole credit, but the baseline resets to
        // min(1500, 1000) = Texp, not 1500: B's squeeze to 300 is worth
        // 1000 − 300 = 700, never more than Texp.
        let credits = credit_walk(1000, &[500, 1500, 300]);
        assert_eq!(credits, vec![0, 0, 700]);
        assert_eq!(credits.iter().sum::<u64>(), 1000 - 300);
    }

    #[test]
    fn credit_walk_empty() {
        assert!(credit_walk(100, &[]).is_empty());
    }

    #[test]
    fn credit_walk_into_reuses_buffers_across_walks() {
        // Dirty, over-sized buffers from a previous (longer) walk must not
        // leak into the next result.
        let mut credits = vec![7; 8];
        let mut stack = vec![5, 6, 7];
        credit_walk_into(1000, &[900, 300, 500, 100], &mut credits, &mut stack);
        assert_eq!(credits, vec![100, 400, 0, 400]);
        credit_walk_into(500, &[800, 900, 700], &mut credits, &mut stack);
        assert_eq!(credits, vec![0, 0, 0]);
    }

    #[test]
    fn credit_walk_into_matches_quadratic_reference() {
        // The squeeze-stack cancellation must be observationally identical
        // to the original backward scan over all earlier indices.
        fn reference(texp: Nanos, timespans: &[Nanos]) -> Vec<Nanos> {
            let mut credits: Vec<Nanos> = vec![0; timespans.len()];
            let mut prev_out = texp;
            for (i, &out) in timespans.iter().enumerate() {
                if out < prev_out {
                    credits[i] = prev_out - out;
                    prev_out = out;
                } else {
                    let mut excess = out - prev_out;
                    for j in (0..i).rev() {
                        if excess == 0 {
                            break;
                        }
                        let cancel = excess.min(credits[j]);
                        credits[j] -= cancel;
                        excess -= cancel;
                    }
                    prev_out = out.min(texp);
                }
            }
            credits
        }
        let mut state = 0xfeed_beef_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..200 {
            let len = (next() % 12) as usize;
            let texp = next() % 2000 + 1;
            let spans: Vec<Nanos> = (0..len).map(|_| next() % 2500).collect();
            assert_eq!(
                credit_walk(texp, &spans),
                reference(texp, &spans),
                "texp {texp}, spans {spans:?}"
            );
        }
    }

    mod upstream {
        use super::super::*;
        use msc_collector::{Collector, CollectorConfig, PacketMeta};
        use msc_trace::{reconstruct, ReconstructionConfig, Timelines};
        use nf_types::{FiveTuple, NfKind, Proto, Topology};

        /// source -> nat -> vpn; the NAT holds 32 packets (emitted over
        /// 3.2 ms) behind a stall and releases them squeezed into ~3 µs.
        fn squeezed_release() -> (Topology, msc_trace::Reconstruction) {
            let mut b = Topology::builder();
            let nat = b.add_nf(NfKind::Nat, "nat1");
            let vpn = b.add_nf(NfKind::Vpn, "vpn1");
            b.add_entry(nat);
            b.add_edge(nat, vpn);
            let topo = b.build().unwrap();
            let mut c = Collector::new(&topo, CollectorConfig::default());
            let metas: Vec<PacketMeta> = (0..32u16)
                .map(|i| PacketMeta {
                    ipid: i,
                    flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
                })
                .collect();
            for (i, m) in metas.iter().enumerate() {
                c.record_source(i as u64 * 100_000, m);
            }
            c.record_rx(nat, 5_000_000, &metas);
            c.record_tx(nat, 5_003_000, Some(vpn), &metas);
            c.record_rx(vpn, 5_003_000, &metas);
            c.record_tx(vpn, 5_035_000, None, &metas);
            let recon = reconstruct(&topo, &c.into_bundle(), &ReconstructionConfig::default());
            (topo, recon)
        }

        #[test]
        fn squeezing_nf_gets_the_share() {
            let (topo, recon) = squeezed_release();
            let timelines = Timelines::build(&recon);
            let vpn = topo.by_name("vpn1").unwrap();
            let tl = timelines.nf(vpn);
            // The last packet arrives at 5_003_000 and finds the whole batch
            // queued.
            let qp = tl.queuing_period(5_003_000);
            assert!(qp.n_arrived >= 32, "{qp:?}");
            let shares = attribute_upstream(&recon, tl, &qp.preset, vpn, 1e6);
            assert!(!shares.is_empty());
            // The NAT (which squeezed 3.2 ms of emissions into 3 µs) must
            // dominate; the source spread the packets out and gets ~0.
            assert_eq!(shares[0].node, NodeId::Nf(topo.by_name("nat1").unwrap()));
            assert!(shares[0].fraction > 0.9, "{shares:?}");
            let src = shares.iter().find(|s| s.node == NodeId::Source);
            assert!(src.is_none_or(|s| s.fraction < 0.05), "{shares:?}");
            // The recursion anchor is the last PreSet arrival at the NAT.
            assert_eq!(shares[0].last_arrival, Some(3_100_000));
            assert_eq!(shares[0].first_arrival, Some(0));
        }

        #[test]
        fn shares_sum_to_at_most_one() {
            let (topo, recon) = squeezed_release();
            let timelines = Timelines::build(&recon);
            let vpn = topo.by_name("vpn1").unwrap();
            let tl = timelines.nf(vpn);
            let qp = tl.queuing_period(5_003_000);
            let shares = attribute_upstream(&recon, tl, &qp.preset, vpn, 1e6);
            let total: f64 = shares.iter().map(|s| s.fraction).sum();
            assert!(total <= 1.0 + 1e-9, "total {total}");
        }

        #[test]
        fn empty_preset_yields_no_shares() {
            let (topo, recon) = squeezed_release();
            let timelines = Timelines::build(&recon);
            let vpn = topo.by_name("vpn1").unwrap();
            let tl = timelines.nf(vpn);
            let shares = attribute_upstream(&recon, tl, &(0..0), vpn, 1e6);
            assert!(shares.is_empty());
        }
    }
}
