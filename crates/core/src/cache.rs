//! Period-keyed memoization of diagnosis steps.
//!
//! Microscope's own observation (§6.3) makes per-victim recomputation pure
//! waste: victims cluster inside bursts, so thousands of victims at one NF
//! share the *same* queuing period — and therefore the same §4.1 period
//! extraction, §4.2 PreSet attribution and §4.3 recursion anchors. This
//! module caches one [`DiagnosisStep`] per distinct
//! `(nf, anchor_ts, threshold)` so that work happens once per period
//! instead of once per victim.
//!
//! ## Why this preserves bit-identical output
//!
//! Every field of a step is a *pure function of its key* for a fixed
//! reconstruction and configuration: `queuing_period_above` is a
//! deterministic index lookup, and `preset_flows` / `attribute_upstream`
//! are deterministic folds over the period's arrivals (both already
//! canonically ordered to be independent of `HashMap` iteration order).
//! Victim-dependent state — the blame `weight`, depth pruning and the
//! per-victim `visited` cycle list — stays *outside* the cache in the
//! recursion driver. Consequently a hit returns exactly the value a miss
//! would have computed, and the hit/miss interleaving across worker
//! threads cannot affect any diagnosis, only the counters.
//!
//! The concurrent core is generic over [`msc_model::prims::Prims`]:
//! production uses the [`DiagnosisCache`] alias (real `std::sync`
//! primitives), while `tests/model_cache.rs` instantiates
//! [`DiagnosisCacheCore`] with `ModelPrims` and model-checks that shard
//! insert/lookup races never surface a value under the wrong key (see
//! DESIGN.md §7).

use crate::local::LocalScores;
use crate::propagation::UpstreamShare;
use msc_model::prims::{Atomic, Ordering, Prims, SharedLock, StdPrims};
use msc_trace::QueuingPeriod;
use nf_types::{FiveTuple, Nanos, NfId};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Cache key: `(nf, anchor timestamp, §7 start threshold)`. Anchors — not
/// period starts — key the cache because `queuing_period(t)` is resolved
/// *by* the lookup; batched upstream sends give many victims the same
/// anchor, and §4.3 recursion anchors (an upstream period's last PreSet
/// arrival) collide across victims of the same burst by construction.
pub type StepKey = (NfId, Nanos, u64);

/// The memoized per-period work of one §4.3 recursion step.
///
/// `qp`, `scores` and `preset_flows` are computed when the entry is built;
/// `shares` stays lazy (most steps never need §4.2 — the input share is
/// pruned or the period is empty) and is filled at most once per *period*
/// rather than once per victim.
#[derive(Debug)]
pub struct DiagnosisStep {
    /// The §4.1 queuing period at the key's anchor.
    pub qp: QueuingPeriod,
    /// Local `Si`/`Sp` scores of that period.
    pub scores: LocalScores,
    /// Flows of the PreSet packets (culprit flows for local blame).
    pub preset_flows: Vec<(FiveTuple, f64)>,
    /// Lazy §4.2 upstream attribution of the period's PreSet.
    pub shares: OnceLock<Vec<UpstreamShare>>,
}

impl DiagnosisStep {
    /// The upstream shares, computing them on first use. Concurrent racers
    /// may both run `make`, but it is a pure function of the step's key, so
    /// whichever value wins is identical.
    pub fn shares_or_init(&self, make: impl FnOnce() -> Vec<UpstreamShare>) -> &[UpstreamShare] {
        self.shares.get_or_init(make)
    }
}

/// Cache statistics for one diagnosis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Step lookups answered from the cache.
    pub hits: u64,
    /// Step lookups that computed a fresh entry. Under concurrent racing
    /// misses on one key this may slightly overcount `entries`.
    pub misses: u64,
    /// Distinct entries resident at the end of the run.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The production cache: [`DiagnosisCacheCore`] over real `std::sync`
/// primitives.
pub type DiagnosisCache = DiagnosisCacheCore<StdPrims>;

/// A sharded concurrent map from [`StepKey`] to immutable `Arc`ed
/// [`DiagnosisStep`]s, shared read-mostly across the diagnosis workers.
///
/// Sharding keeps lock contention negligible (readers of different periods
/// rarely collide), and entries are inserted with first-write-wins so a
/// racing duplicate computation is dropped, never swapped in after another
/// thread already observed the first value.
pub struct DiagnosisCacheCore<P: Prims> {
    shards: Vec<P::Lock<HashMap<StepKey, Arc<DiagnosisStep>>>>,
    hits: P::AU64,
    misses: P::AU64,
}

const SHARDS: usize = 64;

impl<P: Prims> DiagnosisCacheCore<P> {
    /// An empty cache with the production shard count.
    pub fn new() -> Self {
        Self::with_shards(SHARDS)
    }

    /// An empty cache with `shards` shards. Model tests use a tiny shard
    /// count to force key collisions into one lock; production always goes
    /// through [`new`](Self::new).
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| {
                    <P::Lock<HashMap<StepKey, Arc<DiagnosisStep>>> as SharedLock<_>>::new(
                        HashMap::new(),
                    )
                })
                .collect(),
            hits: P::AU64::new(0),
            misses: P::AU64::new(0),
        }
    }

    fn shard(&self, key: &StepKey) -> &P::Lock<HashMap<StepKey, Arc<DiagnosisStep>>> {
        // Cheap deterministic mix of the key fields; only shard balance
        // depends on it, never output.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The step for `key`, computing it with `make` on a miss. `make` runs
    /// *outside* the shard lock, so a slow §4.1 walk never blocks readers
    /// of other keys in the same shard.
    pub fn step(&self, key: StepKey, make: impl FnOnce() -> DiagnosisStep) -> Arc<DiagnosisStep> {
        let shard = self.shard(&key);
        if let Some(step) = shard.read().get(&key) {
            // ordering: statistics counter; nothing is published through it
            // and only the eventual total is read.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(step);
        }
        // ordering: statistics counter, as above.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(make());
        let mut w = shard.write();
        // First insert wins: if another thread raced us here, keep its
        // entry (the values are identical anyway; keeping the resident one
        // means every Arc ever handed out aliases a single allocation).
        Arc::clone(w.entry(key).or_insert(fresh))
    }

    /// Current statistics. Counters are `Relaxed`; exact under `threads=1`,
    /// approximate (but close) under concurrency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ordering: statistics counters; totals only, no ordering role.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: as above.
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len() as u64).sum(),
        }
    }
}

impl<P: Prims> Default for DiagnosisCacheCore<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::Interval;

    fn dummy_step(n: u64) -> DiagnosisStep {
        DiagnosisStep {
            qp: QueuingPeriod {
                interval: Interval::new(0, n),
                preset: 0..0,
                n_arrived: n,
                n_processed: 0,
            },
            scores: LocalScores { si: 0.0, sp: 0.0 },
            preset_flows: Vec::new(),
            shares: OnceLock::new(),
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_entry() {
        let cache = DiagnosisCache::new();
        let key = (NfId(3), 1_000, 0);
        let a = cache.step(key, || dummy_step(7));
        let b = cache.step(key, || panic!("must not recompute on a hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = DiagnosisCache::new();
        let a = cache.step((NfId(0), 1, 0), || dummy_step(1));
        let b = cache.step((NfId(0), 2, 0), || dummy_step(2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn single_shard_cache_keeps_keys_apart() {
        let cache: DiagnosisCache = DiagnosisCacheCore::with_shards(1);
        let a = cache.step((NfId(1), 10, 0), || dummy_step(10));
        let b = cache.step((NfId(2), 20, 0), || dummy_step(20));
        assert_eq!(a.qp.n_arrived, 10);
        assert_eq!(b.qp.n_arrived, 20);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn shares_init_once() {
        let step = dummy_step(1);
        let first = step.shares_or_init(Vec::new).len();
        assert_eq!(first, 0);
        let again = step.shares_or_init(|| {
            vec![UpstreamShare {
                node: nf_types::NodeId::Source,
                fraction: 1.0,
                first_arrival: None,
                last_arrival: None,
            }]
        });
        assert!(again.is_empty(), "OnceLock must keep the first value");
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(DiagnosisCache::new().stats().hit_rate(), 0.0);
    }
}
