//! In-NF misbehaviour detection (§7, "Problems not caused by long queues").
//!
//! Long latency can come from the queue *or* from the NF itself taking too
//! long inside its processing loop. The paper: "we can know the delay
//! within the NF by checking the timestamp difference of the packet in the
//! input queue and the output queue, and report that those packets with
//! large in-NF delay are caused by misbehaviors of NFs". This module does
//! exactly that on reconstructed traces: a hop whose in-NF time (read →
//! send) far exceeds what its batch should cost at the peak rate — while
//! the queue ahead of it was short — is flagged as NF misbehaviour, with
//! the flows sharing the slow batch reported for pattern analysis.

use msc_trace::{Reconstruction, Timelines};
use nf_types::{FiveTuple, Nanos, NfId};
use std::collections::HashMap;

/// One misbehaving (NF, batch) observation.
#[derive(Debug, Clone)]
pub struct Misbehaviour {
    /// The NF.
    pub nf: NfId,
    /// When the slow batch was read.
    pub read_ts: Nanos,
    /// Measured in-NF time of the batch.
    pub in_nf_ns: Nanos,
    /// What the batch should have cost at the NF's peak rate.
    pub expected_ns: Nanos,
    /// Flows of the packets in the slow batch (with packet counts).
    pub flows: Vec<(FiveTuple, u32)>,
}

impl Misbehaviour {
    /// Slowdown factor versus the expected batch cost.
    pub fn slowdown(&self) -> f64 {
        self.in_nf_ns as f64 / self.expected_ns.max(1) as f64
    }
}

/// Detection parameters.
#[derive(Debug, Clone)]
pub struct MisbehaviourConfig {
    /// Flag batches slower than this multiple of the expected cost.
    pub slowdown_factor: f64,
    /// Ignore batches whose queuing period held more than this many packets
    /// (a long queue means the delay is queue-caused, the normal §4 path).
    pub max_queue_len: i64,
}

impl Default for MisbehaviourConfig {
    fn default() -> Self {
        Self {
            slowdown_factor: 4.0,
            max_queue_len: 64,
        }
    }
}

/// Scans all reconstructed hops for in-NF misbehaviour.
///
/// `peak_rates[i]` is `r_i` for `NfId(i)`, as everywhere else. Returns one
/// entry per distinct slow batch, sorted by slowdown (worst first).
pub fn detect_misbehaviour(
    recon: &Reconstruction,
    timelines: &Timelines,
    peak_rates: &[f64],
    cfg: &MisbehaviourConfig,
) -> Vec<Misbehaviour> {
    // Group hop observations by (nf, batch read ts): all packets of one
    // batch share read/send timestamps.
    struct Batch {
        sent_ts: Nanos,
        flows: HashMap<FiveTuple, u32>,
        size: u32,
        arrival_of_first: Nanos,
    }
    let mut batches: HashMap<(NfId, Nanos), Batch> = HashMap::new();
    for (t_idx, tr) in recon.traces.iter().enumerate() {
        for h in recon.hops_of(t_idx) {
            let Some(sent) = h.sent_ts else { continue };
            let b = batches.entry((h.nf, h.read_ts)).or_insert(Batch {
                sent_ts: sent,
                flows: HashMap::new(),
                size: 0,
                arrival_of_first: h.arrival_ts,
            });
            b.size += 1;
            b.arrival_of_first = b.arrival_of_first.min(h.arrival_ts);
            *b.flows.entry(tr.flow).or_insert(0) += 1;
        }
    }

    let mut out: Vec<Misbehaviour> = Vec::new();
    // lint: order-insensitive(every accepted batch lands in `out`, which is fully sorted by (slowdown, nf, read_ts) before returning)
    for ((nf, read_ts), b) in batches {
        let rate = peak_rates[nf.0 as usize];
        let expected = (b.size as f64 / rate * 1e9).round() as Nanos;
        let in_nf = b.sent_ts.saturating_sub(read_ts);
        if (in_nf as f64) < cfg.slowdown_factor * expected as f64 {
            continue;
        }
        // Rule out queue-caused delay: the batch must have met a short
        // queue (otherwise §4.1's local diagnosis already covers it).
        let qp = timelines.nf(nf).queuing_period(b.arrival_of_first);
        if qp.queue_len() > cfg.max_queue_len {
            continue;
        }
        let mut flows: Vec<(FiveTuple, u32)> = b.flows.into_iter().collect();
        // Tie-break equal counts on the flow tuple: the counts come out of a
        // HashMap, so equal-count flows would otherwise order randomly.
        flows.sort_by_key(|&(f, n)| (std::cmp::Reverse(n), f));
        out.push(Misbehaviour {
            nf,
            read_ts,
            in_nf_ns: in_nf,
            expected_ns: expected,
            flows,
        });
    }
    out.sort_by(|a, b| {
        b.slowdown()
            .partial_cmp(&a.slowdown())
            .expect("finite")
            .then_with(|| (a.nf, a.read_ts).cmp(&(b.nf, b.read_ts)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_trace::{reconstruct, ReconstructionConfig};
    use nf_sim::{Fault, NfConfig, RoutePolicy, ServiceModel, SimConfig, Simulation};
    use nf_types::{FlowAggregate, Packet, PortRange, Prefix, Proto, ProtoMatch, Topology};

    fn chain() -> (Topology, Vec<NfConfig>) {
        let mut b = Topology::builder();
        let fw = b.add_nf(nf_types::NfKind::Firewall, "fw1");
        let v = b.add_nf(nf_types::NfKind::Vpn, "vpn1");
        b.add_entry(fw);
        b.add_edge(fw, v);
        let t = b.build().unwrap();
        let cfgs = vec![
            NfConfig::new(ServiceModel::deterministic(600), RoutePolicy::Fixed(v)),
            NfConfig::new(ServiceModel::deterministic(1_500), RoutePolicy::Exit),
        ];
        (t, cfgs)
    }

    fn bug_rule(sport: u16) -> FlowAggregate {
        FlowAggregate {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            proto: ProtoMatch::Any,
            src_port: PortRange::exact(sport),
            dst_port: PortRange::ANY,
        }
    }

    #[test]
    fn slow_path_on_unloaded_nf_is_misbehaviour() {
        // Light traffic (no queues) with a 50 µs/packet slow path for one
        // flow: the delay is inside the NF, not in any queue.
        let (t, cfgs) = chain();
        let mut sim = Simulation::new(t.clone(), cfgs, SimConfig::default());
        sim.add_fault(Fault::BugRule {
            nf: t.by_name("fw1").unwrap(),
            matches: bug_rule(7777),
            per_packet_ns: 50_000,
        });
        let mut packets = Vec::new();
        for i in 0..200u64 {
            let sport = if i % 50 == 25 {
                7777
            } else {
                1000 + (i % 30) as u16
            };
            let flow = FiveTuple::new(0x0a000001, 0x14000001, sport, 80, Proto::TCP);
            packets.push(Packet::new(i, flow, 64, i * 100_000)); // 10 kpps
        }
        let out = sim.run(&packets);
        let recon = reconstruct(&t, &out.bundle, &ReconstructionConfig::default());
        let timelines = Timelines::build(&recon);
        let found = detect_misbehaviour(
            &recon,
            &timelines,
            &[1e9 / 600.0, 1e9 / 1_500.0],
            &MisbehaviourConfig::default(),
        );
        assert!(!found.is_empty(), "slow batches must be flagged");
        for m in &found {
            assert_eq!(m.nf, t.by_name("fw1").unwrap());
            assert!(m.slowdown() > 4.0);
            // The trigger flow is in every slow batch.
            assert!(m.flows.iter().any(|(f, _)| f.src_port == 7777), "{m:?}");
        }
    }

    #[test]
    fn healthy_run_reports_nothing() {
        let (t, cfgs) = chain();
        let sim = Simulation::new(t.clone(), cfgs, SimConfig::default());
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let packets: Vec<Packet> = (0..500u64)
            .map(|i| Packet::new(i, flow, 64, i * 10_000))
            .collect();
        let out = sim.run(&packets);
        let recon = reconstruct(&t, &out.bundle, &ReconstructionConfig::default());
        let timelines = Timelines::build(&recon);
        let found = detect_misbehaviour(
            &recon,
            &timelines,
            &[1e9 / 600.0, 1e9 / 1_500.0],
            &MisbehaviourConfig::default(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn queue_caused_delay_is_not_misbehaviour() {
        // A line-rate burst builds a real queue at the firewall; the long
        // waits are queue-caused and must NOT be flagged (that is §4.1's
        // job). In-batch service stays at the normal per-packet cost.
        let (t, cfgs) = chain();
        let sim = Simulation::new(t.clone(), cfgs, SimConfig::default());
        let flow = FiveTuple::new(1, 2, 3, 4, Proto::UDP);
        let packets: Vec<Packet> = (0..600u64)
            .map(|i| Packet::new(i, flow, 64, i * 120))
            .collect();
        let out = sim.run(&packets);
        let recon = reconstruct(&t, &out.bundle, &ReconstructionConfig::default());
        let timelines = Timelines::build(&recon);
        let found = detect_misbehaviour(
            &recon,
            &timelines,
            &[1e9 / 600.0, 1e9 / 1_500.0],
            &MisbehaviourConfig::default(),
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
