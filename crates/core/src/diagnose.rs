//! The recursive diagnosis driver (§4.3) and the [`Microscope`] facade.

use crate::cache::{CacheStats, DiagnosisCache, DiagnosisStep};
use crate::local::local_scores;
use crate::propagation::{attribute_upstream_with, UpstreamScratch};
use crate::victim::{find_victims_with, Victim, VictimConfig};
use msc_trace::{ArrivalKind, Reconstruction, Timelines};
use nf_types::{FiveTuple, Interval, Nanos, NfId, NodeId, Topology};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// How a culprit contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CulpritKind {
    /// The node processed packets slower than its peak rate (interrupt,
    /// cache misses, a bug's slow path...). Never applies to the source.
    LocalProcessing,
    /// The node *is* the traffic source and offered a burst.
    SourceBurst,
}

/// One culprit of one victim, with its share of the blame.
#[derive(Debug, Clone, PartialEq)]
pub struct Culprit {
    /// The culprit node.
    pub node: NodeId,
    /// Local slowdown or source burst.
    pub kind: CulpritKind,
    /// Blame mass in packets (fractions of the victim's queue length).
    pub score: f64,
    /// The queuing period (or burst window) this blame was derived from —
    /// the culprit's activity window (Fig. 15 measures victim − culprit
    /// gaps from this).
    pub window: Interval,
    /// Flows of the culprit packets with packet counts (capped), for
    /// pattern aggregation. Empty when no flow information applies.
    pub flows: Vec<(FiveTuple, f64)>,
}

/// A diagnosed victim: ranked culprits.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The victim.
    pub victim: Victim,
    /// Culprits sorted by descending score, merged per (node, kind).
    pub culprits: Vec<Culprit>,
    /// How many recursion steps the diagnosis took.
    pub recursions: usize,
}

/// Diagnosis configuration.
#[derive(Debug, Clone)]
pub struct DiagnosisConfig {
    /// Victim selection.
    pub victims: VictimConfig,
    /// Stop attributing/recursing below this blame fraction (each victim
    /// starts with a total blame of 1.0 that splits across culprits). Keep
    /// this well under `1 / max_upstream_fanout` or multi-path propagation
    /// gets pruned at merge-heavy NFs.
    pub min_score: f64,
    /// Hard recursion-depth cap (safety net; the paper's bound is the sum
    /// of upstream counts and is set automatically from the topology).
    pub max_depth: usize,
    /// Cap on distinct flows reported per culprit.
    pub max_flows_per_culprit: usize,
    /// Workers for victim selection and per-victim diagnosis (`0` = auto,
    /// `1` = sequential). Every victim's §4.1/§4.2 walk is independent and
    /// results merge in victim order, so the output is bit-identical for
    /// any worker count.
    pub threads: usize,
    /// Memoize §4.1/§4.2 step results per `(nf, anchor, threshold)` across
    /// victims (see [`crate::cache`]). Cache entries are pure functions of
    /// their key, so this never changes the output — disabling it exists
    /// for benchmarking and for bit-identity tests.
    pub cache: bool,
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        Self {
            victims: VictimConfig::default(),
            min_score: 0.02,
            max_depth: 16,
            max_flows_per_culprit: 64,
            threads: 1,
            cache: true,
        }
    }
}

/// The Microscope diagnosis engine.
///
/// Construct once per deployment with the topology and the offline-measured
/// peak rates `r_i` (§4.1 footnote: stress-test each NF offline), then call
/// [`Microscope::diagnose_all`] on each run's reconstruction.
pub struct Microscope {
    topology: Topology,
    /// Peak processing rate per NF, packets/second.
    peak_rates: Vec<f64>,
    cfg: DiagnosisConfig,
}

impl Microscope {
    /// Creates the engine. `peak_rates[i]` is `r_i` for `NfId(i)`.
    pub fn new(topology: Topology, peak_rates: Vec<f64>, cfg: DiagnosisConfig) -> Self {
        assert_eq!(
            peak_rates.len(),
            topology.len(),
            "need one peak rate per NF"
        );
        assert!(peak_rates.iter().all(|&r| r > 0.0));
        Self {
            topology,
            peak_rates,
            cfg,
        }
    }

    /// The topology this engine diagnoses.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Finds and diagnoses all victims in a run.
    ///
    /// Both victim selection and the per-victim causal walks shard across
    /// `cfg.threads` workers; results merge in victim order, so the output
    /// is identical to a single-threaded run.
    pub fn diagnose_all(&self, recon: &Reconstruction, timelines: &Timelines) -> Vec<Diagnosis> {
        self.diagnose_all_stats(recon, timelines).0
    }

    /// [`Microscope::diagnose_all`], also returning the step-cache
    /// statistics of the run (all zeros when `cfg.cache` is off).
    pub fn diagnose_all_stats(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
    ) -> (Vec<Diagnosis>, CacheStats) {
        let victims = find_victims_with(recon, &self.cfg.victims, self.cfg.threads);
        let cache = self.cfg.cache.then(DiagnosisCache::new);
        let diagnoses = nf_types::par_map(self.cfg.threads, &victims, |_, &v| {
            self.diagnose_with(recon, timelines, cache.as_ref(), v)
        });
        let stats = cache.map(|c| c.stats()).unwrap_or_default();
        (diagnoses, stats)
    }

    /// Diagnoses one victim (uncached).
    pub fn diagnose(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
        victim: Victim,
    ) -> Diagnosis {
        self.diagnose_with(recon, timelines, None, victim)
    }

    /// Diagnoses one victim, sharing per-period work through `cache` when
    /// one is supplied. Cache entries are pure functions of their key, so
    /// the result is identical either way.
    pub fn diagnose_with(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
        cache: Option<&DiagnosisCache>,
        victim: Victim,
    ) -> Diagnosis {
        let mut acc: HashMap<(NodeId, u8), Culprit> = HashMap::new();
        let mut recursions = 0usize;
        let mut visited: Vec<(NfId, Nanos)> = Vec::new();
        let mut scratch = UpstreamScratch::default();
        self.attribute(
            recon,
            timelines,
            cache,
            &mut scratch,
            victim.nf,
            victim.arrival_ts,
            1.0,
            0,
            &mut acc,
            &mut recursions,
            &mut visited,
        );
        let mut culprits: Vec<Culprit> = acc.into_values().collect();
        // Full tie-break past the score: the accumulator is a HashMap, so
        // without it equal-score culprits would surface in an order that
        // varies run to run (and thread count to thread count).
        culprits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.node.cmp(&b.node))
                .then_with(|| a.kind.cmp(&b.kind))
        });
        Diagnosis {
            victim,
            culprits,
            recursions,
        }
    }

    /// Recursive core: diagnoses the queuing period found at `nf` by a
    /// packet arriving at `t`, distributing `weight` (the victim's blame
    /// mass routed here) into local and upstream culprits.
    #[allow(clippy::too_many_arguments)]
    fn attribute(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
        cache: Option<&DiagnosisCache>,
        scratch: &mut UpstreamScratch,
        nf: NfId,
        t: Nanos,
        weight: f64,
        depth: usize,
        acc: &mut HashMap<(NodeId, u8), Culprit>,
        recursions: &mut usize,
        visited: &mut Vec<(NfId, Nanos)>,
    ) {
        if weight < self.cfg.min_score || depth > self.cfg.max_depth {
            return;
        }
        // The whole §4.1 step — period extraction, local scores and the
        // period's culprit flows — is a pure function of (nf, t), so it is
        // shared across every victim that lands in this period.
        let step = match cache {
            Some(c) => c.step((nf, t, 0), || self.make_step(recon, timelines, nf, t)),
            None => Arc::new(self.make_step(recon, timelines, nf, t)),
        };
        let qp = &step.qp;
        let preset_flows = &step.preset_flows;

        if qp.is_empty() || qp.queue_len() <= 0 {
            // No queue: the packet was delayed inside the NF itself
            // (misbehaving NF, §7) — all blame local.
            self.add(
                acc,
                Culprit {
                    node: NodeId::Nf(nf),
                    kind: CulpritKind::LocalProcessing,
                    score: weight,
                    window: qp.interval,
                    flows: preset_flows.clone(),
                },
            );
            return;
        }

        let scores = step.scores;
        let total = scores.total().max(f64::EPSILON);
        let local_share = weight * (scores.sp.max(0.0) / total);
        let input_share = weight * (scores.si.max(0.0) / total);

        if local_share >= self.cfg.min_score {
            self.add(
                acc,
                Culprit {
                    node: NodeId::Nf(nf),
                    kind: CulpritKind::LocalProcessing,
                    score: local_share,
                    window: qp.interval,
                    flows: preset_flows.clone(),
                },
            );
        }

        if input_share < self.cfg.min_score {
            return;
        }

        // §4.2: split the input share across upstream nodes by timespan
        // reduction. Lazy per period: only the first victim needing it
        // pays; later victims (and recursion steps) reuse the shares.
        let shares = step.shares_or_init(|| {
            attribute_upstream_with(
                recon,
                timelines.nf(nf),
                &qp.preset,
                nf,
                self.peak_rates[nf.0 as usize],
                scratch,
            )
        });
        if shares.is_empty() {
            // PreSet unresolvable: keep the blame at this NF's input —
            // attribute to source as a catch-all.
            self.add(
                acc,
                Culprit {
                    node: NodeId::Source,
                    kind: CulpritKind::SourceBurst,
                    score: input_share,
                    window: qp.interval,
                    flows: preset_flows.clone(),
                },
            );
            return;
        }
        for share in shares {
            let s = input_share * share.fraction;
            if s < self.cfg.min_score {
                continue;
            }
            match share.node {
                NodeId::Source => {
                    self.add(
                        acc,
                        Culprit {
                            node: NodeId::Source,
                            kind: CulpritKind::SourceBurst,
                            score: s,
                            window: Interval::new(
                                share.first_arrival.unwrap_or(qp.interval.start),
                                qp.interval.end,
                            ),
                            flows: preset_flows.clone(),
                        },
                    );
                }
                NodeId::Nf(up) => {
                    // §4.3: recursively diagnose the queuing period the
                    // PreSet packets experienced at the upstream NF. The
                    // period is anchored at the *last* PreSet arrival there:
                    // it reaches back past the first PreSet arrival to the
                    // previous queue-empty point, so it covers both packets
                    // already queued ahead (Fig. 6's grey packets at C) and
                    // the build-up behind an interrupt at that NF.
                    let anchor = share.last_arrival.unwrap_or(qp.interval.start);
                    if visited.contains(&(up, anchor)) {
                        // Already expanded this (NF, period): credit the NF
                        // locally instead of looping.
                        self.add(
                            acc,
                            Culprit {
                                node: NodeId::Nf(up),
                                kind: CulpritKind::LocalProcessing,
                                score: s,
                                window: qp.interval,
                                flows: Vec::new(),
                            },
                        );
                        continue;
                    }
                    visited.push((up, anchor));
                    *recursions += 1;
                    self.attribute(
                        recon,
                        timelines,
                        cache,
                        scratch,
                        up,
                        anchor,
                        s,
                        depth + 1,
                        acc,
                        recursions,
                        visited,
                    );
                }
            }
        }
    }

    /// Computes one memoizable diagnosis step: the §4.1 queuing period at
    /// `(nf, t)`, its local scores and its PreSet flows. Pure in
    /// `(nf, t)` for a fixed reconstruction and config — the cache relies
    /// on that.
    fn make_step(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
        nf: NfId,
        t: Nanos,
    ) -> DiagnosisStep {
        let qp = timelines.nf(nf).queuing_period(t);
        let scores = local_scores(&qp, self.peak_rates[nf.0 as usize]);
        let preset_flows = self.preset_flows(recon, timelines, nf, &qp.preset);
        DiagnosisStep {
            qp,
            scores,
            preset_flows,
            shares: OnceLock::new(),
        }
    }

    /// The flows of PreSet packets with packet counts, capped.
    fn preset_flows(
        &self,
        recon: &Reconstruction,
        timelines: &Timelines,
        nf: NfId,
        preset: &std::ops::Range<usize>,
    ) -> Vec<(FiveTuple, f64)> {
        let timeline = timelines.nf(nf);
        let mut counts: HashMap<FiveTuple, f64> = HashMap::new();
        // Sample huge presets (wild-run periods can hold 10^5+ arrivals);
        // per-flow weights stay proportional under a uniform stride.
        const MAX_PRESET_SAMPLES: usize = 16_384;
        let stride = (preset.len() / MAX_PRESET_SAMPLES).max(1);
        for a in timeline.arrivals[preset.clone()].iter().step_by(stride) {
            if a.kind != ArrivalKind::Queued {
                continue;
            }
            let flow = recon.traces[a.trace].flow;
            *counts.entry(flow).or_insert(0.0) += stride as f64;
        }
        let mut v: Vec<(FiveTuple, f64)> = counts.into_iter().collect();
        // Flow tie-break keeps the truncated set independent of HashMap
        // iteration order.
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite counts")
                .then_with(|| a.0.cmp(&b.0))
        });
        v.truncate(self.cfg.max_flows_per_culprit);
        v
    }

    fn add(&self, acc: &mut HashMap<(NodeId, u8), Culprit>, c: Culprit) {
        let kind_tag = match c.kind {
            CulpritKind::LocalProcessing => 0u8,
            CulpritKind::SourceBurst => 1,
        };
        match acc.entry((c.node, kind_tag)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(c);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cur = e.get_mut();
                cur.score += c.score;
                cur.window = cur.window.hull(&c.window);
                for (f, w) in c.flows {
                    match cur.flows.iter_mut().find(|(g, _)| *g == f) {
                        Some((_, cw)) => *cw += w,
                        None => {
                            if cur.flows.len() < self.cfg.max_flows_per_culprit {
                                cur.flows.push((f, w));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimKind;
    use msc_collector::{Collector, CollectorConfig, PacketMeta};
    use msc_trace::{reconstruct, ReconstructionConfig};
    use nf_types::{NfKind, Proto};

    /// Hand-built scenario: a NAT→VPN chain where the VPN's queue builds
    /// because the NAT released a squeezed burst after an interrupt.
    /// Peak rates: both 1 Mpps (1 µs/packet).
    fn build_interrupt_scenario() -> (Topology, Reconstruction) {
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        let vpn = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(nat);
        b.add_edge(nat, vpn);
        let topo = b.build().unwrap();

        let mut c = Collector::new(&topo, CollectorConfig::default());
        let metas: Vec<PacketMeta> = (0..64u16)
            .map(|i| PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
            })
            .collect();
        // Source emits 64 packets spread over 6.4 ms (100 µs apart) — well
        // under peak.
        for (i, m) in metas.iter().enumerate() {
            c.record_source(i as u64 * 100_000, m);
        }
        // NAT is interrupted until t = 7 ms: it reads everything in two
        // 32-batches and releases them squeezed back-to-back.
        c.record_rx(nat, 7_000_000, &metas[..32]);
        c.record_rx(nat, 7_100_000, &metas[32..]);
        c.record_tx(nat, 7_100_000, Some(vpn), &metas[..32]);
        c.record_tx(nat, 7_100_100, Some(vpn), &metas[32..]);
        // VPN receives the squeezed burst: its queue holds the second
        // batch while it drains the first at its 1 µs/packet pace.
        c.record_rx(vpn, 7_100_000, &metas[..32]);
        c.record_rx(vpn, 7_132_000, &metas[32..]);
        c.record_tx(vpn, 7_132_000, None, &metas[..32]);
        c.record_tx(vpn, 7_164_000, None, &metas[32..]);
        let recon = reconstruct(&topo, &c.into_bundle(), &ReconstructionConfig::default());
        (topo, recon)
    }

    #[test]
    fn interrupt_blame_propagates_to_upstream_nat() {
        let (topo, recon) = build_interrupt_scenario();
        let timelines = Timelines::build(&recon);
        let ms = Microscope::new(
            topo,
            vec![1e6, 1e6],
            DiagnosisConfig {
                victims: VictimConfig {
                    latency: crate::victim::LatencyThreshold::Absolute(0),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Diagnose the last packet at the VPN: it arrived just behind the
        // squeezed burst and found a queue (the whole second batch).
        let victim = Victim {
            trace: 63,
            nf: NfId(1),
            hop: 1,
            arrival_ts: 7_100_100,
            observed_ts: 7_164_000,
            kind: VictimKind::HighLatency,
        };
        let d = ms.diagnose(&recon, &timelines, victim);
        assert!(!d.culprits.is_empty());
        // The top culprit must be the NAT (its squeezed release caused the
        // VPN queue), not the VPN itself and not the source (which sent at
        // a tame 10 kpps).
        let top = &d.culprits[0];
        assert_eq!(
            top.node,
            NodeId::Nf(NfId(0)),
            "culprits: {:?}",
            d.culprits
                .iter()
                .map(|c| (c.node, c.kind, c.score))
                .collect::<Vec<_>>()
        );
        assert_eq!(top.kind, CulpritKind::LocalProcessing);
        assert!(d.recursions >= 1, "must have recursed into the NAT");
    }

    #[test]
    fn source_burst_blamed_at_entry_nf() {
        // Source sends 64 packets back-to-back (50 ns apart = 20 Mpps) into
        // a 1 Mpps NAT: the queue is the source's fault.
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        b.add_entry(nat);
        let topo = b.build().unwrap();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        let metas: Vec<PacketMeta> = (0..64u16)
            .map(|i| PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 7777, 80, Proto::TCP),
            })
            .collect();
        for (i, m) in metas.iter().enumerate() {
            c.record_source(1_000_000 + i as u64 * 50, m);
        }
        c.record_rx(nat, 1_000_100, &metas[..32]);
        c.record_rx(nat, 1_032_100, &metas[32..]);
        c.record_tx(nat, 1_032_100, None, &metas[..32]);
        c.record_tx(nat, 1_064_100, None, &metas[32..]);
        let recon = reconstruct(&topo, &c.into_bundle(), &ReconstructionConfig::default());
        let timelines = Timelines::build(&recon);
        let ms = Microscope::new(topo, vec![1e6], DiagnosisConfig::default());
        let victim = Victim {
            trace: 63,
            nf: NfId(0),
            hop: 0,
            arrival_ts: 1_000_000 + 63 * 50,
            observed_ts: 1_064_100,
            kind: VictimKind::HighLatency,
        };
        let d = ms.diagnose(&recon, &timelines, victim);
        let top = &d.culprits[0];
        assert_eq!(top.node, NodeId::Source, "culprits: {:?}", d.culprits);
        assert_eq!(top.kind, CulpritKind::SourceBurst);
        // The culprit flows contain the bursting flow.
        assert!(top.flows.iter().any(|(f, _)| f.src_port == 7777));
    }

    #[test]
    fn slow_local_nf_blamed_locally() {
        // Source sends at a gentle 100 kpps, but the NF only manages
        // ~100 packets in 3.2 ms (peak says 3200): local problem.
        let mut b = Topology::builder();
        let nat = b.add_nf(NfKind::Nat, "nat1");
        b.add_entry(nat);
        let topo = b.build().unwrap();
        let mut c = Collector::new(&topo, CollectorConfig::default());
        let metas: Vec<PacketMeta> = (0..64u16)
            .map(|i| PacketMeta {
                ipid: i,
                flow: FiveTuple::new(0x0a000001, 0x14000001, 1000 + i, 80, Proto::TCP),
            })
            .collect();
        // 10 µs apart = 100 kpps, from t=1ms.
        for (i, m) in metas.iter().enumerate() {
            c.record_source(1_000_000 + i as u64 * 10_000, m);
        }
        // The NF reads them very slowly — one small batch every 200 µs
        // (but never drains the queue: batch == 32 means "not drained", so
        // use full batches late).
        c.record_rx(nat, 1_500_000, &metas[..32]);
        c.record_rx(nat, 2_200_000, &metas[32..]);
        c.record_tx(nat, 2_200_000, None, &metas[..32]);
        c.record_tx(nat, 2_900_000, None, &metas[32..]);
        let recon = reconstruct(&topo, &c.into_bundle(), &ReconstructionConfig::default());
        let timelines = Timelines::build(&recon);
        let ms = Microscope::new(topo, vec![1e6], DiagnosisConfig::default());
        let victim = Victim {
            trace: 63,
            nf: NfId(0),
            hop: 0,
            arrival_ts: 1_000_000 + 63 * 10_000,
            observed_ts: 2_900_000,
            kind: VictimKind::HighLatency,
        };
        let d = ms.diagnose(&recon, &timelines, victim);
        let top = &d.culprits[0];
        assert_eq!(top.node, NodeId::Nf(NfId(0)), "culprits: {:?}", d.culprits);
        assert_eq!(top.kind, CulpritKind::LocalProcessing);
    }

    #[test]
    fn min_score_prunes_noise() {
        let (topo, recon) = build_interrupt_scenario();
        let timelines = Timelines::build(&recon);
        let ms = Microscope::new(
            topo,
            vec![1e6, 1e6],
            DiagnosisConfig {
                min_score: 1e9, // absurd: nothing passes
                ..Default::default()
            },
        );
        let victim = Victim {
            trace: 63,
            nf: NfId(1),
            hop: 1,
            arrival_ts: 7_100_100,
            observed_ts: 7_164_000,
            kind: VictimKind::HighLatency,
        };
        let d = ms.diagnose(&recon, &timelines, victim);
        assert!(d.culprits.is_empty());
        assert_eq!(d.recursions, 0);
    }
}
