//! Microscope: queue-based performance diagnosis for network functions.
//!
//! This crate is the paper's primary contribution (§3–§4). Given the
//! reconstructed traces and per-NF timelines from [`msc_trace`], it answers
//! *why* a packet suffered — which NFs, which flows, and how the blame
//! propagated through queues:
//!
//! 1. **Victim selection** ([`victim`]) — packets with abnormal local
//!    performance at an NF (delay beyond one standard deviation of that
//!    NF's recent history, §4.1) or packets that were dropped.
//! 2. **Local diagnosis** ([`local`]) — over the victim's queuing period of
//!    length `T`, split the queue build-up into an input score
//!    `Si = max(0, n_i − r_i·T)` and a processing score `Sp` (eqs. 1–2);
//!    `Si + Sp` equals the queue length the victim found.
//! 3. **Propagation diagnosis** ([`propagation`]) — trace the PreSet packets
//!    (everything that arrived during the queuing period) back through the
//!    DAG and attribute `Si` to upstream nodes by how much each *squeezed
//!    the timespan* of those packets (§4.2), with the paper's cancellation
//!    rule for NFs that stretched it back out.
//! 4. **Recursive diagnosis** ([`diagnose`]) — an upstream NF that squeezed
//!    the timespan is itself diagnosed over its own queuing period (§4.3),
//!    splitting its share into local and input parts, until the source is
//!    reached or no positive input score remains.
//! 5. **Pattern aggregation** — the per-victim culprits convert into
//!    [`autofocus::CausalRelation`]s and aggregate into the ranked causal
//!    patterns of §4.4 ([`report`]).

#![forbid(unsafe_code)]

pub mod cache;
pub mod diagnose;
pub mod local;
pub mod misbehaviour;
pub mod propagation;
pub mod report;
pub mod streaming;
pub mod victim;

pub use cache::{CacheStats, DiagnosisCache, DiagnosisCacheCore, DiagnosisStep, StepKey};
pub use diagnose::{Culprit, CulpritKind, Diagnosis, DiagnosisConfig, Microscope};
pub use local::{local_scores, LocalScores};
pub use misbehaviour::{detect_misbehaviour, Misbehaviour, MisbehaviourConfig};
pub use propagation::{
    attribute_upstream, attribute_upstream_with, credit_walk, credit_walk_into, UpstreamScratch,
    UpstreamShare,
};
pub use report::{diagnoses_to_relations, rank_culprits, RankedCulprit};
pub use streaming::{NfPeriodStats, PeriodTracker};
pub use victim::{
    find_victims, find_victims_with, LatencyThreshold, Victim, VictimConfig, VictimKind,
};
