//! Victim selection (§4.1): which packets, at which NFs, deserve diagnosis.

use msc_trace::{Reconstruction, TraceOutcome};
use nf_types::{Nanos, NfId};

/// How to pick high-latency victims.
#[derive(Debug, Clone, Copy)]
pub enum LatencyThreshold {
    /// End-to-end latency above this quantile of all delivered packets
    /// (the paper diagnoses the 99th/99.9th percentile).
    Quantile(f64),
    /// End-to-end latency above an absolute bound.
    Absolute(Nanos),
}

/// Victim-selection configuration.
#[derive(Debug, Clone)]
pub struct VictimConfig {
    /// Latency victim rule.
    pub latency: LatencyThreshold,
    /// Also treat dropped packets as victims (they always are in the paper).
    pub include_drops: bool,
    /// An NF hop is "locally abnormal" when its delay exceeds the NF's mean
    /// by this many standard deviations (the paper uses one).
    pub abnormal_sigma: f64,
    /// Cap on the number of victims (keeps diagnosis time bounded on long
    /// runs; the highest-latency victims are kept). `None` = no cap.
    pub max_victims: Option<usize>,
}

impl Default for VictimConfig {
    fn default() -> Self {
        Self {
            latency: LatencyThreshold::Quantile(0.99),
            include_drops: true,
            abnormal_sigma: 1.0,
            max_victims: None,
        }
    }
}

/// What kind of suffering the victim experienced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimKind {
    /// End-to-end latency above the configured threshold.
    HighLatency,
    /// Dropped at an NF ring.
    Drop,
}

/// One (packet, NF) pair to diagnose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Index of the packet's trace in the reconstruction.
    pub trace: usize,
    /// The NF where local performance was abnormal.
    pub nf: NfId,
    /// Hop index within the trace (== hops.len() for drops).
    pub hop: usize,
    /// When the packet arrived at that NF (anchors the queuing period).
    pub arrival_ts: Nanos,
    /// When the problem was *observed* (departure or drop time) — used for
    /// the Fig. 15 culprit→victim gap.
    pub observed_ts: Nanos,
    /// Latency or drop.
    pub kind: VictimKind,
}

/// Per-NF delay statistics used for the abnormality test.
///
/// Accumulates in exact integer arithmetic (`u128` sums) so that sharded
/// accumulation merges associatively: the statistics — and therefore the
/// victim set — are bit-identical no matter how many worker threads the
/// traces were split across.
#[derive(Debug, Clone, Copy, Default)]
struct DelayStats {
    n: u64,
    sum: u128,
    sum_sq: u128,
}

impl DelayStats {
    fn push(&mut self, v: Nanos) {
        self.n += 1;
        self.sum += v as u128;
        self.sum_sq += (v as u128) * (v as u128);
    }

    fn merge(&mut self, other: &DelayStats) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    fn std(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq as f64 / self.n as f64 - m * m).max(0.0).sqrt()
    }
}

/// Selects victims from a reconstruction (sequential).
///
/// High-latency packets yield one victim per NF hop whose local delay
/// (send − arrival) exceeds that NF's `mean + abnormal_sigma·σ`; dropped
/// packets yield a victim at the dropping NF.
pub fn find_victims(recon: &Reconstruction, cfg: &VictimConfig) -> Vec<Victim> {
    find_victims_with(recon, cfg, 1)
}

/// [`find_victims`] sharded across `threads` workers (`0` = auto, `1` =
/// sequential).
///
/// Each phase splits the traces into contiguous chunks and merges shard
/// results in chunk order: latency lists concatenate back into trace
/// order, delay statistics merge in exact integer arithmetic, and per-shard
/// victim lists concatenate in trace order — so the returned victims are
/// bit-identical to the sequential path for any worker count.
pub fn find_victims_with(
    recon: &Reconstruction,
    cfg: &VictimConfig,
    threads: usize,
) -> Vec<Victim> {
    let chunks = nf_types::chunk_ranges(threads, recon.traces.len());

    // Latency threshold.
    let threshold = match cfg.latency {
        LatencyThreshold::Absolute(ns) => ns,
        LatencyThreshold::Quantile(q) => {
            let mut lats: Vec<Nanos> = nf_types::par_map(threads, &chunks, |_, r| {
                recon.traces[r.clone()]
                    .iter()
                    .filter_map(|t| t.latency())
                    .collect::<Vec<Nanos>>()
            })
            .into_iter()
            .flatten()
            .collect();
            if lats.is_empty() {
                Nanos::MAX
            } else {
                // Nearest-rank: the smallest latency with at least ⌈q·N⌉
                // samples at or below it. Rounding instead of taking the
                // ceiling picks a below-quantile latency on small runs and
                // inflates the victim set. Only the rank value is used, so
                // an O(N) selection replaces the full sort.
                let rank = ((lats.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
                let idx = rank.saturating_sub(1).min(lats.len() - 1);
                *lats.select_nth_unstable(idx).1
            }
        }
    };

    // Per-NF delay statistics over all hops. Delays saturate at zero:
    // residual skew on corrected multi-server bundles can leave a send
    // timestamp slightly before the arrival. The hops of a trace range are
    // contiguous in the shared arena, so shards stream flat memory.
    let max_nf = recon
        .hops
        .iter()
        .map(|h| h.nf.0)
        .max()
        .map_or(0, |m| m as usize + 1);
    let shard_stats: Vec<Vec<DelayStats>> = nf_types::par_map(threads, &chunks, |_, r| {
        let mut stats = vec![DelayStats::default(); max_nf];
        for t in r.clone() {
            for h in recon.hops_of(t) {
                if let Some(sent) = h.sent_ts {
                    stats[h.nf.0 as usize].push(sent.saturating_sub(h.arrival_ts));
                }
            }
        }
        stats
    });
    let mut stats = vec![DelayStats::default(); max_nf];
    for shard in &shard_stats {
        for (s, sh) in stats.iter_mut().zip(shard) {
            s.merge(sh);
        }
    }

    let mut victims: Vec<Victim> = nf_types::par_map(threads, &chunks, |_, r| {
        let mut out = Vec::new();
        for t_idx in r.clone() {
            let tr = &recon.traces[t_idx];
            match tr.outcome {
                TraceOutcome::Delivered(_) => {
                    let Some(lat) = tr.latency() else { continue };
                    if lat < threshold {
                        continue;
                    }
                    for (h_idx, h) in recon.hops_of(t_idx).iter().enumerate() {
                        let Some(sent) = h.sent_ts else { continue };
                        let s = &stats[h.nf.0 as usize];
                        let delay = sent.saturating_sub(h.arrival_ts) as f64;
                        if delay > s.mean() + cfg.abnormal_sigma * s.std() {
                            out.push(Victim {
                                trace: t_idx,
                                nf: h.nf,
                                hop: h_idx,
                                arrival_ts: h.arrival_ts,
                                observed_ts: sent,
                                kind: VictimKind::HighLatency,
                            });
                        }
                    }
                }
                TraceOutcome::InferredDrop { nf, at } if cfg.include_drops => {
                    out.push(Victim {
                        trace: t_idx,
                        nf,
                        hop: tr.hop_count(),
                        arrival_ts: at,
                        observed_ts: at,
                        kind: VictimKind::Drop,
                    });
                }
                _ => {}
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();

    if let Some(cap) = cfg.max_victims {
        if victims.len() > cap && cap > 0 {
            // Subsample with an even stride over time so every problem
            // episode in the run keeps victims (a severity-based cut would
            // silently drop whole problem classes).
            victims.sort_by_key(|v| v.observed_ts);
            let stride = victims.len() as f64 / cap as f64;
            let sampled: Vec<Victim> = (0..cap)
                .map(|i| victims[(i as f64 * stride) as usize])
                .collect();
            victims = sampled;
        }
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_trace::{ReconstructedTrace, TraceHop};

    /// One hand-built trace before arena flattening: its own hop list plus
    /// the trace-level fields `recon_with` needs.
    struct TestTrace {
        hops: Vec<TraceHop>,
        emitted_at: Nanos,
        outcome: TraceOutcome,
    }

    fn trace(lat_per_hop: &[(u16, Nanos, Nanos)], delivered: bool) -> TestTrace {
        // (nf, arrival, sent) triples.
        let hops: Vec<TraceHop> = lat_per_hop
            .iter()
            .map(|&(nf, a, s)| TraceHop {
                nf: NfId(nf),
                arrival_ts: a,
                read_ts: a + 1,
                sent_ts: Some(s),
                rx_idx: 0,
            })
            .collect();
        let emitted = lat_per_hop.first().map_or(0, |h| h.1);
        let last = hops.last().and_then(|h| h.sent_ts).unwrap_or(emitted);
        TestTrace {
            hops,
            emitted_at: emitted,
            outcome: if delivered {
                TraceOutcome::Delivered(last)
            } else {
                TraceOutcome::Unresolved
            },
        }
    }

    fn recon_with(tts: Vec<TestTrace>) -> Reconstruction {
        // Build a Reconstruction by hand via the public fields, flattening
        // the per-trace hop lists into the shared arena.
        let mut hops: Vec<TraceHop> = Vec::new();
        let mut traces: Vec<ReconstructedTrace> = Vec::new();
        for tt in tts {
            let start = hops.len() as u32;
            hops.extend(tt.hops);
            traces.push(ReconstructedTrace {
                flow: nf_types::FiveTuple::new(1, 2, 3, 4, nf_types::Proto::TCP),
                emitted_at: tt.emitted_at,
                hops: start..hops.len() as u32,
                outcome: tt.outcome,
            });
        }
        let (paths, hop_path_ids) = msc_trace::PathTrie::index(&traces, &hops);
        Reconstruction {
            traces,
            hops,
            report: Default::default(),
            paths,
            hop_path_ids,
            streams: msc_trace::EdgeStreams::build(
                &{
                    let mut b = nf_types::Topology::builder();
                    let a = b.add_nf(nf_types::NfKind::Nat, "nat1");
                    b.add_entry(a);
                    b.build().unwrap()
                },
                &msc_collector::TraceBundle {
                    logs: vec![msc_collector::NfLog {
                        nf: NfId(0),
                        rx: vec![],
                        tx: vec![],
                        flows: vec![],
                    }],
                    source_flows: vec![],
                },
            ),
            rx_to_trace: vec![vec![]],
        }
    }

    #[test]
    fn tail_latency_victims_found_at_abnormal_hop() {
        // 99 fast packets (1 µs per hop) and 1 slow one (1 ms at nf1).
        let mut traces: Vec<TestTrace> = (0..99)
            .map(|i| {
                let t0 = i * 10_000;
                trace(&[(0, t0, t0 + 1_000), (1, t0 + 1_000, t0 + 2_000)], true)
            })
            .collect();
        let t0 = 2_000_000;
        traces.push(trace(
            &[(0, t0, t0 + 1_000), (1, t0 + 1_000, t0 + 1_000_000)],
            true,
        ));
        let recon = recon_with(traces);
        let victims = find_victims(
            &recon,
            &VictimConfig {
                latency: LatencyThreshold::Quantile(0.99),
                ..Default::default()
            },
        );
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].nf, NfId(1));
        assert_eq!(victims[0].kind, VictimKind::HighLatency);
        assert_eq!(victims[0].trace, 99);
    }

    #[test]
    fn absolute_threshold() {
        let traces = vec![
            trace(&[(0, 0, 500)], true),
            trace(&[(0, 5_000, 5_600)], true),
            trace(&[(0, 10_000, 40_000)], true),
        ];
        let recon = recon_with(traces);
        let victims = find_victims(
            &recon,
            &VictimConfig {
                latency: LatencyThreshold::Absolute(10_000),
                ..Default::default()
            },
        );
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].trace, 2);
    }

    #[test]
    fn drops_are_victims() {
        let mut tr = trace(&[(0, 0, 500)], true);
        tr.outcome = TraceOutcome::InferredDrop {
            nf: NfId(1),
            at: 600,
        };
        let recon = recon_with(vec![tr]);
        let victims = find_victims(&recon, &VictimConfig::default());
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].kind, VictimKind::Drop);
        assert_eq!(victims[0].nf, NfId(1));
        assert_eq!(victims[0].arrival_ts, 600);
    }

    #[test]
    fn quantile_threshold_uses_nearest_rank_ceil() {
        // 10 traces with distinct single-hop latencies 1 µs .. 10 µs.
        let traces: Vec<TestTrace> = (0..10u64)
            .map(|i| {
                let t0 = i * 100_000;
                trace(&[(0, t0, t0 + 1_000 * (i + 1))], true)
            })
            .collect();
        let recon = recon_with(traces);
        let find = |q: f64| {
            find_victims(
                &recon,
                &VictimConfig {
                    latency: LatencyThreshold::Quantile(q),
                    ..Default::default()
                },
            )
        };
        // q = 0.99 over N = 10: nearest rank is ⌈9.9⌉ = 10, i.e. the
        // maximum — only the slowest trace is a victim.
        let victims = find(0.99);
        assert_eq!(victims.len(), 1, "{victims:?}");
        assert_eq!(victims[0].trace, 9);
        // q = 0.91: ⌈9.1⌉ = 10 again. The old round((N−1)·q) formula chose
        // index 8 here, a below-quantile latency that also admitted trace 8.
        let victims = find(0.91);
        assert_eq!(victims.len(), 1, "{victims:?}");
        assert_eq!(victims[0].trace, 9);
        // q = 0.5: nearest rank ⌈5⌉ = 5 → the 5th smallest latency (5 µs).
        // Traces 4..=9 pass the latency gate; the per-hop abnormality test
        // (delay > mean + σ) then keeps the genuinely slow tail.
        let victims = find(0.5);
        assert!(
            victims.iter().all(|v| v.trace >= 4),
            "threshold must be the 5th value: {victims:?}"
        );
        assert!(victims.iter().any(|v| v.trace == 9));
    }

    #[test]
    fn sharded_selection_is_identical_to_sequential() {
        let traces: Vec<TestTrace> = (0..57u64)
            .map(|i| {
                let t0 = i * 100_000;
                // A mix of two NFs and a few drops.
                if i % 13 == 0 {
                    let mut tr = trace(&[(0, t0, t0 + 2_000)], true);
                    tr.outcome = TraceOutcome::InferredDrop {
                        nf: NfId(1),
                        at: t0 + 2_000,
                    };
                    tr
                } else {
                    trace(
                        &[
                            (0, t0, t0 + 1_000 + (i % 7) * 300),
                            (1, t0 + 2_000, t0 + 2_000 + (i % 11) * 500),
                        ],
                        true,
                    )
                }
            })
            .collect();
        let recon = recon_with(traces);
        let cfg = VictimConfig {
            latency: LatencyThreshold::Quantile(0.8),
            ..Default::default()
        };
        let sequential = find_victims(&recon, &cfg);
        assert!(!sequential.is_empty());
        for threads in [2, 3, 4, 8] {
            let sharded = find_victims_with(&recon, &cfg, threads);
            assert_eq!(sharded, sequential, "threads={threads}");
        }
    }

    #[test]
    fn victim_cap_subsamples_evenly_over_time() {
        let mut traces = Vec::new();
        for i in 0..10u64 {
            let t0 = i * 100_000;
            // Increasing hop delay: later traces are worse.
            traces.push(trace(&[(0, t0, t0 + 1_000 * (i + 1))], true));
        }
        let recon = recon_with(traces);
        let victims = find_victims(
            &recon,
            &VictimConfig {
                latency: LatencyThreshold::Absolute(0),
                abnormal_sigma: 0.0,
                max_victims: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(victims.len(), 3);
        // Even stride over the time-ordered victims: early, middle and late
        // episodes all stay represented (severity-based cuts would keep
        // only the tail and silently drop whole problem classes).
        // Only hops above the mean delay (traces 5..=9) are abnormal; the
        // stride keeps an even spread of those five.
        let kept: Vec<usize> = victims.iter().map(|v| v.trace).collect();
        assert_eq!(kept, vec![5, 6, 8]);
    }
}
