//! Rolling queuing-period tracking for the streaming engine.
//!
//! The offline pipeline derives queuing periods from the full per-NF
//! timeline after the run ends ([`msc_trace::NfTimeline`]). A streaming
//! consumer wants a cheap congestion signal *while* the run is in flight:
//! this module folds the collector's per-read drain bit (a read of fewer
//! than `MAX_BATCH` packets means the ring was emptied, §5) into per-NF
//! open/closed period counters in O(1) per read and O(NFs) memory.
//!
//! This is a monitoring proxy, not the diagnosis input: the final report
//! still runs the exact period-keyed diagnosis (and its
//! [`crate::DiagnosisCache`]) over the incrementally built timelines, so
//! streamed diagnoses stay bit-identical to offline ones.

use nf_types::{Nanos, NfId};

/// Rolling period state for one NF.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NfPeriodStats {
    /// Start of the currently open queuing period, if congested now.
    pub open_since: Option<Nanos>,
    /// Queuing periods closed so far.
    pub closed: u64,
    /// Length of the longest closed period.
    pub longest_ns: Nanos,
    /// Total time spent inside closed queuing periods.
    pub busy_ns: Nanos,
    /// Timestamp of the last read observed.
    pub last_read: Option<Nanos>,
}

/// Folds the per-read drain signal into rolling queuing-period counters.
#[derive(Debug, Clone)]
pub struct PeriodTracker {
    nfs: Vec<NfPeriodStats>,
}

impl PeriodTracker {
    /// A tracker for `n_nfs` NFs with no periods open.
    pub fn new(n_nfs: usize) -> Self {
        Self {
            nfs: vec![NfPeriodStats::default(); n_nfs],
        }
    }

    /// Observes one read: a non-drained read opens a period (if none is
    /// open); a drained read closes the open one — the queue emptied, so
    /// whatever build-up existed is over.
    pub fn on_read(&mut self, nf: NfId, ts: Nanos, drained: bool) {
        let st = &mut self.nfs[nf.0 as usize];
        st.last_read = Some(ts);
        if drained {
            if let Some(start) = st.open_since.take() {
                let len = ts.saturating_sub(start);
                st.closed += 1;
                st.longest_ns = st.longest_ns.max(len);
                st.busy_ns = st.busy_ns.saturating_add(len);
            }
        } else if st.open_since.is_none() {
            st.open_since = Some(ts);
        }
    }

    /// Rolling stats for one NF.
    pub fn nf(&self, nf: NfId) -> &NfPeriodStats {
        &self.nfs[nf.0 as usize]
    }

    /// Rolling stats for every NF in `NfId` order.
    pub fn all(&self) -> &[NfPeriodStats] {
        &self.nfs
    }

    /// Number of NFs currently inside an open queuing period.
    pub fn open_periods(&self) -> usize {
        self.nfs.iter().filter(|s| s.open_since.is_some()).count()
    }

    /// Total closed periods across all NFs.
    pub fn closed_periods(&self) -> u64 {
        self.nfs.iter().map(|s| s.closed).sum()
    }

    /// Longest closed period across all NFs.
    pub fn longest_ns(&self) -> Nanos {
        self.nfs.iter().map(|s| s.longest_ns).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_open_on_congestion_and_close_on_drain() {
        let mut t = PeriodTracker::new(2);
        let nf = NfId(0);
        t.on_read(nf, 100, true); // idle
        assert_eq!(t.nf(nf).closed, 0);
        assert_eq!(t.nf(nf).open_since, None);

        t.on_read(nf, 200, false); // congestion starts
        t.on_read(nf, 300, false); // still congested: same period
        assert_eq!(t.nf(nf).open_since, Some(200));
        assert_eq!(t.open_periods(), 1);

        t.on_read(nf, 500, true); // drained: period closes
        let st = *t.nf(nf);
        assert_eq!(st.open_since, None);
        assert_eq!(st.closed, 1);
        assert_eq!(st.longest_ns, 300);
        assert_eq!(st.busy_ns, 300);

        t.on_read(nf, 600, false);
        t.on_read(nf, 700, true);
        let st = *t.nf(nf);
        assert_eq!(st.closed, 2);
        assert_eq!(st.longest_ns, 300, "shorter period must not win");
        assert_eq!(st.busy_ns, 400);
        assert_eq!(t.closed_periods(), 2);
        assert_eq!(t.longest_ns(), 300);
    }

    #[test]
    fn repeated_drains_do_not_close_phantom_periods() {
        let mut t = PeriodTracker::new(1);
        let nf = NfId(0);
        for ts in [10, 20, 30] {
            t.on_read(nf, ts, true);
        }
        assert_eq!(t.nf(nf).closed, 0);
        assert_eq!(t.nf(nf).busy_ns, 0);
        assert_eq!(t.nf(nf).last_read, Some(30));
    }

    #[test]
    fn per_nf_state_is_independent() {
        let mut t = PeriodTracker::new(2);
        t.on_read(NfId(0), 100, false);
        t.on_read(NfId(1), 150, true);
        assert_eq!(t.nf(NfId(0)).open_since, Some(100));
        assert_eq!(t.nf(NfId(1)).open_since, None);
        assert_eq!(t.open_periods(), 1);
    }
}
